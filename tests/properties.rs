//! Cross-crate property-based tests: invariants that must hold for *any*
//! program, not just the benchmark suite.
//!
//! Cases are generated from a deterministic [`SplitMix64`] stream so the
//! tests are reproducible and dependency-free; each property runs 48
//! generated cases (the budget the proptest version used).

use stm::core::prelude::*;
use stm::hardware::{CacheConfig, CacheSystem, HardwareCtx, Lbr};
use stm::machine::builder::ProgramBuilder;
use stm::machine::events::{AccessKind, BranchEvent, BranchKind, Ring};
use stm::machine::ids::CoreId;
use stm::machine::interp::{Machine, RunConfig};
use stm::machine::ir::{BinOp, Program};
use stm::machine::rng::SplitMix64;

const CASES: u64 = 48;

/// Draws a value in `lo..hi` from the stream.
fn draw(rng: &mut SplitMix64, lo: i64, hi: i64) -> i64 {
    lo + rng.next_below((hi - lo) as u64) as i64
}

/// Draws a random step recipe: 1..12 steps of (kind, constant).
fn draw_steps(rng: &mut SplitMix64, max_len: u64) -> Vec<(u8, i64)> {
    let len = 1 + rng.next_below(max_len - 1) as usize;
    (0..len)
        .map(|_| (rng.next_below(256) as u8, draw(rng, -50, 50)))
        .collect()
}

/// Builds a small but structurally varied program from a recipe: a chain
/// of guarded steps mixing arithmetic, branches, loops, heap traffic and
/// an error path, all driven by the inputs.
fn build_program(steps: &[(u8, i64)]) -> Program {
    let mut pb = ProgramBuilder::new("prop");
    let g = pb.global("acc", 1);
    let main = pb.declare_function("main");
    let mut f = pb.build_function(main, "prop.c");
    let x = f.read_input(0);
    let acc = f.var();
    f.assign(acc, 0);
    for (i, (kind, k)) in steps.iter().enumerate() {
        f.at(10 + i as u32);
        match kind % 5 {
            0 => {
                let v = f.bin(BinOp::Add, acc, *k);
                f.assign(acc, v);
            }
            1 => {
                // A data diamond.
                let then_b = f.new_block();
                let join = f.new_block();
                let c = f.bin(BinOp::Gt, x, *k % 16);
                f.br(c, then_b, join);
                f.set_block(then_b);
                f.assign_bin(acc, BinOp::Xor, acc, *k);
                f.jmp(join);
                f.set_block(join);
            }
            2 => {
                // A bounded loop.
                let header = f.new_block();
                let body = f.new_block();
                let done = f.new_block();
                let i_var = f.var();
                f.assign(i_var, 0);
                f.jmp(header);
                f.set_block(header);
                let c = f.bin(BinOp::Lt, i_var, (*k % 7).abs() + 1);
                f.br(c, body, done);
                f.set_block(body);
                f.assign_bin(acc, BinOp::Add, acc, 1);
                f.assign_bin(i_var, BinOp::Add, i_var, 1);
                f.jmp(header);
                f.set_block(done);
            }
            3 => {
                // Heap traffic.
                let buf = f.alloc(2);
                f.store(buf, 0, acc);
                let v = f.load(buf, 0);
                f.assign(acc, v);
            }
            _ => {
                // Global traffic.
                f.store(g as i64, 0, acc);
                let v = f.load(g as i64, 0);
                f.assign_bin(acc, BinOp::Add, v, 1);
            }
        }
    }
    f.output(acc);
    f.ret(None);
    f.finish();
    pb.finish(main)
}

/// Any program produces bit-identical reports when replayed with the
/// same inputs, seed and configuration.
#[test]
fn runs_are_deterministic() {
    let mut rng = SplitMix64::new(0xD1CE_0001);
    for case in 0..CASES {
        let steps = draw_steps(&mut rng, 12);
        let input = draw(&mut rng, -100, 100);
        let seed = rng.next_u64();
        let p = build_program(&steps);
        let m = Machine::new(p);
        let cfg = RunConfig::with_seed(seed);
        let a = m.run(&[input], &cfg, &mut stm::machine::events::NullHardware);
        let b = m.run(&[input], &cfg, &mut stm::machine::events::NullHardware);
        assert_eq!(a, b, "case {case}: {steps:?} input={input} seed={seed}");
    }
}

/// Instrumentation is observation-only: the instrumented program
/// computes exactly the same outputs and outcome.
#[test]
fn instrumentation_never_changes_semantics() {
    let mut rng = SplitMix64::new(0xD1CE_0002);
    for case in 0..CASES {
        let steps = draw_steps(&mut rng, 12);
        let input = draw(&mut rng, -100, 100);
        let p = build_program(&steps);
        let plain = Runner::new(Machine::new(p.clone()));
        for opts in [
            InstrumentOptions::lbrlog(),
            InstrumentOptions::lbrlog_without_toggling(),
            InstrumentOptions::lbra_proactive(),
            InstrumentOptions::full(),
        ] {
            let inst = Runner::instrumented(&p, &opts);
            let w = Workload::new(vec![input]);
            let a = plain.run(&w);
            let b = inst.run(&w);
            assert_eq!(a.outputs, b.outputs, "case {case}: {steps:?}");
            assert_eq!(a.outcome, b.outcome, "case {case}: {steps:?}");
            assert_eq!(a.logs.len(), b.logs.len(), "case {case}: {steps:?}");
        }
    }
}

/// The MESI caches uphold single-writer/multi-reader for any access
/// stream, and every observation is a legal MESI state transition
/// source.
#[test]
fn mesi_invariants_hold_for_random_streams() {
    let mut seeds = SplitMix64::new(0xD1CE_0003);
    for _ in 0..CASES {
        let seed = seeds.next_u64();
        let mut sys = CacheSystem::new(4, CacheConfig::PAPER);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..4000 {
            let core = CoreId(rng.next_below(4) as u32);
            let addr = rng.next_below(1 << 16);
            let kind = if rng.next_below(3) == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let _ = sys.access(core, addr, kind);
        }
        assert!(sys.check_invariants().is_ok(), "seed {seed}");
    }
}

/// The LBR ring holds at most `capacity` records, newest first, and is
/// exactly the suffix of the admitted event stream.
#[test]
fn lbr_is_the_suffix_of_admitted_branches() {
    let mut rng = SplitMix64::new(0xD1CE_0004);
    for case in 0..CASES {
        let capacity = 1 + rng.next_below(31) as usize;
        let n = rng.next_below(64) as usize;
        let froms: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
        let mut lbr = Lbr::new(capacity);
        lbr.enable();
        for from in &froms {
            lbr.record(BranchEvent {
                from: *from as u64,
                to: *from as u64 + 4,
                kind: BranchKind::CondJump,
                ring: Ring::User,
            });
        }
        let snap = lbr.snapshot();
        assert!(snap.len() <= capacity, "case {case}");
        let expected: Vec<u64> = froms
            .iter()
            .rev()
            .take(capacity)
            .map(|f| *f as u64)
            .collect();
        let got: Vec<u64> = snap.iter().map(|r| r.from).collect();
        assert_eq!(got, expected, "case {case}: capacity={capacity}");
    }
}

/// Hardware contexts never panic and never change program results:
/// running under full monitoring equals running under none.
#[test]
fn monitoring_is_invisible_to_the_program() {
    let mut rng = SplitMix64::new(0xD1CE_0005);
    for case in 0..CASES {
        let steps = draw_steps(&mut rng, 10);
        let input = draw(&mut rng, -100, 100);
        let p = build_program(&steps);
        let m = Machine::new(p);
        let cfg = RunConfig::default();
        let a = m.run(&[input], &cfg, &mut stm::machine::events::NullHardware);
        let mut hw = HardwareCtx::with_defaults();
        let b = m.run(&[input], &cfg, &mut hw);
        assert_eq!(a.outputs, b.outputs, "case {case}: {steps:?}");
        assert_eq!(a.outcome, b.outcome, "case {case}: {steps:?}");
        assert_eq!(a.steps, b.steps, "case {case}: {steps:?}");
    }
}
