//! Workspace-level integration tests: drive the whole stack — builder →
//! machine → hardware → transformer → diagnosis — through the public
//! facade, the way a downstream user would.

use stm::core::prelude::*;
use stm::machine::builder::ProgramBuilder;
use stm::machine::ir::BinOp;
use stm::suite::eval;

#[test]
fn sort_pipeline_reproduces_its_table6_row() {
    let b = stm::suite::by_id("sort").unwrap();
    assert_eq!(eval::lbrlog_position(&b, true), Some(3));
    assert_eq!(eval::lbrlog_position(&b, false), Some(5));
    assert_eq!(eval::lbra_rank(&b), Some(1));
}

#[test]
fn mozilla_pipeline_reproduces_its_table7_row() {
    let b = stm::suite::by_id("mozilla-js3").unwrap();
    assert_eq!(eval::lcrlog_position(&b, true), Some(3));
    assert_eq!(eval::lcrlog_position(&b, false), Some(11));
    assert_eq!(eval::lcra_rank(&b), Some(1));
}

#[test]
fn all_31_benchmarks_are_registered_with_consistent_metadata() {
    let all = stm::suite::all();
    assert_eq!(all.len(), 31);
    assert_eq!(stm::suite::sequential().len(), 20);
    assert_eq!(stm::suite::concurrency().len(), 11);
    let mut ids: Vec<&str> = all.iter().map(|b| b.info.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 31, "benchmark ids must be unique");
    for b in &all {
        assert!(b.program.validate().is_ok(), "{} invalid", b.info.id);
        assert!(!b.workloads.failing.is_empty(), "{}", b.info.id);
        assert!(!b.workloads.passing.is_empty(), "{}", b.info.id);
        assert!(b.log_points() > 0 || b.info.id == "pbzip2", "{}", b.info.id);
    }
}

#[test]
fn every_sequential_benchmark_keeps_its_root_cause_within_a_16_entry_lbr() {
    // The paper's headline: with just 16 entries, LBRLOG captures a
    // root-cause or related branch for all 20 sequential failures.
    for b in stm::suite::sequential() {
        let pos = eval::lbrlog_position(&b, true);
        assert!(
            matches!(pos, Some(p) if p <= 16),
            "{}: position {pos:?}",
            b.info.id
        );
    }
}

#[test]
fn instrumentation_preserves_program_semantics() {
    // The transformer must never change what a program computes — only
    // observe it. Outputs must match between deployments.
    for b in stm::suite::sequential() {
        let plain = Runner::new(stm::machine::interp::Machine::new(b.program.clone()));
        let logd = Runner::instrumented(&b.program, &InstrumentOptions::lbrlog());
        let proa = Runner::instrumented(&b.program, &InstrumentOptions::lbra_proactive());
        for w in b.workloads.passing.iter().chain([&b.workloads.perf]) {
            let a = plain.run(w);
            let c = logd.run(w);
            let d = proa.run(w);
            assert_eq!(a.outputs, c.outputs, "{} lbrlog diverged", b.info.id);
            assert_eq!(a.outputs, d.outputs, "{} proactive diverged", b.info.id);
            assert_eq!(a.outcome, c.outcome, "{}", b.info.id);
        }
    }
}

#[test]
fn facade_quickstart_diagnoses_a_fresh_bug() {
    // The lib.rs doc example, in test form, built through the facade.
    let mut pb = ProgramBuilder::new("demo");
    let main = pb.declare_function("main");
    let mut f = pb.build_function(main, "demo.c");
    let err = f.new_block();
    let ok = f.new_block();
    let t = f.read_input(0);
    let bad = f.bin(BinOp::Le, t, 0);
    f.br(bad, err, ok);
    f.set_block(err);
    let site = f.log_error("timeout must be positive");
    f.exit(1);
    f.ret(None);
    f.set_block(ok);
    f.output(t);
    f.ret(None);
    f.finish();
    let program = pb.finish(main);

    let d = DiagnosisSession::new(&program)
        .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
        .failure(FailureSpec::ErrorLogAt(site))
        .failing(vec![Workload::new(vec![0]), Workload::new(vec![-4])])
        .passing(vec![Workload::new(vec![5]), Workload::new(vec![60])])
        .threads(2)
        .collect()
        .expect("collection succeeds")
        .lbra();
    let top = d.top().expect("a predictor");
    assert_eq!(top.score, 1.0);
    assert_eq!(top.event.branch, program.branches[0].id);
}

#[test]
fn proactive_and_reactive_schemes_agree_on_the_diagnosis() {
    let b = stm::suite::by_id("rm").unwrap();
    let root = b.truth.target_branch().unwrap();
    let reactive = eval::run_lbra(&b);
    let proactive_runner = Runner::instrumented(&b.program, &InstrumentOptions::lbra_proactive());
    let (failing, passing) = eval::expand_workloads(&b, &proactive_runner);
    let mut proactive = DiagnosisSession::from_runner(&proactive_runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(ProfileKind::Lbr)
        .collect()
        .expect("collection succeeds")
        .lbra();
    proactive.exclude_site_guards(proactive_runner.machine().program(), &b.truth.spec);
    assert_eq!(reactive.rank_of_branch(root), Some(1));
    assert_eq!(proactive.rank_of_branch(root), Some(1));
}
