//! The collection engine's headline guarantee: thread count never changes
//! results. `threads(1)` and `threads(8)` must produce byte-identical
//! ranking artifacts for a sequential (LBRA) and a concurrency (LCRA)
//! benchmark — same witnesses, same stats, same serialized report.

use stm::core::engine::{CollectedProfiles, DiagnosisSession, ProfileKind};
use stm::core::runner::Runner;
use stm::core::transform::instrument;
use stm::forensics::RankingReport;
use stm::machine::events::LcrConfig;
use stm::machine::interp::Machine;
use stm::suite::eval::{expand_workloads, reactive_options};
use stm::suite::Benchmark;

/// Collects one benchmark's profiles at the given thread count, with an
/// optional hardware override (perturbed sweeps reuse full-signal
/// witnesses: perturbation never changes execution or classification).
fn collect_hw(
    b: &Benchmark,
    kind: ProfileKind,
    threads: usize,
    hw: Option<stm::hardware::HwConfig>,
) -> (Runner, CollectedProfiles) {
    let opts = match kind {
        ProfileKind::Lbr => reactive_options(b, true, None),
        ProfileKind::Lcr => reactive_options(b, false, Some(LcrConfig::SPACE_CONSUMING)),
    };
    let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
    let (failing, passing) = expand_workloads(b, &runner);
    let mut session = DiagnosisSession::from_runner(&runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(kind)
        .threads(threads);
    if let Some(hw) = hw {
        session = session.hw_config(hw);
    }
    let profiles = session.collect().expect("collection succeeds");
    (runner, profiles)
}

/// Collects one benchmark's profiles at the given thread count.
fn collect(b: &Benchmark, kind: ProfileKind, threads: usize) -> (Runner, CollectedProfiles) {
    collect_hw(b, kind, threads, None)
}

/// Collects with a convergence monitor attached.
fn collect_converge(
    b: &Benchmark,
    kind: ProfileKind,
    threads: usize,
    policy: stm::core::converge::StabilityPolicy,
) -> CollectedProfiles {
    let opts = match kind {
        ProfileKind::Lbr => reactive_options(b, true, None),
        ProfileKind::Lcr => reactive_options(b, false, Some(LcrConfig::SPACE_CONSUMING)),
    };
    let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
    let (failing, passing) = expand_workloads(b, &runner);
    DiagnosisSession::from_runner(&runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(kind)
        .threads(threads)
        .converge(policy)
        .collect()
        .expect("collection succeeds")
}

fn witnesses(p: &CollectedProfiles) -> (Vec<String>, Vec<String>) {
    let names = |runs: &[stm::core::engine::CollectedRun]| {
        runs.iter().map(|r| r.witness.clone()).collect::<Vec<_>>()
    };
    (names(p.failure_runs()), names(p.success_runs()))
}

#[test]
fn lbra_ranking_json_is_identical_at_1_and_8_threads() {
    let b = stm::suite::by_id("sort").expect("sort benchmark");
    let (runner1, p1) = collect(&b, ProfileKind::Lbr, 1);
    let (_, p8) = collect(&b, ProfileKind::Lbr, 8);

    assert_eq!(p1.stats(), p8.stats(), "run accounting must match");
    assert_eq!(witnesses(&p1), witnesses(&p8), "witness sets must match");

    let report = |p: &CollectedProfiles| {
        let mut d = p.lbra();
        d.exclude_site_guards(runner1.machine().program(), &b.truth.spec);
        RankingReport::from_lbra(runner1.machine().program(), b.info.id, &d, 10)
            .to_json()
            .encode()
    };
    assert_eq!(
        report(&p1),
        report(&p8),
        "LBRA ranking JSON must be byte-identical"
    );
}

/// A mid-grid sensitivity setting: truncate both rings to 8 records and
/// drop each surviving record with probability 1/2.
fn perturbed_hw() -> stm::hardware::HwConfig {
    stm::hardware::HwConfig {
        perturb: stm::hardware::PerturbConfig::NONE
            .truncate_lbr(8)
            .truncate_lcr(8)
            .drop_rate(0.5),
        ..stm::hardware::HwConfig::default()
    }
}

#[test]
fn perturbed_lbra_ranking_json_is_identical_at_1_and_8_threads() {
    // Fault injection draws from a per-run RNG seeded by the workload's
    // scheduler seed, so a degraded-signal session must keep the engine's
    // headline guarantee: thread count never changes results.
    let b = stm::suite::by_id("sort").expect("sort benchmark");
    let (runner1, p1) = collect_hw(&b, ProfileKind::Lbr, 1, Some(perturbed_hw()));
    let (_, p8) = collect_hw(&b, ProfileKind::Lbr, 8, Some(perturbed_hw()));

    assert_eq!(p1.stats(), p8.stats(), "run accounting must match");
    assert_eq!(witnesses(&p1), witnesses(&p8), "witness sets must match");

    let report = |p: &CollectedProfiles| {
        let mut d = p.lbra();
        d.exclude_site_guards(runner1.machine().program(), &b.truth.spec);
        RankingReport::from_lbra(runner1.machine().program(), b.info.id, &d, 10)
            .to_json()
            .encode()
    };
    assert_eq!(
        report(&p1),
        report(&p8),
        "perturbed LBRA ranking JSON must be byte-identical"
    );
}

#[test]
fn perturbed_lcra_ranking_json_is_identical_at_1_and_8_threads() {
    let b = stm::suite::by_id("apache4").expect("apache4 benchmark");
    let (runner1, p1) = collect_hw(&b, ProfileKind::Lcr, 1, Some(perturbed_hw()));
    let (_, p8) = collect_hw(&b, ProfileKind::Lcr, 8, Some(perturbed_hw()));

    assert_eq!(p1.stats(), p8.stats(), "run accounting must match");
    assert_eq!(witnesses(&p1), witnesses(&p8), "witness sets must match");

    let report = |p: &CollectedProfiles| {
        let d = p.lcra();
        RankingReport::from_lcra(runner1.machine().program(), b.info.id, &d, 10)
            .to_json()
            .encode()
    };
    assert_eq!(
        report(&p1),
        report(&p8),
        "perturbed LCRA ranking JSON must be byte-identical"
    );
}

#[test]
fn guest_profile_is_identical_at_1_and_8_threads() {
    // The guest profiler samples on retired instructions — the machine's
    // own clock — so every profile artifact must inherit the engine's
    // thread-count invariance. (The critical-path report is wall-clock
    // and deliberately excluded from this pin.)
    let b = stm::suite::by_id("sort").expect("sort benchmark");
    let period = 64u64;
    let profile_at = |threads: usize| {
        let opts = reactive_options(&b, true, None);
        let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
        let (failing, passing) = expand_workloads(&b, &runner);
        let profiles = DiagnosisSession::from_runner(&runner)
            .run_config(stm::machine::interp::RunConfig {
                profile_period: period,
                ..runner.run_config().clone()
            })
            .failure(b.truth.spec.clone())
            .failing(failing)
            .passing(passing)
            .profile_kind(ProfileKind::Lbr)
            .threads(threads)
            .collect()
            .expect("collection succeeds");
        let mut g = stm::profiler::GuestProfile::new(runner.machine().program(), period);
        for run in profiles
            .failure_runs()
            .iter()
            .chain(profiles.success_runs())
        {
            g.add_run(&run.report);
        }
        g
    };
    let g1 = profile_at(1);
    let g8 = profile_at(8);
    assert_eq!(
        g1.folded(),
        g8.folded(),
        "folded stacks must be byte-identical"
    );
    assert_eq!(
        g1.render_md(10),
        g8.render_md(10),
        "markdown report must be byte-identical"
    );
    assert_eq!(
        g1.to_json(10).encode(),
        g8.to_json(10).encode(),
        "JSON report must be byte-identical"
    );
    assert!(!g1.folded().is_empty(), "sort must produce samples");
    // Pin sort's known hot spot: the instrumented run spends its leaf
    // samples in the hash function the bug lives around.
    let (top, _) = g1.top_frame().expect("samples exist");
    assert_eq!(top, "hash", "sort's hottest function must stay pinned");
}

#[test]
fn observatory_scrapes_do_not_change_rankings() {
    // The observability layer is read-only by construction: telemetry
    // collection on, the metrics endpoint live, and a scraper hammering
    // /metrics and /health throughout collection must leave the ranking
    // artifacts byte-identical across thread counts. (Nothing in this
    // binary asserts registry contents, so flipping the global enable
    // flag here cannot disturb the other tests.)
    use std::sync::atomic::{AtomicBool, Ordering};

    stm::telemetry::set_enabled(true);
    let server = stm::observatory::MetricsServer::start("127.0.0.1:0").expect("bind endpoint");
    let addr = server.addr();
    let stop = AtomicBool::new(false);

    let b = stm::suite::by_id("sort").expect("sort benchmark");
    let (p1, p8, scrapes) = std::thread::scope(|s| {
        let scraper = s.spawn(|| {
            let mut scrapes = 0u64;
            let timeout = std::time::Duration::from_secs(2);
            while !stop.load(Ordering::Relaxed) {
                for path in ["/metrics", "/health"] {
                    if stm::observatory::watch::http_get(addr, path, timeout).is_ok() {
                        scrapes += 1;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            scrapes
        });
        let (_, p1) = collect(&b, ProfileKind::Lbr, 1);
        let (_, p8) = collect(&b, ProfileKind::Lbr, 8);
        stop.store(true, Ordering::Relaxed);
        (p1, p8, scraper.join().expect("scraper thread"))
    });
    stm::telemetry::set_enabled(false);

    assert!(scrapes > 0, "the endpoint must have answered live scrapes");
    assert_eq!(p1.stats(), p8.stats(), "run accounting must match");
    assert_eq!(witnesses(&p1), witnesses(&p8), "witness sets must match");

    let runner = {
        let opts = reactive_options(&b, true, None);
        Runner::new(Machine::new(instrument(&b.program, &opts)))
    };
    let report = |p: &CollectedProfiles| {
        let mut d = p.lbra();
        d.exclude_site_guards(runner.machine().program(), &b.truth.spec);
        RankingReport::from_lbra(runner.machine().program(), b.info.id, &d, 10)
            .to_json()
            .encode()
    };
    assert_eq!(
        report(&p1),
        report(&p8),
        "rankings must be byte-identical with the observatory enabled"
    );
}

#[test]
fn incremental_ranking_at_quota_is_bit_identical_to_batch_rank() {
    // The tentpole invariant: a monitored session run to its full quota
    // (policy may never stop) must hand back a final ranking that is
    // bit-identical — scores, tie-break order, witness lists — to the
    // batch model over the same collected profiles, at both thread
    // counts.
    use stm::core::converge::{FinalRanking, StabilityPolicy};

    let sort = stm::suite::by_id("sort").expect("sort benchmark");
    let apache4 = stm::suite::by_id("apache4").expect("apache4 benchmark");
    for threads in [1, 8] {
        let p = collect_converge(&sort, ProfileKind::Lbr, threads, StabilityPolicy::never());
        let report = p.convergence().expect("monitored session reports");
        match &report.final_ranking {
            FinalRanking::Lbr(incremental) => {
                assert_eq!(
                    incremental,
                    &p.lbr_model().rank(),
                    "sort threads({threads}): incremental != batch rank()"
                );
            }
            FinalRanking::Lcr(_) => panic!("sort is an LBR session"),
        }

        let p = collect_converge(
            &apache4,
            ProfileKind::Lcr,
            threads,
            StabilityPolicy::never(),
        );
        let report = p.convergence().expect("monitored session reports");
        match &report.final_ranking {
            FinalRanking::Lcr(incremental) => {
                assert_eq!(
                    incremental,
                    &p.lcr_model().rank_with_absence(),
                    "apache4 threads({threads}): incremental != batch rank_with_absence()"
                );
            }
            FinalRanking::Lbr(_) => panic!("apache4 is an LCR session"),
        }
    }
}

#[test]
fn early_stop_is_identical_at_1_and_8_threads() {
    // The stability policy decides only at the strict-ordered consumption
    // seam, so an early-stopped session must keep every headline
    // determinism guarantee: same witnesses kept, same stop point, same
    // verdict and evidence, same final ranking at any thread count.
    use stm::core::converge::StabilityPolicy;

    let b = stm::suite::by_id("apache4").expect("apache4 benchmark");
    let p1 = collect_converge(&b, ProfileKind::Lcr, 1, StabilityPolicy::default());
    let p8 = collect_converge(&b, ProfileKind::Lcr, 8, StabilityPolicy::default());

    assert_eq!(p1.stats(), p8.stats(), "run accounting must match");
    assert_eq!(witnesses(&p1), witnesses(&p8), "witness sets must match");

    let r1 = p1.convergence().expect("monitored session reports");
    let r8 = p8.convergence().expect("monitored session reports");
    assert_eq!(r1.verdict, r8.verdict, "verdict must match");
    assert_eq!(r1.evidence, r8.evidence, "evidence must match");
    assert_eq!(r1.final_ranking, r8.final_ranking, "ranking must match");
    assert_eq!(
        r1.to_json().encode(),
        r8.to_json().encode(),
        "serialized convergence report must be byte-identical"
    );
    // The policy must actually have fired on apache4: fewer witnesses
    // than the 10 + 10 quota (the bench gate pins the exact count).
    assert_eq!(
        r1.verdict,
        stm::core::converge::Verdict::ConvergedEarly,
        "apache4 must converge early under the default policy"
    );
    assert!(
        r1.evidence.witnesses < 20,
        "early stop must ingest fewer witnesses than the quota, got {}",
        r1.evidence.witnesses
    );
}

/// A reference hardware stack that forwards only the per-event
/// [`Hardware`](stm::machine::events::Hardware) methods, so the
/// trait-default `on_batch` replays every batch one event at a time —
/// exactly the pre-batching ingestion path the real
/// [`HardwareCtx`](stm::hardware::HardwareCtx) override must stay
/// bit-identical to.
struct PerEvent(stm::hardware::HardwareCtx);

impl stm::machine::events::Hardware for PerEvent {
    fn on_branch(
        &mut self,
        core: stm::machine::ids::CoreId,
        ev: stm::machine::events::BranchEvent,
    ) {
        self.0.on_branch(core, ev);
    }

    fn on_access(
        &mut self,
        core: stm::machine::ids::CoreId,
        thread: stm::machine::ids::ThreadId,
        ev: stm::machine::events::AccessEvent,
    ) {
        self.0.on_access(core, thread, ev);
    }

    fn ctl(
        &mut self,
        core: stm::machine::ids::CoreId,
        thread: stm::machine::ids::ThreadId,
        op: stm::machine::events::HwCtlOp,
    ) -> stm::machine::events::CtlResponse {
        self.0.ctl(core, thread, op)
    }
}

/// Collects a benchmark through the engine (batched event path, cached
/// per-thread hardware) and replays every kept witness on a fresh
/// per-event hardware stack: the full run reports — ring-snapshot
/// profiles included — must be byte-identical.
fn assert_batched_matches_per_event(
    bench: &str,
    kind: ProfileKind,
    hw: Option<stm::hardware::HwConfig>,
) {
    let b = stm::suite::by_id(bench).expect("benchmark exists");
    for threads in [1usize, 8] {
        let (runner, profiles) = collect_hw(&b, kind, threads, hw);
        let kept: Vec<_> = profiles
            .failure_runs()
            .iter()
            .chain(profiles.success_runs())
            .collect();
        assert!(!kept.is_empty(), "{bench} must keep witnesses");
        let hw_config = hw.unwrap_or_default();
        for run in kept {
            let mut reference = PerEvent(stm::hardware::HardwareCtx::new(hw_config));
            reference.0.seed_perturbations(run.workload.seed);
            let mut cfg = runner.run_config().clone();
            cfg.scheduler = stm::machine::sched::SchedPolicy::Random {
                seed: run.workload.seed,
            };
            let report = runner
                .machine()
                .run(&run.workload.inputs, &cfg, &mut reference);
            assert_eq!(
                report, run.report,
                "{bench} threads({threads}) witness {}: batched rings must \
                 equal the per-event replay",
                run.witness
            );
        }
    }
}

#[test]
fn batched_rings_match_per_event_replay_on_sort() {
    assert_batched_matches_per_event("sort", ProfileKind::Lbr, None);
}

#[test]
fn batched_rings_match_per_event_replay_on_apache4() {
    assert_batched_matches_per_event("apache4", ProfileKind::Lcr, None);
}

#[test]
fn perturbed_batched_rings_match_per_event_replay() {
    // The copy-elided (lazy) snapshot path defers the ring read past the
    // perturbation layer's loss draws; the RNG draw order must still
    // match the per-event reference exactly, or these reports diverge.
    assert_batched_matches_per_event("sort", ProfileKind::Lbr, Some(perturbed_hw()));
    assert_batched_matches_per_event("apache4", ProfileKind::Lcr, Some(perturbed_hw()));
}

#[test]
fn bts_batch_push_matches_per_event_recording() {
    // With BTS enabled, the interpreter's batched event path lands in
    // `Bts::push_batch`; the whole-history trace (and the run report)
    // must be byte-identical to the per-event reference recording.
    let b = stm::suite::by_id("sort").expect("sort benchmark");
    let opts = reactive_options(&b, true, None);
    let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
    let (failing, _) = expand_workloads(&b, &runner);
    let hw_config = stm::hardware::HwConfig {
        enable_bts: true,
        ..stm::hardware::HwConfig::default()
    };
    for w in failing.iter().take(3) {
        let mut cfg = runner.run_config().clone();
        cfg.scheduler = stm::machine::sched::SchedPolicy::Random { seed: w.seed };

        let mut batched = stm::hardware::HardwareCtx::new(hw_config);
        batched.seed_perturbations(w.seed);
        let batched_report = runner.machine().run(&w.inputs, &cfg, &mut batched);

        let mut reference = PerEvent(stm::hardware::HardwareCtx::new(hw_config));
        reference.0.seed_perturbations(w.seed);
        let reference_report = runner.machine().run(&w.inputs, &cfg, &mut reference);

        assert_eq!(
            batched_report, reference_report,
            "seed {}: run reports must match under BTS",
            w.seed
        );
        let trace = batched.bts().expect("BTS enabled").trace();
        assert_eq!(
            trace,
            reference.0.bts().expect("BTS enabled").trace(),
            "seed {}: batched BTS trace must equal per-event recording",
            w.seed
        );
        assert!(
            !trace.is_empty(),
            "seed {}: sort must retire branches",
            w.seed
        );
    }
}

#[test]
fn causal_chain_json_is_identical_at_1_and_8_threads() {
    // The causal-chain reconstruction consumes the ranking AND the raw
    // decoded rings of every failing witness, so it inherits (and must
    // preserve) the engine's thread-count invariance end to end.
    use stm::core::diagnose::failure_profile;
    use stm::core::profile::{decode_lbr, decode_lcr};
    use stm::forensics::CausalChain;
    use stm::machine::report::ProfileData;

    for (id, kind) in [("sort", ProfileKind::Lbr), ("apache4", ProfileKind::Lcr)] {
        let b = stm::suite::by_id(id).expect("benchmark exists");
        let (runner, p1) = collect(&b, kind, 1);
        let (_, p8) = collect(&b, kind, 8);

        let chain = |p: &CollectedProfiles| -> String {
            let program = runner.machine().program();
            let layout = runner.machine().layout();
            let chain = match kind {
                ProfileKind::Lbr => {
                    let mut d = p.lbra();
                    d.exclude_site_guards(program, &b.truth.spec);
                    let traces: Vec<_> = p
                        .failure_runs()
                        .iter()
                        .filter_map(|run| {
                            let prof = failure_profile(&run.report, &b.truth.spec)?;
                            match &prof.data {
                                ProfileData::Lbr(records) => {
                                    Some((run.witness.clone(), decode_lbr(layout, records)))
                                }
                                ProfileData::Lcr(_) => None,
                            }
                        })
                        .collect();
                    CausalChain::from_lbra(
                        Some(program),
                        &d.ranked,
                        &traces,
                        d.stats.failure_runs_used,
                        d.stats.success_runs_used,
                    )
                }
                ProfileKind::Lcr => {
                    let d = p.lcra();
                    let traces: Vec<_> = p
                        .failure_runs()
                        .iter()
                        .filter_map(|run| {
                            let prof = failure_profile(&run.report, &b.truth.spec)?;
                            match &prof.data {
                                ProfileData::Lcr(records) => {
                                    Some((run.witness.clone(), decode_lcr(layout, records)))
                                }
                                ProfileData::Lbr(_) => None,
                            }
                        })
                        .collect();
                    CausalChain::from_lcra(
                        Some(program),
                        &d.ranked,
                        &traces,
                        d.stats.failure_runs_used,
                        d.stats.success_runs_used,
                    )
                }
            };
            chain
                .unwrap_or_else(|| panic!("{id}: chain must reconstruct"))
                .to_json()
                .encode()
        };
        assert_eq!(
            chain(&p1),
            chain(&p8),
            "{id}: causal-chain JSON must be byte-identical across thread counts"
        );
    }
}

#[test]
fn lcra_ranking_json_is_identical_at_1_and_8_threads() {
    let b = stm::suite::by_id("apache4").expect("apache4 benchmark");
    let (runner1, p1) = collect(&b, ProfileKind::Lcr, 1);
    let (_, p8) = collect(&b, ProfileKind::Lcr, 8);

    assert_eq!(p1.stats(), p8.stats(), "run accounting must match");
    assert_eq!(witnesses(&p1), witnesses(&p8), "witness sets must match");

    let report = |p: &CollectedProfiles| {
        let d = p.lcra();
        RankingReport::from_lcra(runner1.machine().program(), b.info.id, &d, 10)
            .to_json()
            .encode()
    };
    assert_eq!(
        report(&p1),
        report(&p8),
        "LCRA ranking JSON must be byte-identical"
    );
}
