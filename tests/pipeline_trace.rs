//! The pipeline causal-tracing contract: with telemetry on, every job the
//! parallel engine consumes leaves a complete flow chain in the span
//! buffer — `engine.enqueue` (flow start) → `engine.job` (step) →
//! `engine.consume` (end) — and the Chrome trace exporter turns each
//! chain into `s`/`t`/`f` flow events Perfetto renders as arrows.

use stm::core::engine::{DiagnosisSession, ProfileKind};
use stm::core::runner::Runner;
use stm::core::transform::instrument;
use stm::machine::interp::Machine;
use stm::suite::eval::{expand_workloads, reactive_options};
use stm::telemetry::json::Json;
use stm::telemetry::FlowPhase;

#[test]
fn every_consumed_job_has_a_complete_flow_chain() {
    let b = stm::suite::by_id("sort").expect("sort benchmark");
    let opts = reactive_options(&b, true, None);
    let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
    let (failing, passing) = expand_workloads(&b, &runner);

    stm::telemetry::set_enabled(true);
    let _ = stm::telemetry::take_spans();
    DiagnosisSession::from_runner(&runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(ProfileKind::Lbr)
        .threads(4)
        .collect()
        .expect("collection succeeds");
    let spans = stm::telemetry::take_spans();
    stm::telemetry::set_enabled(false);

    let phase_of = |flow: u64, name: &str| {
        spans
            .iter()
            .filter(|s| s.flow == flow && s.name == name)
            .map(|s| s.flow_phase)
            .collect::<Vec<_>>()
    };
    let consumed: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "engine.consume" && s.flow != 0)
        .map(|s| s.flow)
        .collect();
    assert!(
        !consumed.is_empty(),
        "a 4-thread session must consume jobs through the parallel path"
    );
    for &flow in &consumed {
        assert_eq!(
            phase_of(flow, "engine.enqueue"),
            vec![Some(FlowPhase::Start)],
            "flow {flow} must start at its enqueue"
        );
        assert_eq!(
            phase_of(flow, "engine.job"),
            vec![Some(FlowPhase::Step)],
            "flow {flow} must step through its worker execution"
        );
        assert_eq!(
            phase_of(flow, "engine.consume"),
            vec![Some(FlowPhase::End)],
            "flow {flow} must end at its ordered consumption"
        );
    }

    // The exporter must emit one s/t/f triple per consumed flow, each
    // bound inside its slice, so Perfetto draws enqueue → execution →
    // consumption arrows.
    let trace = stm::telemetry::export::chrome_trace(&spans);
    let parsed = Json::parse(&trace).expect("trace is strict JSON");
    let Json::Obj(root) = &parsed else {
        panic!("trace root must be an object")
    };
    let Json::Arr(events) = &root["traceEvents"] else {
        panic!("traceEvents must be an array")
    };
    for &flow in &consumed {
        let mut phases: Vec<String> = events
            .iter()
            .filter_map(|e| {
                let Json::Obj(e) = e else { return None };
                let ph = match &e["ph"] {
                    Json::Str(s) if matches!(s.as_str(), "s" | "t" | "f") => s.clone(),
                    _ => return None,
                };
                (e.get("id") == Some(&Json::Num(flow as f64))).then_some(ph)
            })
            .collect();
        phases.sort();
        assert_eq!(
            phases,
            vec!["f".to_string(), "s".to_string(), "t".to_string()],
            "flow {flow} must export exactly one s/t/f triple"
        );
    }
}
