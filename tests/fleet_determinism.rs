//! Pins the fleet daemon's determinism contract (DESIGN.md):
//!
//! 1. A shard's final ranking is **bit-identical** to the batch
//!    [`RankingModel`] built by `DiagnosisSession` over the same
//!    snapshots — `FinalRanking::Lbr` to `lbr_model().rank()`,
//!    `FinalRanking::Lcr` to `lcr_model().rank_with_absence()`.
//! 2. Two daemon runs over the same seeded endpoint schedule produce
//!    identical evidence and rankings.
//! 3. Backpressure accounting is exact: a paused shard fed
//!    `capacity + k` snapshots sheds exactly `k`, emits one
//!    `fleet`/`shed` event per shed snapshot, and its post-shed ranking
//!    matches the batch model over exactly the *kept* snapshots
//!    (drop-oldest keeps the tail, reject-new keeps the head).

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use stm::core::converge::{FinalRanking, StabilityPolicy};
use stm::core::diagnose::{failure_profile, success_profile, Quotas};
use stm::core::engine::{CollectedProfiles, DiagnosisSession, ProfileKind};
use stm::core::profile::{lbr_events, BranchOutcome};
use stm::core::ranking::RankingModel;
use stm::fleet::{FleetDaemon, ShardConfig, ShardReport, ShedPolicy, Snapshot, SubmitOutcome};
use stm::machine::report::{ProfileData, RunReport};
use stm::suite::eval::{default_threads, expand_workloads, lbra_runner, lcra_runner};

/// Telemetry state is process-global; tests that enable it or drain the
/// event buffer serialize on this lock.
fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Batch-collects the replayable snapshot pool for one suite benchmark.
fn pool(id: &str, lbr: bool) -> (CollectedProfiles, Vec<(bool, String, RunReport)>) {
    let b = stm::suite::by_id(id).expect("benchmark exists");
    let runner = if lbr {
        lbra_runner(&b)
    } else {
        lcra_runner(&b)
    };
    let (failing, passing) = expand_workloads(&b, &runner);
    let profiles = DiagnosisSession::from_runner(&runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(if lbr {
            ProfileKind::Lbr
        } else {
            ProfileKind::Lcr
        })
        .threads(default_threads())
        .collect()
        .expect("pool collection succeeds");
    let mut snaps = Vec::new();
    for run in profiles.failure_runs() {
        snaps.push((true, run.witness.clone(), run.report.clone()));
    }
    for run in profiles.success_runs() {
        snaps.push((false, run.witness.clone(), run.report.clone()));
    }
    (profiles, snaps)
}

/// A shard config that ingests every kept snapshot: quotas and the
/// stability policy both held open.
fn ingest_everything() -> ShardConfig {
    ShardConfig::default()
        .policy(StabilityPolicy::never())
        .quotas(
            Quotas::default()
                .failure_profiles(usize::MAX)
                .success_profiles(usize::MAX)
                .max_runs(usize::MAX),
        )
}

fn submit_all(fleet: &FleetDaemon, shard: &str, snaps: &[(bool, String, RunReport)]) {
    for (is_failure, witness, report) in snaps {
        let outcome = fleet.submit(Snapshot {
            shard: shard.to_string(),
            witness: witness.clone(),
            is_failure: *is_failure,
            report: report.clone(),
        });
        assert_eq!(outcome, SubmitOutcome::Enqueued);
    }
}

#[test]
fn shard_rankings_are_bit_identical_to_the_batch_models() {
    let _guard = telemetry_lock();
    let (sort_profiles, sort_snaps) = pool("sort", true);
    let (apache_profiles, apache_snaps) = pool("apache4", false);

    let mut fleet = FleetDaemon::new();
    fleet.add_shard(
        "sort",
        sort_profiles.runner().machine().layout().clone(),
        sort_profiles.spec().clone(),
        ingest_everything().queue_capacity(sort_snaps.len().max(1)),
    );
    fleet.add_shard(
        "apache4",
        apache_profiles.runner().machine().layout().clone(),
        apache_profiles.spec().clone(),
        ingest_everything().queue_capacity(apache_snaps.len().max(1)),
    );
    fleet.start();
    submit_all(&fleet, "sort", &sort_snaps);
    submit_all(&fleet, "apache4", &apache_snaps);
    fleet.drain();
    let reports = fleet.finish();

    let lbr = reports["sort"]
        .report
        .as_ref()
        .expect("sort produced a report");
    match &lbr.final_ranking {
        FinalRanking::Lbr(ranked) => {
            assert_eq!(ranked, &sort_profiles.lbr_model().rank());
        }
        other => panic!("sort shard ranked the wrong profile kind: {other:?}"),
    }
    let lcr = reports["apache4"]
        .report
        .as_ref()
        .expect("apache4 produced a report");
    match &lcr.final_ranking {
        FinalRanking::Lcr(ranked) => {
            assert_eq!(ranked, &apache_profiles.lcr_model().rank_with_absence());
        }
        other => panic!("apache4 shard ranked the wrong profile kind: {other:?}"),
    }
}

#[test]
fn two_runs_over_the_same_snapshots_are_identical() {
    let (profiles, snaps) = pool("sort", true);
    let run = || -> BTreeMap<String, ShardReport> {
        let mut fleet = FleetDaemon::new();
        fleet.add_shard(
            "sort",
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            ShardConfig::default().queue_capacity(snaps.len().max(1)),
        );
        fleet.start();
        submit_all(&fleet, "sort", &snaps);
        fleet.drain();
        fleet.finish()
    };
    let (a, b) = (run(), run());
    let (ra, rb) = (&a["sort"], &b["sort"]);
    assert_eq!(ra.verdict, rb.verdict);
    assert_eq!(ra.ingested, rb.ingested);
    assert_eq!(ra.after_stop, rb.after_stop);
    let (ca, cb) = (ra.report.as_ref().unwrap(), rb.report.as_ref().unwrap());
    assert_eq!(ca.evidence.witnesses, cb.evidence.witnesses);
    assert_eq!(ca.evidence.top1, cb.evidence.top1);
    match (&ca.final_ranking, &cb.final_ranking) {
        (FinalRanking::Lbr(x), FinalRanking::Lbr(y)) => assert_eq!(x, y),
        other => panic!("expected identical LBR rankings, got {other:?}"),
    }
}

/// The batch model over an explicit snapshot subset, in ingest order.
fn model_over(
    profiles: &CollectedProfiles,
    kept: &[(bool, String, RunReport)],
) -> RankingModel<BranchOutcome> {
    let layout = profiles.runner().machine().layout();
    let spec = profiles.spec();
    let mut model = RankingModel::new();
    for (is_failure, witness, report) in kept {
        let profile = if *is_failure {
            failure_profile(report, spec)
        } else {
            success_profile(report, spec)
        };
        let Some(profile) = profile else { continue };
        let ProfileData::Lbr(records) = &profile.data else {
            continue;
        };
        model.add_profile_named(*is_failure, witness.clone(), lbr_events(layout, records));
    }
    model
}

#[test]
fn overload_sheds_exactly_and_ranks_the_kept_snapshots() {
    let _guard = telemetry_lock();
    stm::telemetry::set_enabled(true);
    stm::telemetry::log::set_stderr_level(None);
    let _ = stm::telemetry::log::take_events();

    const CAPACITY: usize = 6;
    const SUBMITTED: usize = 20;
    let (profiles, snaps) = pool("sort", true);
    let stream: Vec<_> = (0..SUBMITTED)
        .map(|n| {
            let (is_failure, witness, report) = &snaps[n % snaps.len()];
            (*is_failure, format!("ep{n}:{witness}"), report.clone())
        })
        .collect();

    let mut fleet = FleetDaemon::new();
    for (name, shed) in [
        ("drop", ShedPolicy::DropOldest),
        ("reject", ShedPolicy::RejectNew),
    ] {
        fleet.add_shard(
            name,
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            ingest_everything().queue_capacity(CAPACITY).shed(shed),
        );
    }
    fleet.start();
    // Hold both workers off so every overflow decision is forced at the
    // queue, deterministically.
    assert!(fleet.pause("drop"));
    assert!(fleet.pause("reject"));
    let mut shed_outcomes = BTreeMap::new();
    for name in ["drop", "reject"] {
        let expected_shed = if name == "drop" {
            SubmitOutcome::ShedOldest
        } else {
            SubmitOutcome::RejectedNew
        };
        for (n, (is_failure, witness, report)) in stream.iter().enumerate() {
            let outcome = fleet.submit(Snapshot {
                shard: name.to_string(),
                witness: witness.clone(),
                is_failure: *is_failure,
                report: report.clone(),
            });
            if n < CAPACITY {
                assert_eq!(outcome, SubmitOutcome::Enqueued, "{name}: submission {n}");
            } else {
                assert_eq!(outcome, expected_shed, "{name}: submission {n}");
                *shed_outcomes.entry(name).or_insert(0u64) += 1;
            }
        }
    }
    let shed_expected = (SUBMITTED - CAPACITY) as u64;
    assert_eq!(shed_outcomes["drop"], shed_expected);
    assert_eq!(shed_outcomes["reject"], shed_expected);
    assert_eq!(fleet.shed_count("drop"), shed_expected);
    assert_eq!(fleet.shed_count("reject"), shed_expected);

    fleet.resume("drop");
    fleet.resume("reject");
    fleet.drain();
    let shed_events = stm::telemetry::log::take_events()
        .iter()
        .filter(|e| e.component == "fleet" && e.event == "shed")
        .count() as u64;
    assert_eq!(
        shed_events,
        2 * shed_expected,
        "one fleet.shed event per shed snapshot"
    );
    let reports = fleet.finish();
    stm::telemetry::log::set_stderr_level(Some(stm::telemetry::log::Level::Warn));
    stm::telemetry::set_enabled(false);

    // Drop-oldest kept the tail of the stream; reject-new kept the head.
    for (name, kept) in [
        ("drop", &stream[SUBMITTED - CAPACITY..]),
        ("reject", &stream[..CAPACITY]),
    ] {
        let r = &reports[name];
        assert_eq!(r.shed, shed_expected, "{name}: report shed count");
        assert_eq!(
            r.ingested + r.skipped,
            CAPACITY as u64,
            "{name}: kept count"
        );
        let expected = model_over(&profiles, kept).rank();
        match &r.report.as_ref().expect("report exists").final_ranking {
            FinalRanking::Lbr(ranked) => {
                assert_eq!(ranked, &expected, "{name}: post-shed ranking matches batch");
            }
            other => panic!("{name}: wrong profile kind {other:?}"),
        }
    }
}
