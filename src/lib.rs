//! # stm — short-term-memory failure diagnosis
//!
//! A complete Rust reproduction of *"Leveraging the Short-Term Memory of
//! Hardware to Diagnose Production-Run Software Failures"* (Arulraj, Jin,
//! Lu — ASPLOS 2014): the LBR/LCR hardware facilities, the LBRLOG/LCRLOG
//! log-enhancement and LBRA/LCRA automatic-diagnosis systems built on
//! them, the CBI/CCI/PBI baselines, and the 31-failure benchmark suite the
//! paper evaluates on.
//!
//! This crate is a facade: it re-exports the workspace members so
//! downstream users depend on one crate.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`machine`] | `stm-machine` | deterministic multithreaded IR machine |
//! | [`hardware`] | `stm-hardware` | LBR, BTS, MESI caches, LCR, counters |
//! | [`core`] | `stm-core` | instrumentation, LBRLOG/LCRLOG, LBRA/LCRA |
//! | [`baselines`] | `stm-baselines` | CBI, CCI, PBI |
//! | [`suite`] | `stm-suite` | the 31 Table 4 failures with ground truth |
//! | [`telemetry`] | `stm-telemetry` | tracing, metrics, trace export |
//! | [`forensics`] | `stm-forensics` | failure dossiers, explainable reports, bench diffing |
//! | [`fleet`] | `stm-fleet` | long-lived sharded ingest daemon with explicit backpressure |
//! | [`profiler`] | `stm-profiler` | guest sampling profiles, pipeline critical-path attribution |
//! | [`observatory`] | `stm-observatory` | live health model, `/metrics` + `/health` endpoint, status board |
//!
//! ## Quickstart
//!
//! ```
//! use stm::core::prelude::*;
//! use stm::machine::builder::ProgramBuilder;
//! use stm::machine::ir::BinOp;
//!
//! // A buggy program: rejects timeout 0 with an error message.
//! let mut pb = ProgramBuilder::new("demo");
//! let main = pb.declare_function("main");
//! let mut f = pb.build_function(main, "demo.c");
//! let err = f.new_block();
//! let ok = f.new_block();
//! let t = f.read_input(0);
//! let bad = f.bin(BinOp::Le, t, 0); // root cause: should be `<`
//! f.br(bad, err, ok);
//! f.set_block(err);
//! let site = f.log_error("timeout must be positive");
//! f.exit(1);
//! f.ret(None);
//! f.set_block(ok);
//! f.output(t);
//! f.ret(None);
//! f.finish();
//! let program = pb.finish(main);
//!
//! // Deploy with LBRA instrumentation and diagnose from 10+10 runs.
//! // The session collects profiles (in parallel with `.threads(k)`;
//! // results are bit-identical to sequential) and hands them to the
//! // ranker.
//! let diagnosis = DiagnosisSession::new(&program)
//!     .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
//!     .failure(FailureSpec::ErrorLogAt(site))
//!     .failing(vec![Workload::new(vec![0])])
//!     .passing(vec![Workload::new(vec![5])])
//!     .collect()
//!     .expect("collection succeeds")
//!     .lbra();
//! assert_eq!(diagnosis.top().unwrap().score, 1.0);
//! ```

#![warn(missing_docs)]

pub use stm_baselines as baselines;
pub use stm_core as core;
pub use stm_fleet as fleet;
pub use stm_forensics as forensics;
pub use stm_hardware as hardware;
pub use stm_machine as machine;
pub use stm_observatory as observatory;
pub use stm_profiler as profiler;
pub use stm_suite as suite;
pub use stm_telemetry as telemetry;
