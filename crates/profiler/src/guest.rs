//! Guest-level sampling-profile aggregation.
//!
//! A [`GuestProfile`] folds the per-run
//! [`stack_samples`](stm_machine::report::RunReport::stack_samples) and
//! [`lock_waits`](stm_machine::report::RunReport::lock_waits) of any
//! number of runs into three spectra:
//!
//! * **folded stacks** — `main;merge;hash_lookup 42` lines, one per
//!   distinct call chain, directly consumable by `flamegraph.pl` or
//!   inferno;
//! * **hot blocks** — leaf-sample counts per (function, basic block),
//!   with source locations, the program-spectra view of where guest time
//!   goes;
//! * **lock contention** — per-lock wait totals (in retired
//!   instructions, the machine's only clock) with holder attribution.
//!
//! Aggregation is pure data-plumbing over deterministic inputs: feeding
//! runs in the same order yields byte-identical renderings, which is what
//! lets `tests/engine_determinism.rs` pin profile output across engine
//! thread counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use stm_machine::ids::ThreadId;
use stm_machine::ir::Program;
use stm_machine::report::RunReport;
use stm_telemetry::json::Json;

/// One row of the hot-block table: leaf samples attributed to a single
/// basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotBlock {
    /// Function name.
    pub func: String,
    /// Basic-block index within the function.
    pub block: u32,
    /// `file:line` of the block's first statement.
    pub loc: String,
    /// Leaf samples that landed in the block.
    pub samples: u64,
}

/// One row of the lock-contention table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// The lock, resolved to a global name when the address falls inside
    /// one (`mutex`, `proc_table+2`), else the raw hex address.
    pub lock: String,
    /// Contended acquisitions observed.
    pub contended: u64,
    /// Total steps spent waiting across those acquisitions.
    pub total_wait_steps: u64,
    /// Longest single wait.
    pub max_wait_steps: u64,
    /// Waits attributed to each holding thread, `(holder, waits)` with
    /// holder rendered as `t0`, `t1`, ... or `?` when unknown.
    pub holders: Vec<(String, u64)>,
}

/// Per-lock tallies: (contended acquisitions, total wait steps, max wait
/// steps, holder → waits attributed).
type LockStats = (u64, u64, u64, BTreeMap<Option<u32>, u64>);

/// Aggregated guest profile of one benchmark's runs.
#[derive(Debug, Clone)]
pub struct GuestProfile {
    period: u64,
    runs: u64,
    samples: u64,
    func_names: Vec<String>,
    block_locs: Vec<Vec<String>>,
    globals: Vec<(String, u64, u64)>,
    /// Call chain (outermost-first function indices) → samples.
    stacks: BTreeMap<Vec<u32>, u64>,
    /// (function index, block index) → leaf samples.
    blocks: BTreeMap<(u32, u32), u64>,
    /// Lock address → per-lock tallies.
    locks: BTreeMap<u64, LockStats>,
}

impl GuestProfile {
    /// Creates an empty profile for `program`, sampled at `period`
    /// retired instructions (recorded for rendering; the interpreter owns
    /// the actual countdown).
    pub fn new(program: &Program, period: u64) -> Self {
        let func_names = program.functions.iter().map(|f| f.name.clone()).collect();
        let block_locs = program
            .functions
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .map(|b| {
                        let loc = b.stmts.first().map_or(b.term_loc, |s| s.loc);
                        format!("{}:{}", program.file_name(loc.file), loc.line)
                    })
                    .collect()
            })
            .collect();
        let globals = program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.addr, g.words))
            .collect();
        GuestProfile {
            period,
            runs: 0,
            samples: 0,
            func_names,
            block_locs,
            globals,
            stacks: BTreeMap::new(),
            blocks: BTreeMap::new(),
            locks: BTreeMap::new(),
        }
    }

    /// Folds one run's samples and lock waits into the profile.
    pub fn add_run(&mut self, report: &RunReport) {
        self.runs += 1;
        for s in &report.stack_samples {
            self.samples += 1;
            let chain: Vec<u32> = s.frames.iter().map(|(f, _)| f.raw()).collect();
            *self.stacks.entry(chain).or_insert(0) += 1;
            if let Some((f, b)) = s.frames.last() {
                *self.blocks.entry((f.raw(), b.raw())).or_insert(0) += 1;
            }
        }
        for w in &report.lock_waits {
            let entry = self
                .locks
                .entry(w.addr)
                .or_insert_with(|| (0, 0, 0, BTreeMap::new()));
            entry.0 += 1;
            entry.1 += w.wait_steps;
            entry.2 = entry.2.max(w.wait_steps);
            *entry.3.entry(w.holder.map(|t| t.0)).or_insert(0) += 1;
        }
    }

    /// Sampling period the profile was recorded at.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Runs folded in.
    pub fn run_count(&self) -> u64 {
        self.runs
    }

    /// Total stack samples folded in.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    fn func_name(&self, idx: u32) -> &str {
        self.func_names
            .get(idx as usize)
            .map_or("<unknown>", |n| n.as_str())
    }

    /// Renders the profile as folded stacks — one
    /// `frame;frame;...frame count` line per distinct call chain, sorted
    /// lexicographically, ready for `flamegraph.pl` or `inferno`.
    #[must_use = "rendering has no side effects; print or write the returned text"]
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = self
            .stacks
            .iter()
            .map(|(chain, n)| {
                let frames: Vec<&str> = chain.iter().map(|f| self.func_name(*f)).collect();
                format!("{} {}", frames.join(";"), n)
            })
            .collect();
        lines.sort_unstable();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The hottest *leaf* function — where the most samples landed — with
    /// its sample count. Ties break to the lexicographically smallest
    /// name so the answer is stable.
    #[must_use = "the looked-up frame is the result; use it"]
    pub fn top_frame(&self) -> Option<(String, u64)> {
        let mut per_func: BTreeMap<&str, u64> = BTreeMap::new();
        for ((f, _), n) in &self.blocks {
            *per_func.entry(self.func_name(*f)).or_insert(0) += n;
        }
        per_func
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(name, n)| (name.to_string(), n))
    }

    /// The `k` hottest basic blocks by leaf samples (ties break to the
    /// smaller (function, block) index).
    #[must_use = "the computed table is the result; use it"]
    pub fn hot_blocks(&self, k: usize) -> Vec<HotBlock> {
        let mut rows: Vec<(&(u32, u32), &u64)> = self.blocks.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        rows.into_iter()
            .take(k)
            .map(|((f, b), n)| HotBlock {
                func: self.func_name(*f).to_string(),
                block: *b,
                loc: self
                    .block_locs
                    .get(*f as usize)
                    .and_then(|bl| bl.get(*b as usize))
                    .cloned()
                    .unwrap_or_else(|| "<unknown>:0".to_string()),
                samples: *n,
            })
            .collect()
    }

    fn lock_name(&self, addr: u64) -> String {
        for (name, base, words) in &self.globals {
            if addr >= *base && addr < base + words * 8 {
                let off = (addr - base) / 8;
                return if off == 0 {
                    name.clone()
                } else {
                    format!("{name}+{off}")
                };
            }
        }
        format!("{addr:#x}")
    }

    /// The lock-contention table, most-waited lock first (ties break to
    /// the lower address).
    #[must_use = "the computed table is the result; use it"]
    pub fn lock_profile(&self) -> Vec<LockSite> {
        let mut rows: Vec<(&u64, &LockStats)> = self.locks.iter().collect();
        rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(b.0)));
        rows.into_iter()
            .map(|(addr, (contended, total, max, holders))| {
                let mut hs: Vec<(String, u64)> = holders
                    .iter()
                    .map(|(h, n)| {
                        let name = h.map_or("?".to_string(), |t| ThreadId(t).to_string());
                        (name, *n)
                    })
                    .collect();
                hs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                LockSite {
                    lock: self.lock_name(*addr),
                    contended: *contended,
                    total_wait_steps: *total,
                    max_wait_steps: *max,
                    holders: hs,
                }
            })
            .collect()
    }

    /// Renders the profile as a markdown report: hot blocks, hot
    /// functions (top frames) and the lock-contention table.
    #[must_use = "rendering has no side effects; print or write the returned text"]
    pub fn render_md(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sampled every {} instructions · {} samples across {} runs\n",
            self.period, self.samples, self.runs
        );
        out.push_str("## Hot blocks (leaf samples)\n\n");
        if self.blocks.is_empty() {
            out.push_str("(no samples)\n");
        } else {
            out.push_str("| function | block | location | samples | % |\n");
            out.push_str("|---|---|---|---|---|\n");
            for r in self.hot_blocks(k) {
                let pct = 100.0 * r.samples as f64 / self.samples.max(1) as f64;
                let _ = writeln!(
                    out,
                    "| {} | bb{} | {} | {} | {pct:.1} |",
                    r.func, r.block, r.loc, r.samples
                );
            }
        }
        out.push_str("\n## Lock contention\n\n");
        let locks = self.lock_profile();
        if locks.is_empty() {
            out.push_str("(no contended acquisitions)\n");
        } else {
            out.push_str("| lock | contended | total wait (steps) | max wait | held by |\n");
            out.push_str("|---|---|---|---|---|\n");
            for l in locks {
                let holders: Vec<String> =
                    l.holders.iter().map(|(h, n)| format!("{h}×{n}")).collect();
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} |",
                    l.lock,
                    l.contended,
                    l.total_wait_steps,
                    l.max_wait_steps,
                    holders.join(", ")
                );
            }
        }
        out
    }

    /// Serializes the profile (summary, hot blocks, top frame, lock
    /// table) as one JSON object.
    #[must_use = "serialization has no side effects; use the returned value"]
    pub fn to_json(&self, k: usize) -> Json {
        let hot = self
            .hot_blocks(k)
            .into_iter()
            .map(|r| {
                Json::obj([
                    ("func", r.func.into()),
                    ("block", u64::from(r.block).into()),
                    ("loc", r.loc.into()),
                    ("samples", r.samples.into()),
                ])
            })
            .collect();
        let locks = self
            .lock_profile()
            .into_iter()
            .map(|l| {
                Json::obj([
                    ("lock", l.lock.into()),
                    ("contended", l.contended.into()),
                    ("total_wait_steps", l.total_wait_steps.into()),
                    ("max_wait_steps", l.max_wait_steps.into()),
                    (
                        "holders",
                        Json::Arr(
                            l.holders
                                .into_iter()
                                .map(|(h, n)| {
                                    Json::obj([("holder", h.into()), ("waits", n.into())])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("period", self.period.into()),
            ("runs", self.runs.into()),
            ("samples", self.samples.into()),
            (
                "top_frame",
                match self.top_frame() {
                    Some((name, n)) => Json::obj([("func", name.into()), ("samples", n.into())]),
                    None => Json::Null,
                },
            ),
            ("hot_blocks", Json::Arr(hot)),
            ("locks", Json::Arr(locks)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ids::{BlockId, FuncId};
    use stm_machine::report::{LockWaitEvent, RunOutcome, RunReport, StackSample};

    fn two_function_program() -> (Program, u64) {
        let mut pb = ProgramBuilder::new("p");
        let mutex = pb.global("mutex", 1);
        let main = pb.declare_function("main");
        let work = pb.declare_function("work");
        {
            let mut f = pb.build_function(work, "lib.c");
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let _ = f.call(work, &[]);
            f.ret(None);
            f.finish();
        }
        (pb.finish(main), mutex)
    }

    fn report_with(samples: Vec<StackSample>, waits: Vec<LockWaitEvent>) -> RunReport {
        RunReport {
            outcome: RunOutcome::Completed { exit_code: 0 },
            outputs: vec![],
            logs: vec![],
            profiles: vec![],
            samples: vec![],
            steps: 100,
            branches_retired: 0,
            accesses_retired: 0,
            threads_spawned: 2,
            thread_states: vec![],
            stack_samples: samples,
            lock_waits: waits,
        }
    }

    fn sample(frames: &[(u32, u32)]) -> StackSample {
        StackSample {
            thread: ThreadId::MAIN,
            step: 10,
            frames: frames
                .iter()
                .map(|(f, b)| (FuncId::new(*f), BlockId::new(*b)))
                .collect(),
        }
    }

    #[test]
    fn folded_stacks_hot_blocks_and_top_frame() {
        let (p, _) = two_function_program();
        let mut g = GuestProfile::new(&p, 16);
        g.add_run(&report_with(
            vec![
                sample(&[(0, 0)]),
                sample(&[(0, 0), (1, 0)]),
                sample(&[(0, 0), (1, 0)]),
            ],
            vec![],
        ));
        assert_eq!(g.sample_count(), 3);
        assert_eq!(g.folded(), "main 1\nmain;work 2\n");
        let (top, n) = g.top_frame().expect("samples exist");
        assert_eq!((top.as_str(), n), ("work", 2));
        let hot = g.hot_blocks(10);
        assert_eq!(hot[0].func, "work");
        assert_eq!(hot[0].samples, 2);
        assert_eq!(hot[0].loc, "lib.c:1");
        // Folding the same run again doubles every count but keeps the
        // rendering shape — determinism is pure data-plumbing here.
        let mut g2 = GuestProfile::new(&p, 16);
        for _ in 0..2 {
            g2.add_run(&report_with(vec![sample(&[(0, 0)])], vec![]));
        }
        assert_eq!(g2.folded(), "main 2\n");
        assert_eq!(g2.run_count(), 2);
    }

    #[test]
    fn lock_profile_resolves_names_and_holders() {
        let (p, mutex) = two_function_program();
        let mut g = GuestProfile::new(&p, 16);
        let wait = |holder: Option<u32>, steps: u64| LockWaitEvent {
            addr: mutex,
            waiter: ThreadId(1),
            holder: holder.map(ThreadId),
            wait_steps: steps,
            acquired_step: 50,
            pc: 0,
        };
        let anon = LockWaitEvent {
            addr: 0xDEAD_0000,
            ..wait(None, 1)
        };
        g.add_run(&report_with(
            vec![],
            vec![wait(Some(0), 10), wait(Some(0), 4), wait(Some(1), 2), anon],
        ));
        let locks = g.lock_profile();
        assert_eq!(locks.len(), 2);
        // Most-waited first: the named mutex with 16 total steps.
        assert_eq!(locks[0].lock, "mutex");
        assert_eq!(locks[0].contended, 3);
        assert_eq!(locks[0].total_wait_steps, 16);
        assert_eq!(locks[0].max_wait_steps, 10);
        assert_eq!(
            locks[0].holders,
            vec![("t0".to_string(), 2), ("t1".to_string(), 1)]
        );
        // Unresolvable addresses render as hex, unknown holders as "?".
        assert_eq!(locks[1].lock, "0xdead0000");
        assert_eq!(locks[1].holders, vec![("?".to_string(), 1)]);
        let md = g.render_md(10);
        assert!(md.contains("| mutex | 3 | 16 | 10 |"));
        let json = g.to_json(10).encode();
        assert!(json.contains("\"lock\":\"mutex\""));
    }

    #[test]
    fn empty_profile_renders_placeholders() {
        let (p, _) = two_function_program();
        let g = GuestProfile::new(&p, 16);
        assert_eq!(g.folded(), "");
        assert!(g.top_frame().is_none());
        let md = g.render_md(5);
        assert!(md.contains("(no samples)"));
        assert!(md.contains("(no contended acquisitions)"));
    }
}
