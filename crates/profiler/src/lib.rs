//! # stm-profiler — self-observability for the stm stack
//!
//! The paper's thesis is that cheap, always-on hardware telemetry is
//! enough to diagnose production failures. This crate gives the
//! reproduction the same story about *its own* execution, in two halves:
//!
//! * [`guest`] — aggregates the interpreter's deterministic stack samples
//!   and lock-wait events (recorded when
//!   [`RunConfig::profile_period`](stm_machine::interp::RunConfig::profile_period)
//!   is nonzero) into a [`GuestProfile`]: folded stacks for
//!   `flamegraph.pl`/inferno, per-block hot-spot tables, and a
//!   lock-contention profile with holder attribution. Samples fire on
//!   retired-instruction counts, so every artifact is byte-identical
//!   across engine thread counts.
//! * [`critical`] — walks the span DAG a
//!   [`DiagnosisSession`](../stm_core/engine/struct.DiagnosisSession.html)
//!   leaves in the telemetry collector (`engine.collect` →
//!   `engine.enqueue` → `engine.job` → `engine.consume`, linked by flow
//!   ids) and produces a [`CriticalPathReport`]: an exact tiling of the
//!   session's wall-clock into attributed phases, top-k edges, and a
//!   parallel-efficiency figure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod critical;
pub mod guest;

pub use critical::{CriticalPathReport, PathSegment};
pub use guest::{GuestProfile, HotBlock, LockSite};

/// Default guest sampling period, in retired instructions per sample.
///
/// Chosen so the table4 suite stays under a few percent of added
/// wall-clock (each sample allocates one small call-stack vector) while a
/// 10-profile diagnosis session still lands hundreds of samples.
pub const DEFAULT_PERIOD: u64 = 512;
