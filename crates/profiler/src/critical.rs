//! Critical-path attribution over the diagnosis pipeline's span DAG.
//!
//! A [`DiagnosisSession::collect`] leaves a well-shaped trace in the
//! telemetry collector: one `engine.collect` root, `engine.enqueue` →
//! `engine.job` → `engine.consume` chains tied per job by flow ids, and
//! one `engine.worker` span per worker thread. [`CriticalPathReport`]
//! walks that DAG and tiles the root's wall-clock **exactly** — every
//! microsecond between session start and end lands in exactly one
//! labeled [`PathSegment`] — so phase durations always sum to the
//! session duration and nothing hides in unattributed gaps.
//!
//! The walk is a monotone sweep along the coordinator's timeline. Each
//! ordered consumption closes one job; the gap in front of it is carved
//! up by that job's own flow chain (enqueue span, execution span) into
//! *setup/coordinator* (before the enqueue), *enqueue*, *queue wait*
//! (enqueued but not yet executing), *job execution*, and *result
//! hold-back* (executed but parked awaiting in-order consumption —
//! speculation cost). Whatever follows the last consumption is
//! *finalize*. Sequential sessions have no consume spans; their
//! `engine.job` spans chain directly with *coordinator* gaps.
//!
//! Because the segments are wall-clock intervals, the report is a
//! measurement of this machine on this run — unlike the guest profile it
//! is *not* byte-stable across runs, and the determinism pin in
//! `tests/engine_determinism.rs` deliberately excludes it.
//!
//! [`DiagnosisSession::collect`]: ../stm_core/engine/struct.DiagnosisSession.html

use std::collections::BTreeMap;
use std::fmt::Write as _;
use stm_telemetry::json::Json;
use stm_telemetry::SpanRecord;

/// One labeled interval of the tiled session timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Interval start, microseconds since the telemetry epoch.
    pub start_us: u64,
    /// Interval end (exclusive).
    pub end_us: u64,
    /// Phase label (`"job execution"`, `"queue wait"`, ...).
    pub label: &'static str,
    /// What the interval was attributed to (`"flow 17"`, `""` for
    /// session-level phases).
    pub detail: String,
}

impl PathSegment {
    /// Interval length in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Critical-path attribution of one `engine.collect` session.
#[derive(Debug, Clone)]
pub struct CriticalPathReport {
    /// Session wall-clock, microseconds.
    pub wall_us: u64,
    /// Worker threads observed (1 for a sequential session).
    pub workers: usize,
    /// `engine.job` executions inside the session window.
    pub jobs: usize,
    /// Total microseconds workers spent executing jobs.
    pub busy_us: u64,
    /// `busy / (workers × wall)`, in percent — how much of the fleet's
    /// available time did useful job work.
    pub parallel_efficiency_pct: f64,
    /// The exact tiling of `[session start, session end]`, in time order.
    pub segments: Vec<PathSegment>,
}

/// Span view the sweep works over: `(start, end, flow)`.
type Iv = (u64, u64, u64);

fn interval(s: &SpanRecord) -> Option<Iv> {
    s.dur_us.map(|d| (s.start_us, s.start_us + d, s.flow))
}

impl CriticalPathReport {
    /// Attributes the **last** completed `engine.collect` session found in
    /// `spans`. Returns `None` when there is none (telemetry off, or the
    /// buffer was drained before the session ended).
    pub fn analyze(spans: &[SpanRecord]) -> Option<CriticalPathReport> {
        let root = spans
            .iter()
            .filter(|s| s.name == "engine.collect" && s.dur_us.is_some())
            .max_by_key(|s| (s.start_us, s.id))?;
        let (w_start, w_end, _) = interval(root)?;
        let inside = |iv: &Iv| iv.0 < w_end && iv.1 > w_start;

        let mut consumes: Vec<Iv> = vec![];
        let mut jobs: Vec<Iv> = vec![];
        let mut enqueues: BTreeMap<u64, Iv> = BTreeMap::new();
        let mut worker_edges: Vec<(u64, i64)> = vec![];
        for s in spans {
            let Some(iv) = interval(s) else { continue };
            match s.name {
                "engine.consume" if inside(&iv) => consumes.push(iv),
                "engine.job" if inside(&iv) => jobs.push(iv),
                "engine.enqueue" if iv.2 != 0 => {
                    enqueues.insert(iv.2, iv);
                }
                "engine.worker" if inside(&iv) => {
                    worker_edges.push((iv.0, 1));
                    worker_edges.push((iv.1, -1));
                }
                _ => {}
            }
        }
        // A session runs one worker fleet per plan, sequentially (witness
        // mode: a failing plan then a passing one) — the fleet size is the
        // *peak* number of concurrently live workers, not the span count.
        worker_edges.sort_unstable();
        let mut live = 0i64;
        let mut workers = 0i64;
        for (_, d) in worker_edges {
            live += d;
            workers = workers.max(live);
        }
        let workers = workers as usize;
        consumes.sort_unstable();
        jobs.sort_unstable();
        let job_by_flow: BTreeMap<u64, Iv> = jobs
            .iter()
            .filter(|j| j.2 != 0)
            .map(|j| (j.2, *j))
            .collect();

        let busy_us: u64 = jobs.iter().map(|(s, e, _)| e - s).sum();
        let workers = workers.max(1);
        let wall_us = w_end - w_start;
        let parallel_efficiency_pct = if wall_us == 0 {
            0.0
        } else {
            100.0 * busy_us as f64 / (workers as f64 * wall_us as f64)
        };

        // The monotone sweep: `push` clips every proposed interval to the
        // un-tiled remainder, so the segments partition the window no
        // matter how the underlying spans overlap.
        let mut cursor = w_start;
        let mut segments: Vec<PathSegment> = vec![];
        let mut push = |cursor: &mut u64, until: u64, label: &'static str, detail: &str| {
            let s = *cursor;
            let e = until.clamp(s, w_end);
            if e > s {
                segments.push(PathSegment {
                    start_us: s,
                    end_us: e,
                    label,
                    detail: detail.to_string(),
                });
                *cursor = e;
            }
        };

        if consumes.is_empty() {
            // Sequential session: chain the job spans directly.
            for (i, (js, je, _)) in jobs.iter().enumerate() {
                let lead = if i == 0 { "setup" } else { "coordinator" };
                push(&mut cursor, *js, lead, "");
                push(&mut cursor, *je, "job execution", &format!("job {i}"));
            }
            push(&mut cursor, w_end, "finalize", "");
        } else {
            for (i, (cs, ce, flow)) in consumes.iter().enumerate() {
                let detail = format!("flow {flow}");
                let lead = if i == 0 { "setup" } else { "coordinator" };
                match (enqueues.get(flow), job_by_flow.get(flow)) {
                    (enq, Some((js, je, _))) => {
                        if let Some((es, ee, _)) = enq {
                            push(&mut cursor, *es, lead, "");
                            push(&mut cursor, *ee, "enqueue", &detail);
                            push(&mut cursor, *js, "queue wait", &detail);
                        } else {
                            push(&mut cursor, *js, lead, "");
                        }
                        push(&mut cursor, *je, "job execution", &detail);
                        push(&mut cursor, *cs, "result hold-back", &detail);
                    }
                    // Orphan consume (its job ran before the window, or
                    // flows were off): the gap is coordinator time.
                    _ => push(&mut cursor, *cs, lead, ""),
                }
                push(&mut cursor, *ce, "ordered consumption", &detail);
            }
            push(&mut cursor, w_end, "finalize", "");
        }

        Some(CriticalPathReport {
            wall_us,
            workers,
            jobs: jobs.len(),
            busy_us,
            parallel_efficiency_pct,
            segments,
        })
    }

    /// Total attributed microseconds per label.
    #[must_use = "the computed table is the result; use it"]
    pub fn by_label(&self) -> BTreeMap<&'static str, u64> {
        let mut m = BTreeMap::new();
        for s in &self.segments {
            *m.entry(s.label).or_insert(0) += s.dur_us();
        }
        m
    }

    /// Attributed time as a percentage of the session wall-clock. 100 by
    /// construction (the sweep tiles the window exactly); anything else
    /// is a bug.
    pub fn coverage_pct(&self) -> f64 {
        if self.wall_us == 0 {
            return 100.0;
        }
        let covered: u64 = self.segments.iter().map(PathSegment::dur_us).sum();
        100.0 * covered as f64 / self.wall_us as f64
    }

    /// The `k` longest segments — the edges of the span DAG that
    /// dominated the session (ties break to the earlier segment).
    #[must_use = "the computed table is the result; use it"]
    pub fn top_edges(&self, k: usize) -> Vec<PathSegment> {
        let mut edges = self.segments.clone();
        edges.sort_by(|a, b| {
            b.dur_us()
                .cmp(&a.dur_us())
                .then_with(|| a.start_us.cmp(&b.start_us))
        });
        edges.truncate(k);
        edges
    }

    /// Renders the report as markdown: summary line, per-phase table,
    /// top-k edges.
    #[must_use = "rendering has no side effects; print or write the returned text"]
    pub fn render_md(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall {} us · {} jobs on {} worker(s) · busy {} us · parallel efficiency {:.1}% · coverage {:.1}%\n",
            self.wall_us,
            self.jobs,
            self.workers,
            self.busy_us,
            self.parallel_efficiency_pct,
            self.coverage_pct()
        );
        out.push_str("## Phase attribution\n\n| phase | us | % of wall |\n|---|---|---|\n");
        let mut rows: Vec<(&str, u64)> = self.by_label().into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (label, us) in rows {
            let pct = 100.0 * us as f64 / self.wall_us.max(1) as f64;
            let _ = writeln!(out, "| {label} | {us} | {pct:.1} |");
        }
        out.push_str(
            "\n## Longest edges\n\n| phase | detail | start us | dur us |\n|---|---|---|---|\n",
        );
        for e in self.top_edges(k) {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                e.label,
                if e.detail.is_empty() { "-" } else { &e.detail },
                e.start_us - self.segments.first().map_or(0, |s| s.start_us),
                e.dur_us()
            );
        }
        out
    }

    /// Serializes the report as one JSON object.
    #[must_use = "serialization has no side effects; use the returned value"]
    pub fn to_json(&self) -> Json {
        let by_label: std::collections::BTreeMap<String, Json> = self
            .by_label()
            .into_iter()
            .map(|(l, us)| (l.to_string(), Json::from(us)))
            .collect();
        let segments = self
            .segments
            .iter()
            .map(|s| {
                Json::obj([
                    ("label", s.label.into()),
                    ("detail", s.detail.clone().into()),
                    ("start_us", s.start_us.into()),
                    ("dur_us", s.dur_us().into()),
                ])
            })
            .collect();
        Json::obj([
            ("wall_us", self.wall_us.into()),
            ("workers", self.workers.into()),
            ("jobs", self.jobs.into()),
            ("busy_us", self.busy_us.into()),
            (
                "parallel_efficiency_pct",
                self.parallel_efficiency_pct.into(),
            ),
            ("coverage_pct", self.coverage_pct().into()),
            ("phases", Json::Obj(by_label)),
            ("segments", Json::Arr(segments)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start: u64, end: u64, flow: u64, tid: u64) -> SpanRecord {
        SpanRecord {
            name,
            cat: "engine",
            tid,
            start_us: start,
            dur_us: Some(end - start),
            id: start + 1,
            parent: 0,
            flow,
            flow_phase: None,
        }
    }

    #[test]
    fn parallel_session_tiles_exactly() {
        let spans = vec![
            span("engine.collect", 0, 100, 0, 1),
            span("engine.worker", 0, 95, 0, 2),
            span("engine.worker", 0, 95, 0, 3),
            span("engine.enqueue", 1, 2, 1, 1),
            span("engine.enqueue", 2, 3, 2, 1),
            span("engine.job", 3, 40, 1, 2),
            span("engine.job", 4, 60, 2, 3),
            span("engine.consume", 41, 45, 1, 1),
            span("engine.consume", 61, 70, 2, 1),
        ];
        let r = CriticalPathReport::analyze(&spans).expect("collect span present");
        assert_eq!(r.wall_us, 100);
        assert_eq!(r.workers, 2);
        assert_eq!(r.jobs, 2);
        assert_eq!(r.busy_us, 37 + 56);
        assert!((r.coverage_pct() - 100.0).abs() < 1e-9);
        assert!((r.parallel_efficiency_pct - 46.5).abs() < 1e-9);
        // The sweep must tile the window with no gaps or overlaps.
        assert_eq!(r.segments.first().unwrap().start_us, 0);
        assert_eq!(r.segments.last().unwrap().end_us, 100);
        for w in r.segments.windows(2) {
            assert_eq!(w[0].end_us, w[1].start_us);
        }
        let phases = r.by_label();
        assert_eq!(phases["setup"], 1);
        assert_eq!(phases["enqueue"], 1);
        assert_eq!(phases["queue wait"], 1);
        // Flow 1 executes [3,40]; flow 2's remainder [45,60] also counts.
        assert_eq!(phases["job execution"], 37 + 15);
        assert_eq!(phases["result hold-back"], 1 + 1);
        assert_eq!(phases["ordered consumption"], 4 + 9);
        assert_eq!(phases["finalize"], 30);
        let top = r.top_edges(2);
        assert_eq!(top[0].label, "job execution");
        assert_eq!(top[0].dur_us(), 37);
        assert_eq!(top[1].label, "finalize");
        let md = r.render_md(3);
        assert!(md.contains("parallel efficiency 46.5%"));
        assert!(md.contains("| job execution | 52 |"));
        let json = r.to_json().encode();
        assert!(json.contains("\"coverage_pct\":100"));
    }

    #[test]
    fn sequential_session_chains_job_spans() {
        let spans = vec![
            span("engine.collect", 0, 50, 0, 1),
            span("engine.job", 5, 20, 0, 1),
            span("engine.job", 22, 40, 0, 1),
        ];
        let r = CriticalPathReport::analyze(&spans).expect("collect span present");
        assert_eq!(r.workers, 1);
        assert!((r.coverage_pct() - 100.0).abs() < 1e-9);
        assert!((r.parallel_efficiency_pct - 66.0).abs() < 1e-9);
        let phases = r.by_label();
        assert_eq!(phases["setup"], 5);
        assert_eq!(phases["job execution"], 33);
        assert_eq!(phases["coordinator"], 2);
        assert_eq!(phases["finalize"], 10);
    }

    #[test]
    fn analyze_picks_the_last_session_and_handles_absence() {
        assert!(CriticalPathReport::analyze(&[]).is_none());
        let only_open = vec![SpanRecord {
            dur_us: None,
            ..span("engine.collect", 0, 0, 0, 1)
        }];
        assert!(CriticalPathReport::analyze(&only_open).is_none());
        let spans = vec![
            span("engine.collect", 0, 10, 0, 1),
            span("engine.collect", 20, 30, 0, 1),
            span("engine.job", 21, 29, 0, 1),
        ];
        let r = CriticalPathReport::analyze(&spans).unwrap();
        assert_eq!(r.wall_us, 10);
        assert_eq!(r.jobs, 1);
    }
}
