//! The benchmark vocabulary: one [`Benchmark`] per real-world failure of
//! the paper's Table 4, carrying the IR program, ground truth and
//! workloads, plus the numbers the paper reports for that failure (so the
//! harness can print paper-vs-measured side by side).

use stm_core::runner::{FailureSpec, Workload};
use stm_machine::events::CoherenceState;
use stm_machine::ids::{BranchId, FuncId};
use stm_machine::ir::{Program, SourceLoc};

/// Implementation language of the original application (CBI supports only
/// C programs — the `N/A` rows of Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// C.
    C,
    /// C++.
    Cpp,
}

/// Root-cause classification (Table 4's "Root Cause" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCauseKind {
    /// Configuration error.
    Config,
    /// Semantic bug.
    Semantic,
    /// Memory bug.
    Memory,
    /// Single-variable atomicity violation.
    AtomicityViolation,
    /// Order violation.
    OrderViolation,
}

impl RootCauseKind {
    /// Table 4's abbreviation.
    pub fn short(&self) -> &'static str {
        match self {
            RootCauseKind::Config => "config.",
            RootCauseKind::Semantic => "semantic",
            RootCauseKind::Memory => "memory",
            RootCauseKind::AtomicityViolation => "A.V.",
            RootCauseKind::OrderViolation => "O.V.",
        }
    }
}

/// Failure symptom (Table 4's "Failure Symptom" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symptom {
    /// An error message is emitted.
    ErrorMessage,
    /// The program crashes.
    Crash,
    /// The program hangs.
    Hang,
    /// The program produces wrong output.
    WrongOutput,
    /// The program corrupts its log silently.
    CorruptedLog,
}

impl Symptom {
    /// Table 4's wording.
    pub fn describe(&self) -> &'static str {
        match self {
            Symptom::ErrorMessage => "error message",
            Symptom::Crash => "crash",
            Symptom::Hang => "hang",
            Symptom::WrongOutput => "wrong output",
            Symptom::CorruptedLog => "corrupted log",
        }
    }
}

/// Sequential vs. concurrency benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugClass {
    /// A sequential-bug failure (Table 6).
    Sequential,
    /// A concurrency-bug failure (Table 7).
    Concurrency,
}

/// A `✓ n` / `✓ n*` / `-` cell from the paper's result tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperMark {
    /// `✓ n`: the root cause itself at entry/rank `n`.
    Found(u32),
    /// `✓ n*`: the root cause was missed but a related branch is at `n`.
    Related(u32),
    /// `-`: nothing related found.
    Miss,
}

impl std::fmt::Display for PaperMark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaperMark::Found(n) => write!(f, "Y {n}"),
            PaperMark::Related(n) => write!(f, "Y {n}*"),
            PaperMark::Miss => write!(f, "-"),
        }
    }
}

/// The numbers the paper reports for one benchmark (for paper-vs-measured
/// tables). `None` in a CBI field means CBI is inapplicable (`N/A`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PaperExpectations {
    /// Table 6 "LBRLOG w/ tog".
    pub lbrlog_tog: Option<PaperMark>,
    /// Table 6 "LBRLOG w/o tog".
    pub lbrlog_no_tog: Option<PaperMark>,
    /// Table 6 "LBRA" rank.
    pub lbra: Option<PaperMark>,
    /// Table 6 "CBI" rank; `None` = N/A.
    pub cbi: Option<PaperMark>,
    /// Table 6 patch distance from the failure site; `None` = ∞
    /// (different file). Only meaningful when `has_patch_distance`.
    pub patch_dist_failure: Option<u32>,
    /// Table 6 patch distance from the nearest LBR branch; `None` = ∞.
    pub patch_dist_lbr: Option<u32>,
    /// Marks the two patch-distance fields as meaningful (Table 6 rows).
    pub has_patch_distance: bool,
    /// Table 7 LCRLOG entry under the space-saving Conf1.
    pub lcrlog_conf1: Option<PaperMark>,
    /// Table 7 LCRLOG entry under the space-consuming Conf2.
    pub lcrlog_conf2: Option<PaperMark>,
    /// Table 7 LCRA rank (under Conf2).
    pub lcra: Option<PaperMark>,
    /// Table 4 KLOC of the real application.
    pub kloc: f64,
    /// Table 4 "#Log Points" of the real application.
    pub log_points: u32,
}

/// The failure-predicting event of a concurrency benchmark (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpeSpec {
    /// Source location of the access (the `a2`/`B2`/`B3` instruction).
    pub loc: SourceLoc,
    /// Observed state under the space-consuming Conf2, if capturable.
    pub conf2_state: Option<CoherenceState>,
    /// Observed state involved under the space-saving Conf1, if capturable.
    pub conf1_state: Option<CoherenceState>,
    /// Under Conf1 the signal is the event's *absence* from failure runs
    /// (read-too-early order violations, §4.2.2).
    pub conf1_is_absence: bool,
}

/// Ground truth for evaluating diagnosis results against the benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// How the target failure manifests.
    pub spec: FailureSpec,
    /// The root-cause branch (sequential bugs): the branch the patch
    /// changes.
    pub root_cause_branch: Option<BranchId>,
    /// A branch related to the root cause (the `*` rows of Table 6).
    pub related_branch: Option<BranchId>,
    /// Source lines the real patch touches (mapped into our programs).
    pub patch_locs: Vec<SourceLoc>,
    /// Where the failure manifests.
    pub failure_site_loc: SourceLoc,
    /// The failure-predicting coherence event (concurrency bugs).
    pub fpe: Option<FpeSpec>,
    /// Fault locations for reactive success-site instrumentation of
    /// crash-type failures.
    pub fault_locs: Vec<(FuncId, SourceLoc)>,
}

impl GroundTruth {
    /// The branch LBRLOG/LBRA are evaluated against: the root cause when
    /// capturable, otherwise the related branch.
    pub fn target_branch(&self) -> Option<BranchId> {
        self.root_cause_branch.or(self.related_branch)
    }
}

/// The workload sets of a benchmark.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workloads {
    /// Workloads that (deterministically or under their seed) reproduce
    /// the failure.
    pub failing: Vec<Workload>,
    /// Workloads that complete successfully while exercising nearby code.
    pub passing: Vec<Workload>,
    /// A developer-designed common-scenario workload for overhead
    /// measurement (never fails).
    pub perf: Workload,
}

/// Descriptive metadata (one row of Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkInfo {
    /// Short unique id (`"sort"`, `"apache1"`, ...).
    pub id: &'static str,
    /// Application name.
    pub app: &'static str,
    /// Application version the bug lives in.
    pub version: &'static str,
    /// Implementation language of the original.
    pub language: Language,
    /// Root-cause class.
    pub root_cause: RootCauseKind,
    /// Failure symptom.
    pub symptom: Symptom,
    /// Sequential or concurrency.
    pub bug_class: BugClass,
    /// One-line description of the real bug.
    pub description: &'static str,
    /// The paper's reported numbers.
    pub paper: PaperExpectations,
}

/// One benchmark: a real-world failure modeled as an IR program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Metadata.
    pub info: BenchmarkInfo,
    /// The buggy program.
    pub program: Program,
    /// Ground truth for evaluation.
    pub truth: GroundTruth,
    /// Workloads.
    pub workloads: Workloads,
}

impl Benchmark {
    /// Number of `Error` logging sites in the program (our analogue of
    /// Table 4's "#Log Points").
    pub fn log_points(&self) -> usize {
        self.program.error_log_sites().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mark_display() {
        assert_eq!(PaperMark::Found(3).to_string(), "Y 3");
        assert_eq!(PaperMark::Related(13).to_string(), "Y 13*");
        assert_eq!(PaperMark::Miss.to_string(), "-");
    }

    #[test]
    fn root_cause_short_names() {
        assert_eq!(RootCauseKind::AtomicityViolation.short(), "A.V.");
        assert_eq!(RootCauseKind::Config.short(), "config.");
    }

    #[test]
    fn ground_truth_prefers_root_cause_branch() {
        let t = GroundTruth {
            spec: FailureSpec::AnyCrash,
            root_cause_branch: Some(BranchId::new(4)),
            related_branch: Some(BranchId::new(9)),
            patch_locs: vec![],
            failure_site_loc: SourceLoc::UNKNOWN,
            fpe: None,
            fault_locs: vec![],
        };
        assert_eq!(t.target_branch(), Some(BranchId::new(4)));
    }
}
