//! # stm-suite — the 31 real-world failures of the evaluation
//!
//! Each benchmark models one failure of the paper's Table 4 as an IR
//! program that structurally mirrors the real bug: same bug class, same
//! root-cause→failure propagation in branches, same symptom, same logging
//! topology (see DESIGN.md for the substitution argument). Ground truth
//! (root-cause branch, patch lines, failure-predicting event) rides along
//! so the harnesses can score diagnoses automatically.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmark;
pub mod conc;
pub mod eval;
pub mod libc;
pub mod patterns;
pub mod seq;
pub mod util;

#[cfg(test)]
pub(crate) mod harness_test_support;

pub use benchmark::{
    Benchmark, BenchmarkInfo, BugClass, FpeSpec, GroundTruth, Language, PaperExpectations,
    PaperMark, RootCauseKind, Symptom, Workloads,
};

/// All sequential benchmarks (Table 6 rows, in table order).
pub fn sequential() -> Vec<Benchmark> {
    vec![
        seq::apache::apache1(),
        seq::apache::apache2(),
        seq::apache::apache3(),
        seq::coreutils::cp(),
        seq::cppcheck::cppcheck1(),
        seq::cppcheck::cppcheck2(),
        seq::cppcheck::cppcheck3(),
        seq::servers::lighttpd(),
        seq::coreutils::ln(),
        seq::coreutils::mv(),
        seq::coreutils::paste(),
        seq::archives::pbzip1(),
        seq::archives::pbzip2(),
        seq::coreutils::rm(),
        seq::coreutils::sort(),
        seq::servers::squid1(),
        seq::servers::squid2(),
        seq::coreutils::tac(),
        seq::archives::tar1(),
        seq::archives::tar2(),
    ]
}

/// All concurrency benchmarks (Table 7 rows, in table order).
pub fn concurrency() -> Vec<Benchmark> {
    vec![
        conc::apache::apache4(),
        conc::apache::apache5(),
        conc::misc::cherokee(),
        conc::splash::fft(),
        conc::splash::lu(),
        conc::mozilla::mozilla_js1(),
        conc::mozilla::mozilla_js2(),
        conc::mozilla::mozilla_js3(),
        conc::mysql::mysql1(),
        conc::mysql::mysql2(),
        conc::misc::pbzip3(),
    ]
}

/// All 31 benchmarks.
pub fn all() -> Vec<Benchmark> {
    let mut v = sequential();
    v.extend(concurrency());
    v
}

/// Looks up a benchmark by its short id.
pub fn by_id(id: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.info.id == id)
}
