//! A small shared C library, modeled in IR.
//!
//! Library functions matter to the evaluation for one reason: their
//! internal branches pollute LBR (and their accesses pollute LCR) unless
//! the transformer's toggling wrappers are active (§4.3). Every benchmark
//! links against this libc, so switching toggling off shifts — or evicts —
//! root-cause records exactly as Table 6's "w/ tog" vs "w/o tog" columns
//! show.
//!
//! Record cost per call, when recording is *not* toggled off (each loop
//! iteration retires the header conditional plus the back-edge jump, and
//! leaving retires the header conditional once more):
//!
//! | function          | recorded branches per call            |
//! |-------------------|---------------------------------------|
//! | `memmove(d,s,n)`  | `2n + 1`                              |
//! | `memset(d,v,n)`   | `2n + 1`                              |
//! | `strcmp(a,b,n)`   | `≤ 3n + 1` (early exit on mismatch)   |
//! | `format(n)`       | `3n + 1` (inner digit/char branch)    |
//! | `hash(k)`         | `3` (two mixing checks + loop exit)   |

use stm_machine::builder::ProgramBuilder;
use stm_machine::ids::FuncId;
use stm_machine::ir::{BinOp, Operand};

/// Function ids of the installed library.
#[derive(Debug, Clone, Copy)]
pub struct Libc {
    /// `memmove(dst, src, words)`: overlapping-safe word copy.
    pub memmove: FuncId,
    /// `memset(dst, value, words)`.
    pub memset: FuncId,
    /// `strcmp(a, b, words)`: returns 0 when equal.
    pub strcmp: FuncId,
    /// `format(n)`: a printf-style formatting loop over `n` characters;
    /// the standard heavy polluter on error paths.
    pub format: FuncId,
    /// `hash(key)`: a short mixing function.
    pub hash: FuncId,
}

/// Emits `n` statements of record-free arithmetic — the address
/// computation, bounds math and byte shuffling that dominates real library
/// bodies. Keeps the per-call *branch-record* counts in the table above
/// unchanged while giving calls realistic instruction weight.
fn ballast(
    f: &mut stm_machine::builder::FunctionBuilder<'_>,
    seed: stm_machine::ids::VarId,
    n: u32,
) {
    let mut v = seed;
    for i in 0..n {
        v = f.bin(BinOp::Add, v, 0x9E37 + i as i64);
    }
    let _ = v;
}

/// Installs the library into a program under construction.
pub fn install(pb: &mut ProgramBuilder) -> Libc {
    let memmove = pb.declare_function("memmove");
    let memset = pb.declare_function("memset");
    let strcmp = pb.declare_function("strcmp");
    let format = pb.declare_function("format");
    let hash = pb.declare_function("hash");

    {
        // memmove(dst, src, words): copy backwards (safe for our uses).
        let mut f = pb.build_function(memmove, "libc/string.c");
        f.set_library();
        let ps = f.params(3);
        let (dst, src, words) = (ps[0], ps[1], ps[2]);
        ballast(&mut f, dst, 40);
        let header = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        let i = f.var();
        f.at(10);
        f.assign(i, 0);
        f.jmp(header);
        f.set_block(header);
        let c = f.bin(BinOp::Lt, i, words);
        f.br(c, body, done);
        f.set_block(body);
        let off = f.bin(BinOp::Mul, i, 8);
        let sa = f.bin(BinOp::Add, src, off);
        let v = f.load(sa, 0);
        let da = f.bin(BinOp::Add, dst, off);
        f.store(da, 0, v);
        f.assign_bin(i, BinOp::Add, i, 1);
        f.jmp(header);
        f.set_block(done);
        f.ret(Some(Operand::Var(dst)));
        f.finish();
    }
    {
        let mut f = pb.build_function(memset, "libc/string.c");
        f.set_library();
        let ps = f.params(3);
        let (dst, value, words) = (ps[0], ps[1], ps[2]);
        ballast(&mut f, dst, 40);
        let header = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        let i = f.var();
        f.at(40);
        f.assign(i, 0);
        f.jmp(header);
        f.set_block(header);
        let c = f.bin(BinOp::Lt, i, words);
        f.br(c, body, done);
        f.set_block(body);
        let off = f.bin(BinOp::Mul, i, 8);
        let da = f.bin(BinOp::Add, dst, off);
        f.store(da, 0, value);
        f.assign_bin(i, BinOp::Add, i, 1);
        f.jmp(header);
        f.set_block(done);
        f.ret(Some(Operand::Var(dst)));
        f.finish();
    }
    {
        // strcmp(a, b, words): 0 iff the first `words` words are equal.
        let mut f = pb.build_function(strcmp, "libc/string.c");
        f.set_library();
        let ps = f.params(3);
        let (a, b, words) = (ps[0], ps[1], ps[2]);
        ballast(&mut f, a, 40);
        let header = f.new_block();
        let body = f.new_block();
        let diff = f.new_block();
        let next = f.new_block();
        let equal = f.new_block();
        let i = f.var();
        f.at(70);
        f.assign(i, 0);
        f.jmp(header);
        f.set_block(header);
        let c = f.bin(BinOp::Lt, i, words);
        f.br(c, body, equal);
        f.set_block(body);
        let off = f.bin(BinOp::Mul, i, 8);
        let aa = f.bin(BinOp::Add, a, off);
        let va = f.load(aa, 0);
        let ba = f.bin(BinOp::Add, b, off);
        let vb = f.load(ba, 0);
        let ne = f.bin(BinOp::Ne, va, vb);
        f.br(ne, diff, next);
        f.set_block(diff);
        let d = f.bin(BinOp::Sub, va, vb);
        f.ret(Some(Operand::Var(d)));
        f.set_block(next);
        f.assign_bin(i, BinOp::Add, i, 1);
        f.jmp(header);
        f.set_block(equal);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        // format(n): the per-character branch structure of a printf.
        let mut f = pb.build_function(format, "libc/stdio.c");
        f.set_library();
        let ps = f.params(1);
        let n = ps[0];
        ballast(&mut f, n, 40);
        let header = f.new_block();
        let body = f.new_block();
        let digit = f.new_block();
        let join = f.new_block();
        let done = f.new_block();
        let i = f.var();
        let acc = f.var();
        f.at(100);
        f.assign(i, 0);
        f.assign(acc, 0);
        f.jmp(header);
        f.set_block(header);
        let c = f.bin(BinOp::Lt, i, n);
        f.br(c, body, done);
        f.set_block(body);
        let is_digit = f.bin(BinOp::Rem, i, 2);
        f.br(is_digit, digit, join);
        f.set_block(digit);
        f.assign_bin(acc, BinOp::Add, acc, 10);
        f.jmp(join);
        f.set_block(join);
        f.assign_bin(acc, BinOp::Add, acc, 1);
        f.assign_bin(i, BinOp::Add, i, 1);
        f.jmp(header);
        f.set_block(done);
        f.ret(Some(Operand::Var(acc)));
        f.finish();
    }
    {
        // hash(key): two mixing rounds with a parity check each.
        let mut f = pb.build_function(hash, "libc/hash.c");
        f.set_library();
        let ps = f.params(1);
        let k = ps[0];
        ballast(&mut f, k, 40);
        let odd1 = f.new_block();
        let j1 = f.new_block();
        let odd2 = f.new_block();
        let j2 = f.new_block();
        let h = f.var();
        f.at(130);
        f.assign_bin(h, BinOp::Mul, k, 2654435761i64);
        let p1 = f.bin(BinOp::And, h, 1);
        f.br(p1, odd1, j1);
        f.set_block(odd1);
        f.assign_bin(h, BinOp::Xor, h, 0x9E37);
        f.jmp(j1);
        f.set_block(j1);
        f.assign_bin(h, BinOp::Shr, h, 3);
        let p2 = f.bin(BinOp::And, h, 1);
        f.br(p2, odd2, j2);
        f.set_block(odd2);
        f.assign_bin(h, BinOp::Xor, h, 0x79B9);
        f.jmp(j2);
        f.set_block(j2);
        let masked = f.bin(BinOp::And, h, 0x7FFF_FFFF);
        f.ret(Some(Operand::Var(masked)));
        f.finish();
    }

    Libc {
        memmove,
        memset,
        strcmp,
        format,
        hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::events::NullHardware;
    use stm_machine::interp::{Machine, RunConfig};

    fn run_libcall(build: impl FnOnce(&mut ProgramBuilder, &Libc, FuncId)) -> Vec<i64> {
        let mut pb = ProgramBuilder::new("t");
        let libc = install(&mut pb);
        let main = pb.declare_function("main");
        build(&mut pb, &libc, main);
        let m = Machine::new(pb.finish(main));
        m.run(&[], &RunConfig::default(), &mut NullHardware).outputs
    }

    #[test]
    fn memmove_copies_words() {
        let out = run_libcall(|pb, libc, main| {
            let mut f = pb.build_function(main, "m.c");
            let src = f.alloc(3);
            let dst = f.alloc(3);
            for i in 0..3 {
                f.store(src, i * 8, 100 + i);
            }
            f.call_void(libc.memmove, &[dst.into(), src.into(), Operand::Const(3)]);
            for i in 0..3 {
                let v = f.load(dst, i * 8);
                f.output(v);
            }
            f.ret(None);
            f.finish();
        });
        assert_eq!(out, vec![100, 101, 102]);
    }

    #[test]
    fn memset_fills() {
        let out = run_libcall(|pb, libc, main| {
            let mut f = pb.build_function(main, "m.c");
            let dst = f.alloc(2);
            f.call_void(
                libc.memset,
                &[dst.into(), Operand::Const(7), Operand::Const(2)],
            );
            let a = f.load(dst, 0);
            let b = f.load(dst, 8);
            f.output(a);
            f.output(b);
            f.ret(None);
            f.finish();
        });
        assert_eq!(out, vec![7, 7]);
    }

    #[test]
    fn strcmp_discriminates() {
        let out = run_libcall(|pb, libc, main| {
            let mut f = pb.build_function(main, "m.c");
            let a = f.alloc(2);
            let b = f.alloc(2);
            for (buf, v) in [(a, 5), (b, 5)] {
                f.store(buf, 0, v);
                f.store(buf, 8, v + 1);
            }
            let eq = f.call(libc.strcmp, &[a.into(), b.into(), Operand::Const(2)]);
            f.output(eq);
            f.store(b, 8, 99);
            let ne = f.call(libc.strcmp, &[a.into(), b.into(), Operand::Const(2)]);
            f.output(ne);
            f.ret(None);
            f.finish();
        });
        assert_eq!(out[0], 0);
        assert_ne!(out[1], 0);
    }

    #[test]
    fn format_and_hash_return_deterministic_values() {
        let out = run_libcall(|pb, libc, main| {
            let mut f = pb.build_function(main, "m.c");
            let x = f.call(libc.format, &[Operand::Const(4)]);
            f.output(x);
            let h1 = f.call(libc.hash, &[Operand::Const(42)]);
            let h2 = f.call(libc.hash, &[Operand::Const(42)]);
            let same = f.bin(BinOp::Eq, h1, h2);
            f.output(same);
            f.ret(None);
            f.finish();
        });
        assert_eq!(out[0], 24); // 4 chars: 2 digits (+10 each) + 4 (+1 each)
        assert_eq!(out[1], 1);
    }

    #[test]
    fn all_libc_functions_are_library_flagged() {
        let mut pb = ProgramBuilder::new("t");
        let _ = install(&mut pb);
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let libs = p.functions.iter().filter(|f| f.is_library).count();
        assert_eq!(libs, 5);
    }
}
