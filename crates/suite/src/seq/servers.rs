//! Sequential-bug benchmarks from Lighttpd and Squid (Table 4).
//!
//! Lighttpd and Squid 1 are the CBI `-` rows of Table 6: their root-cause
//! outcomes also occur on benign requests in *every* run, so CBI's
//! whole-run predicates have `Increase ≤ 0` and are filtered, while LBRA's
//! near-failure profiles still separate the runs.

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, GroundTruth, Language, PaperExpectations, PaperMark,
    RootCauseKind, Symptom, Workloads,
};
use crate::libc;
use crate::util::{counted_loop, guard, pad_checks};
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::ir::{BinOp, Operand, SourceLoc};

/// A server-shaped benchmark: a request loop where the root-cause branch
/// fires on benign requests too, and the failure needs a specific request
/// kind. `pads_before` retires before the root branch (same request),
/// `pads_after` between it and the failure guard.
#[allow(clippy::too_many_arguments)]
fn server_benchmark(
    id: &'static str,
    app: &'static str,
    version: &'static str,
    file: &'static str,
    log_fn_file: &'static str,
    _kloc: f64,
    _log_points: u32,
    pads_before: u32,
    pads_after: u32,
    root_line: u32,
    fail_line: u32,
    patch_line: u32,
    paper: PaperExpectations,
    same_file_failure: bool,
) -> Benchmark {
    let mut pb = ProgramBuilder::new(id);
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let handle = pb.declare_function("handle_request");
    let report = pb.declare_function("log_error_write");

    let site;
    {
        // The shared error-reporting path lives in the log module unless
        // the benchmark keeps everything in one file.
        let mut f = pb.build_function(report, if same_file_failure { file } else { log_fn_file });
        let ps = f.params(1); // condition that must hold
        let pass = f.new_block();
        let fail = f.new_block();
        f.at(fail_line - 1);
        f.br(ps[0], pass, fail); // the check, one line above the message
        f.set_block(fail);
        f.at(fail_line);
        site = f.log_error("request failed: invalid state");
        f.ret(Some(Operand::Const(-1)));
        f.set_block(pass);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(handle, file);
        let ps = f.params(1); // request kind: 0 plain, 1 benign-special, 2 trigger
        let kind = ps[0];
        let plain_blk = f.new_block();
        let special_blk = f.new_block();
        let after = f.new_block();
        // The request preamble: parsing, header checks...
        pad_checks(&mut f, pads_before, 30, kind);
        let special = f.bin(BinOp::Ge, kind, 1);
        f.at(root_line);
        // Root cause: the special-case handling (mod_fastcgi / aufs state
        // machine) leaves stale state; benign requests take this edge too.
        f.br(special, special_blk, plain_blk);
        f.set_block(plain_blk);
        f.at(root_line + 4);
        f.jmp(after);
        f.set_block(special_blk);
        f.at(root_line + 2);
        f.jmp(after); // fall-through: the hot special path
        f.set_block(after);
        let trigger = f.bin(BinOp::Eq, kind, 2);
        let healthy = f.un(stm_machine::ir::UnOp::Not, trigger);
        pad_checks(&mut f, pads_after, root_line + 6, kind);
        f.at(fail_line - 1);
        let rc = f.call(report, &[healthy.into()]);
        f.ret(Some(rc.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "src/server.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let n = f.read_input(0);
        let have = f.bin(BinOp::Gt, n, 0);
        guard(&mut f, have, "no port configured");
        counted_loop(&mut f, n, |f, i| {
            f.at(40);
            let idx = f.bin(BinOp::Add, i, 1);
            let kind = f.read_input(idx);
            let rc = f.call(handle, &[kind.into()]);
            f.output(rc);
        });
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let handler_file = program.function(handle).file;
    let report_file = program.function(report).file;
    let root_loc = SourceLoc::new(handler_file, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == handle && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id,
            app,
            version,
            language: Language::C,
            root_cause: if id == "lighttpd" {
                RootCauseKind::Config
            } else {
                RootCauseKind::Semantic
            },
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "stale special-request state reported at the shared error path; \
                          benign requests blind CBI's whole-run predicates",
            paper,
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(handler_file, patch_line)],
            failure_site_loc: SourceLoc::new(report_file, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            // Every run sees a benign special request; failing runs end
            // with the trigger. The passing mix matches the failing runs'
            // special/plain request ratio, as production traffic would.
            failing: vec![Workload::new(vec![3, 1, 0, 2])],
            passing: vec![
                Workload::new(vec![3, 1, 1, 0]),
                Workload::new(vec![3, 1, 0, 0]),
                Workload::new(vec![4, 1, 0, 1, 0]),
            ],
            perf: Workload::new(vec![4, 1, 0, 1, 0]),
        },
        program,
    }
}

/// Lighttpd 1.4.16: Table 6 row `✓4 / ✓4 / ✓1 / - / 0 / 1`.
pub fn lighttpd() -> Benchmark {
    server_benchmark(
        "lighttpd",
        "Lighttpd",
        "1.4.16",
        "src/mod_fastcgi.c",
        "src/log.c",
        55.0,
        857,
        13,
        2,
        // patch and failure on adjacent lines, all in mod_fastcgi.c
        1121,
        1122,
        1122,
        PaperExpectations {
            lbrlog_tog: Some(PaperMark::Found(4)),
            lbrlog_no_tog: Some(PaperMark::Found(4)),
            lbra: Some(PaperMark::Found(1)),
            cbi: Some(PaperMark::Miss),
            patch_dist_failure: Some(0),
            patch_dist_lbr: Some(1),
            has_patch_distance: true,
            kloc: 55.0,
            log_points: 857,
            ..PaperExpectations::default()
        },
        true,
    )
}

/// Squid 1 (2.5.S5): Table 6 row `✓2 / ✓2 / ✓1 / - / 123 / 2`.
pub fn squid1() -> Benchmark {
    server_benchmark(
        "squid1",
        "Squid",
        "2.5.S5",
        "src/store_swapout.c",
        "src/store_swapout.c",
        120.0,
        2427,
        15,
        0,
        300,
        421,
        298,
        PaperExpectations {
            lbrlog_tog: Some(PaperMark::Found(2)),
            lbrlog_no_tog: Some(PaperMark::Found(2)),
            lbra: Some(PaperMark::Found(1)),
            cbi: Some(PaperMark::Miss),
            patch_dist_failure: Some(123),
            patch_dist_lbr: Some(2),
            has_patch_distance: true,
            kloc: 120.0,
            log_points: 2427,
            ..PaperExpectations::default()
        },
        true,
    )
}

/// Squid 2 (2.3.S4): a memory crash — the FTP URL parser mishandles a
/// trailing separator and walks a pointer past the token buffer.
/// Table 6 row `✓10 / ✓10 / ✓1 / ✓1 / 59 / 1`.
///
/// Inputs: `[trailing_sep, url_len]`.
pub fn squid2() -> Benchmark {
    let mut pb = ProgramBuilder::new("squid2");
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let parse = pb.declare_function("ftpUrlParse");

    let patch_line = 210;
    let root_line = 211;
    let fault_line = 269;
    {
        let mut f = pb.build_function(parse, "src/ftp.c");
        let ps = f.params(2); // trailing_sep, buf
        let (sep, buf) = (ps[0], ps[1]);
        let skip = f.new_block();
        let keep = f.new_block();
        let merge = f.new_block();
        f.at(root_line);
        // Root cause: trailing separators advance the cursor once more.
        f.br(sep, skip, keep);
        f.set_block(skip);
        f.at(root_line + 2);
        f.jmp(merge);
        f.set_block(keep);
        f.at(root_line + 4);
        f.jmp(merge); // fall-through
        f.set_block(merge);
        let cursor = f.var();
        let over = f.bin(BinOp::Mul, sep, 4096);
        f.assign_bin(cursor, BinOp::Add, buf, over);
        pad_checks(&mut f, 8, root_line + 8, buf);
        f.at(fault_line);
        let v = f.load(cursor, 0); // F
        f.ret(Some(v.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "src/main.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let sep = f.read_input(0);
        let len = f.read_input(1);
        let have = f.bin(BinOp::Gt, len, 0);
        guard(&mut f, have, "squid: empty URL");
        let buf = f.alloc(4);
        f.store(buf, 0, 777);
        let v = f.call(parse, &[sep.into(), buf.into()]);
        f.output(v);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let ftp_c = program.function(parse).file;
    let root_loc = SourceLoc::new(ftp_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == parse && b.loc == root_loc)
        .map(|b| b.id);
    let fault_loc = SourceLoc::new(ftp_c, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "squid2",
            app: "Squid",
            version: "2.3.S4",
            language: Language::C,
            root_cause: RootCauseKind::Memory,
            symptom: Symptom::Crash,
            bug_class: BugClass::Sequential,
            description: "FTP URL parser walks the token cursor past the buffer on a \
                          trailing separator",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(10)),
                lbrlog_no_tog: Some(PaperMark::Found(10)),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(1)),
                patch_dist_failure: Some(59),
                patch_dist_lbr: Some(1),
                has_patch_distance: true,
                kloc: 102.0,
                log_points: 2096,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "ftpUrlParse".into(),
                line: fault_line,
            },
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(ftp_c, patch_line)],
            failure_site_loc: fault_loc,
            fpe: None,
            fault_locs: vec![(parse, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 5])],
            passing: vec![
                Workload::new(vec![0, 5]),
                Workload::new(vec![0, 9]),
                Workload::new(vec![0, 2]),
            ],
            perf: Workload::new(vec![0, 7]),
        },
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn lighttpd_matches_table6_row() {
        let b = lighttpd();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(4));
        assert_eq!(lbrlog_position(&b, false), Some(4));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(0), Some(1)));
    }

    #[test]
    fn squid1_matches_table6_row() {
        let b = squid1();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(2));
        assert_eq!(lbrlog_position(&b, false), Some(2));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(123), Some(2)));
    }

    #[test]
    fn squid2_matches_table6_row() {
        let b = squid2();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(10));
        assert_eq!(lbrlog_position(&b, false), Some(10));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(59), Some(1)));
    }
}
