//! Sequential-bug benchmarks from GNU tar and PBZIP2 (Table 4).

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, GroundTruth, Language, PaperExpectations, PaperMark,
    RootCauseKind, Symptom, Workloads,
};
use crate::libc;
use crate::util::{guard, pad_checks};
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::ir::{BinOp, Operand, SourceLoc, UnOp};

/// tar 1 (1.22): a semantic bug — sparse-member listing mis-computes the
/// data offset and the integrity check in a different file reports it.
/// Table 6 row `✓4 / ✓4 / ✓1 / ✓1 / ∞ / 2`.
///
/// Inputs: `[sparse, member]`.
pub fn tar1() -> Benchmark {
    let mut pb = ProgramBuilder::new("tar1");
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let list_member = pb.declare_function("list_archive_member");
    let verify = pb.declare_function("verify_member");

    let patch_line = 158;
    let root_line = 160;
    let fail_line = 92; // in src/misc.c
    let site;
    {
        let mut f = pb.build_function(verify, "src/misc.c");
        let ps = f.params(1); // offset_ok
        f.at(fail_line);
        let ok = ps[0];
        site = guard(&mut f, ok, "tar: skipping to next header: offset mismatch");
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(list_member, "src/list.c");
        let ps = f.params(2); // sparse, member
        let (sparse, member) = (ps[0], ps[1]);
        let dense_blk = f.new_block();
        let sparse_blk = f.new_block();
        let merged = f.new_block();
        f.at(patch_line);
        // Patched here: the sparse map length is off by one block.
        let bad_off = f.bin(BinOp::Mul, sparse, 512);
        f.at(root_line);
        f.br(sparse, sparse_blk, dense_blk); // root-cause branch
        f.set_block(dense_blk);
        f.at(root_line + 6);
        f.jmp(merged);
        f.set_block(sparse_blk);
        f.at(root_line + 2);
        f.jmp(merged); // fall-through
        f.set_block(merged);
        pad_checks(&mut f, 2, root_line + 8, member);
        let ok = f.bin(BinOp::Eq, bad_off, 0);
        f.at(root_line + 20);
        let rc = f.call(verify, &[ok.into()]);
        f.ret(Some(rc.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "src/tar.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let sparse = f.read_input(0);
        let member = f.read_input(1);
        let have = f.bin(BinOp::Gt, member, 0);
        guard(&mut f, have, "tar: empty archive");
        let rc = f.call(list_member, &[sparse.into(), member.into()]);
        f.output(rc);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let list_c = program.function(list_member).file;
    let misc_c = program.function(verify).file;
    let root_loc = SourceLoc::new(list_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == list_member && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "tar1",
            app: "tar",
            version: "1.22",
            language: Language::C,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "sparse-member offset mis-computed in list.c; misc.c's integrity \
                          check reports it",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(4)),
                lbrlog_no_tog: Some(PaperMark::Found(4)),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(1)),
                patch_dist_failure: None, // ∞
                patch_dist_lbr: Some(2),
                has_patch_distance: true,
                kloc: 82.0,
                log_points: 243,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(list_c, patch_line)],
            failure_site_loc: SourceLoc::new(misc_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 3])],
            passing: vec![
                Workload::new(vec![0, 3]),
                Workload::new(vec![0, 7]),
                Workload::new(vec![0, 1]),
            ],
            perf: Workload::new(vec![0, 5]),
        },
        program,
    }
}

/// tar 2 (1.19): a semantic bug — `--occurrence` handling decrements the
/// member budget on the wrong edge and the extraction loop reports a
/// missing member 24 lines later, right after rendering the member name
/// (library work that evicts the window without toggling).
/// Table 6 row `✓2 / - / ✓1 / ✓2 / 24 / 0`.
///
/// Inputs: `[occurrence_mode, member]`.
pub fn tar2() -> Benchmark {
    let mut pb = ProgramBuilder::new("tar2");
    let libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let extract = pb.declare_function("extract_archive");

    let root_line = 340;
    let fail_line = 364;
    let site;
    {
        let mut f = pb.build_function(extract, "src/extract.c");
        let ps = f.params(2); // occurrence_mode, member
        let (occ, member) = (ps[0], ps[1]);
        let plain_blk = f.new_block();
        let occ_blk = f.new_block();
        let merged = f.new_block();
        f.at(root_line);
        f.br(occ, occ_blk, plain_blk); // root cause (patched on this line)
        f.set_block(plain_blk);
        f.at(root_line + 4);
        f.jmp(merged);
        f.set_block(occ_blk);
        f.at(root_line + 2);
        f.jmp(merged); // fall-through
        f.set_block(merged);
        // Render the member name for the report (library; evicts the
        // window when toggling is off).
        f.at(root_line + 10);
        f.call_void(libc.format, &[Operand::Const(8)]);
        f.at(fail_line);
        let found = f.un(UnOp::Not, occ);
        site = guard(&mut f, found, "tar: member not found in archive");
        f.output(member);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "src/tar.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let occ = f.read_input(0);
        let member = f.read_input(1);
        let have = f.bin(BinOp::Gt, member, 0);
        guard(&mut f, have, "tar: empty archive");
        let rc = f.call(extract, &[occ.into(), member.into()]);
        f.output(rc);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let extract_c = program.function(extract).file;
    let root_loc = SourceLoc::new(extract_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == extract && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "tar2",
            app: "tar",
            version: "1.19",
            language: Language::C,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "--occurrence budget decremented on the wrong edge; extraction \
                          reports a missing member",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(2)),
                lbrlog_no_tog: Some(PaperMark::Miss),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(2)),
                patch_dist_failure: Some(24),
                patch_dist_lbr: Some(0),
                has_patch_distance: true,
                kloc: 76.0,
                log_points: 188,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![root_loc],
            failure_site_loc: SourceLoc::new(extract_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 4])],
            passing: vec![
                Workload::new(vec![0, 4]),
                Workload::new(vec![0, 8]),
                Workload::new(vec![0, 2]),
            ],
            perf: Workload::new(vec![0, 5]),
        },
        program,
    }
}

/// PBZIP 1 (1.1.5, C++): a semantic bug — the block-size negotiation
/// rejects a legal trailing block after staging the compression buffers
/// (library work). Table 6 row `✓4 / - / ✓1 / N/A / 41 / 1`.
///
/// Inputs: `[trailing_block, nblocks]`.
pub fn pbzip1() -> Benchmark {
    let mut pb = ProgramBuilder::new("pbzip1");
    let libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let compress = pb.declare_function("queueCompressBlocks");

    let patch_line = 505;
    let root_line = 506;
    let fail_line = 546;
    let site;
    {
        let mut f = pb.build_function(compress, "pbzip2.cpp");
        let ps = f.params(2); // trailing, nblocks
        let (trailing, nblocks) = (ps[0], ps[1]);
        let full_blk = f.new_block();
        let short_blk = f.new_block();
        let merged = f.new_block();
        f.at(root_line);
        // Root cause: the trailing short block is flagged as an error.
        f.br(trailing, short_blk, full_blk);
        f.set_block(full_blk);
        f.at(root_line + 4);
        f.jmp(merged);
        f.set_block(short_blk);
        f.at(root_line + 2);
        f.jmp(merged); // fall-through
        f.set_block(merged);
        // Stage the compression buffers (library).
        f.at(root_line + 8);
        let src = f.alloc(8);
        let dst = f.alloc(8);
        f.call_void(libc.memmove, &[dst.into(), src.into(), Operand::Const(8)]);
        pad_checks(&mut f, 2, root_line + 12, nblocks);
        f.at(fail_line);
        let ok = f.un(UnOp::Not, trailing);
        site = guard(
            &mut f,
            ok,
            "pbzip2: *ERROR: Could not allocate memory for block",
        );
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "pbzip2.cpp");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let trailing = f.read_input(0);
        let n = f.read_input(1);
        let have = f.bin(BinOp::Gt, n, 0);
        guard(&mut f, have, "pbzip2: no input");
        let rc = f.call(compress, &[trailing.into(), n.into()]);
        f.output(rc);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let cpp = program.function(compress).file;
    let root_loc = SourceLoc::new(cpp, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == compress && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "pbzip1",
            app: "PBZIP",
            version: "1.1.5",
            language: Language::Cpp,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "legal trailing short block rejected after staging compression buffers",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(4)),
                lbrlog_no_tog: Some(PaperMark::Miss),
                lbra: Some(PaperMark::Found(1)),
                cbi: None, // N/A: C++
                patch_dist_failure: Some(41),
                patch_dist_lbr: Some(1),
                has_patch_distance: true,
                kloc: 5.7,
                log_points: 305,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(cpp, patch_line)],
            failure_site_loc: SourceLoc::new(cpp, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 4])],
            passing: vec![
                Workload::new(vec![0, 4]),
                Workload::new(vec![0, 2]),
                Workload::new(vec![0, 9]),
            ],
            perf: Workload::new(vec![0, 6]),
        },
        program,
    }
}

/// PBZIP 2 (1.1.0, C++): a memory crash — the output-queue pointer is
/// cleared on the producer-exit edge, and the very next queue access
/// dereferences it. Table 6 row `✓1 / ✓1 / ✓1 / N/A / 12 / 1`.
///
/// Inputs: `[producer_exited]`.
pub fn pbzip2() -> Benchmark {
    let mut pb = ProgramBuilder::new("pbzip2");
    let _libc = libc::install(&mut pb);
    let queue_g = pb.global("output_queue", 1);
    let main = pb.declare_function("main");
    let consume = pb.declare_function("consumer_decompress");

    let patch_line = 898;
    let root_line = 899;
    let fault_line = 910;
    {
        let mut f = pb.build_function(consume, "pbzip2.cpp");
        let ps = f.params(1); // producer_exited
        let keep_blk = f.new_block();
        let clear_blk = f.new_block();
        let merged = f.new_block();
        f.at(root_line);
        // Root cause: the exit edge clears the queue pointer too early
        // (patched one line above, where the exit flag is computed).
        f.br(ps[0], clear_blk, keep_blk);
        f.set_block(keep_blk);
        f.at(root_line + 4);
        f.jmp(merged);
        f.set_block(clear_blk);
        f.at(root_line + 1);
        f.store(queue_g as i64, 0, 0);
        f.jmp(merged); // fall-through
        f.set_block(merged);
        f.at(fault_line);
        let q = f.load(queue_g as i64, 0);
        let head = f.load(q, 0); // F: null dereference
        f.ret(Some(head.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "pbzip2.cpp");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let exited = f.read_input(0);
        let q = f.alloc(4);
        f.store(q, 0, 5);
        f.store(queue_g as i64, 0, q);
        let rc = f.call(consume, &[exited.into()]);
        f.output(rc);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let cpp = program.function(consume).file;
    let root_loc = SourceLoc::new(cpp, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == consume && b.loc == root_loc)
        .map(|b| b.id);
    let fault_loc = SourceLoc::new(cpp, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "pbzip2",
            app: "PBZIP",
            version: "1.1.0",
            language: Language::Cpp,
            root_cause: RootCauseKind::Memory,
            symptom: Symptom::Crash,
            bug_class: BugClass::Sequential,
            description: "output queue cleared on the producer-exit edge; the next queue \
                          access dereferences null",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(1)),
                lbrlog_no_tog: Some(PaperMark::Found(1)),
                lbra: Some(PaperMark::Found(1)),
                cbi: None, // N/A: C++
                patch_dist_failure: Some(12),
                patch_dist_lbr: Some(1),
                has_patch_distance: true,
                kloc: 4.6,
                log_points: 269,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "consumer_decompress".into(),
                line: fault_line,
            },
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(cpp, patch_line)],
            failure_site_loc: fault_loc,
            fpe: None,
            fault_locs: vec![(consume, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1])],
            passing: vec![
                Workload::new(vec![0]),
                Workload::new(vec![0]).with_seed(1),
                Workload::new(vec![0]).with_seed(2),
            ],
            perf: Workload::new(vec![0]),
        },
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn tar1_matches_table6_row() {
        let b = tar1();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(4));
        assert_eq!(lbrlog_position(&b, false), Some(4));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (None, Some(2)));
    }

    #[test]
    fn tar2_matches_table6_row() {
        let b = tar2();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(2));
        assert_eq!(lbrlog_position(&b, false), None);
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(24), Some(0)));
    }

    #[test]
    fn pbzip1_matches_table6_row() {
        let b = pbzip1();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(4));
        assert_eq!(lbrlog_position(&b, false), None);
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(41), Some(1)));
    }

    #[test]
    fn pbzip2_matches_table6_row() {
        let b = pbzip2();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(1));
        assert_eq!(lbrlog_position(&b, false), Some(1));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(12), Some(1)));
    }
}
