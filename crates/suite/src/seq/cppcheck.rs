//! Sequential-bug benchmarks from Cppcheck (Table 4: Cppcheck 1–3).
//!
//! All three are C++ crashes — the rows where CBI is `N/A` in Table 6
//! (the CBI instrumentation framework only supports C programs).

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, GroundTruth, Language, PaperExpectations, PaperMark,
    RootCauseKind, Symptom, Workloads,
};
use crate::libc;
use crate::util::{guard, pad_checks};
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::ir::{BinOp, SourceLoc};

/// Cppcheck 1 (1.58): the tokenizer simplification drops a scope token
/// under a rare template pattern (the root cause is a missing case, not a
/// branch); the symbol database later dereferences the hole. LBR captures
/// a related branch in the checker.
///
/// Inputs: `[template_pattern, tokens]`.
pub fn cppcheck1() -> Benchmark {
    let mut pb = ProgramBuilder::new("cppcheck1");
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let tokenize = pb.declare_function("simplifyTemplates");
    let check = pb.declare_function("checkAutoVariables");
    let symdb = pb.declare_function("SymbolDatabase_validate");

    let patch_line = 2210; // in tokenize.cpp
    let related_line = 77; // in checkautovariables.cpp
    let fault_line = 514; // in symboldatabase.cpp
    {
        // The tokenizer: straight-line token-list surgery whose *result*
        // drops the scope link under the template pattern.
        let mut f = pb.build_function(tokenize, "lib/tokenize.cpp");
        let ps = f.params(2); // template_pattern, tokens
        f.at(patch_line);
        // Patched here: the scope pointer survives only without the
        // pattern. 0 models the dropped link.
        let pat = f.bin(BinOp::Eq, ps[0], 1);
        let inv = f.un(stm_machine::ir::UnOp::Not, pat);
        let scope = f.bin(BinOp::Mul, inv, ps[1]);
        f.ret(Some(scope.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(symdb, "lib/symboldatabase.cpp");
        let ps = f.params(1); // scope pointer
        f.at(fault_line);
        let v = f.load(ps[0], 0); // F: crashes on the dropped scope
        f.ret(Some(v.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(check, "lib/checkautovariables.cpp");
        let ps = f.params(1); // scope pointer
        let scoped = f.new_block();
        let bare = f.new_block();
        let joined = f.new_block();
        f.at(related_line);
        // Related branch: whether the checker walks scoped variables —
        // false exactly when the tokenizer dropped the scope link.
        let has_vars = f.bin(BinOp::Gt, ps[0], 0);
        f.br(has_vars, scoped, bare);
        f.set_block(scoped);
        f.at(79);
        f.jmp(joined);
        f.set_block(bare);
        f.at(81);
        f.jmp(joined); // fall-through
        f.set_block(joined);
        pad_checks(&mut f, 4, 84, ps[0]);
        f.at(92);
        let v = f.call(symdb, &[ps[0].into()]);
        f.ret(Some(v.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "cli/main.cpp");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let pattern = f.read_input(0);
        let tokens = f.read_input(1);
        let have = f.bin(BinOp::Gt, tokens, 0);
        guard(&mut f, have, "cppcheck: no input files");
        let heap = f.alloc(2);
        f.store(heap, 0, 42);
        let raw = f.call(tokenize, &[pattern.into(), heap.into()]);
        // tokens parameter doubles as the token storage pointer.
        let v = f.call(check, &[raw.into()]);
        f.output(v);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let tokenize_cpp = program.function(tokenize).file;
    let check_cpp = program.function(check).file;
    let symdb_cpp = program.function(symdb).file;
    let related_loc = SourceLoc::new(check_cpp, related_line);
    let related_branch = program
        .branches
        .iter()
        .find(|b| b.func == check && b.loc == related_loc)
        .map(|b| b.id);
    let fault_loc = SourceLoc::new(symdb_cpp, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "cppcheck1",
            app: "Cppcheck",
            version: "1.58",
            language: Language::Cpp,
            root_cause: RootCauseKind::Memory,
            symptom: Symptom::Crash,
            bug_class: BugClass::Sequential,
            description: "template simplification drops a scope token; the symbol database \
                          dereferences the hole",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Related(5)),
                lbrlog_no_tog: Some(PaperMark::Related(5)),
                lbra: Some(PaperMark::Related(1)),
                cbi: None, // N/A: C++
                patch_dist_failure: None,
                patch_dist_lbr: None,
                has_patch_distance: true,
                kloc: 138.0,
                log_points: 304,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "SymbolDatabase_validate".into(),
                line: fault_line,
            },
            root_cause_branch: None,
            related_branch,
            patch_locs: vec![SourceLoc::new(tokenize_cpp, patch_line)],
            failure_site_loc: fault_loc,
            fpe: None,
            fault_locs: vec![(symdb, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 5])],
            passing: vec![
                Workload::new(vec![0, 5]),
                Workload::new(vec![0, 9]),
                Workload::new(vec![0, 3]),
            ],
            perf: Workload::new(vec![0, 7]),
        },
        program,
    }
}

/// Builds Cppcheck 2 and Cppcheck 3, which share a shape: a checker-local
/// root-cause branch followed by `pads` checks, then the crash. They
/// differ in propagation distance and patch offset.
fn cppcheck_crash(
    id: &'static str,
    version: &'static str,
    kloc: f64,
    log_points: u32,
    pads: u32,
    patch_offset: u32,
    paper_pos: u32,
) -> Benchmark {
    let mut pb = ProgramBuilder::new(id);
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let checker = pb.declare_function("CheckBufferOverrun_check");
    let deref = pb.declare_function("Token_value");

    let patch_line = 900;
    let root_line = patch_line + patch_offset;
    let fault_line = 88; // in token.cpp — a different file from the patch
    {
        // The wild cursor is finally dereferenced by the token accessor.
        let mut f = pb.build_function(deref, "lib/token.cpp");
        let ps = f.params(1);
        f.at(fault_line);
        let v = f.load(ps[0], 0); // F
        f.ret(Some(v.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(checker, "lib/checkbufferoverrun.cpp");
        let ps = f.params(2); // negative_size, buf
        let (neg, buf) = (ps[0], ps[1]);
        let bad = f.new_block();
        let fine = f.new_block();
        let merge = f.new_block();
        f.at(root_line);
        // Root cause: the size sanity check misses the negative case.
        f.br(neg, bad, fine);
        f.set_block(bad);
        f.at(root_line + 2);
        f.jmp(merge);
        f.set_block(fine);
        f.at(root_line + 4);
        f.jmp(merge); // fall-through
        f.set_block(merge);
        let ptr = f.var();
        // A negative size turns the array cursor into a wild pointer.
        let wild = f.bin(BinOp::Mul, neg, 0x7FFF_0000);
        f.assign_bin(ptr, BinOp::Add, buf, wild);
        pad_checks(&mut f, pads, root_line + 6, buf);
        f.at(root_line + 20);
        let v = f.call(deref, &[ptr.into()]);
        f.ret(Some(v.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "cli/main.cpp");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let neg = f.read_input(0);
        let n = f.read_input(1);
        let have = f.bin(BinOp::Gt, n, 0);
        guard(&mut f, have, "cppcheck: no input files");
        let buf = f.alloc(4);
        f.store(buf, 0, 7);
        let v = f.call(checker, &[neg.into(), buf.into()]);
        f.output(v);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let checker_cpp = program.function(checker).file;
    let token_cpp = program.function(deref).file;
    let root_loc = SourceLoc::new(checker_cpp, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == checker && b.loc == root_loc)
        .map(|b| b.id);
    let fault_loc = SourceLoc::new(token_cpp, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id,
            app: "Cppcheck",
            version,
            language: Language::Cpp,
            root_cause: RootCauseKind::Memory,
            symptom: Symptom::Crash,
            bug_class: BugClass::Sequential,
            description: "missing negative-size case turns the array cursor into a wild pointer",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(paper_pos)),
                lbrlog_no_tog: Some(PaperMark::Found(paper_pos)),
                lbra: Some(PaperMark::Found(1)),
                cbi: None, // N/A: C++
                patch_dist_failure: None,
                patch_dist_lbr: Some(patch_offset),
                has_patch_distance: true,
                kloc,
                log_points,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "Token_value".into(),
                line: fault_line,
            },
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(checker_cpp, patch_line)],
            failure_site_loc: fault_loc,
            fpe: None,
            fault_locs: vec![(deref, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 5])],
            passing: vec![
                Workload::new(vec![0, 5]),
                Workload::new(vec![0, 2]),
                Workload::new(vec![0, 8]),
            ],
            perf: Workload::new(vec![0, 6]),
        },
        program,
    }
}

/// Cppcheck 2 (1.56): Table 6 row `✓3 / ✓3 / ✓1 / N/A / ∞ / 2`.
pub fn cppcheck2() -> Benchmark {
    cppcheck_crash("cppcheck2", "1.56", 131.0, 284, 1, 2, 3)
}

/// Cppcheck 3 (1.52): Table 6 row `✓6 / ✓6 / ✓1 / N/A / ∞ / 10`.
pub fn cppcheck3() -> Benchmark {
    cppcheck_crash("cppcheck3", "1.52", 118.0, 225, 4, 10, 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn cppcheck1_matches_table6_row() {
        let b = cppcheck1();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(5));
        assert_eq!(lbrlog_position(&b, false), Some(5));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (None, None));
    }

    #[test]
    fn cppcheck2_matches_table6_row() {
        let b = cppcheck2();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(3));
        assert_eq!(lbrlog_position(&b, false), Some(3));
        assert_eq!(lbra_rank(&b), Some(1));
        let (_, dl) = patch_distances(&b);
        assert_eq!(dl, Some(2));
    }

    #[test]
    fn cppcheck3_matches_table6_row() {
        let b = cppcheck3();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(6));
        assert_eq!(lbrlog_position(&b, false), Some(6));
        assert_eq!(lbra_rank(&b), Some(1));
        let (_, dl) = patch_distances(&b);
        assert_eq!(dl, Some(10));
    }
}
