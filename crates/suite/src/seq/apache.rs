//! Sequential-bug benchmarks from Apache httpd (Table 4: Apache 1–3).

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, GroundTruth, Language, PaperExpectations, PaperMark,
    RootCauseKind, Symptom, Workloads,
};
use crate::libc;
use crate::util::{counted_loop, guard, guard_ret, pad_checks};
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::ir::{BinOp, Operand, SourceLoc};

/// Apache 1 (httpd 2.0.43): a configuration error — a mod_alias directive
/// flag is mis-parsed, and the server-wide configuration check aborts
/// startup with an error message in a different file.
///
/// Inputs: `[alias_flag]`.
pub fn apache1() -> Benchmark {
    let mut pb = ProgramBuilder::new("apache1");
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let parse_alias = pb.declare_function("parse_alias_directive");
    let check_config = pb.declare_function("ap_check_config");

    let patch_line = 139;
    let root_line = 142;
    let fail_line = 310;
    let site;
    {
        let mut f = pb.build_function(parse_alias, "modules/mapper/mod_alias.c");
        let ps = f.params(1); // raw flag
        let redirect = f.new_block();
        let plain = f.new_block();
        f.at(patch_line);
        // The patch fixes this flag computation (3 lines above the branch).
        let is_redirect = f.bin(BinOp::Gt, ps[0], 0);
        f.at(root_line);
        f.br(is_redirect, redirect, plain); // root cause: wrong edge for "0"
        f.set_block(redirect);
        f.at(144);
        f.ret(Some(Operand::Const(1))); // mis-registered as a redirect
        f.set_block(plain);
        f.at(146);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(check_config, "server/config.c");
        let ps = f.params(1); // redirect-without-status marker
        pad_checks(&mut f, 1, 305, ps[0]);
        f.at(fail_line);
        let ok = f.un(stm_machine::ir::UnOp::Not, ps[0]);
        site = guard_ret(
            &mut f,
            ok,
            "Syntax error: Redirect needs a status or URL",
            -1,
        );
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "server/main.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let flag = f.read_input(0);
        let sane = f.bin(BinOp::Ge, flag, 0);
        guard(&mut f, sane, "bad command line");
        f.at(30);
        let marker = f.call(parse_alias, &[flag.into()]);
        f.at(32);
        let rc = f.call(check_config, &[marker.into()]);
        let started = f.bin(BinOp::Ge, rc, 0);
        guard(&mut f, started, "httpd: configuration failed");
        f.output(1);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let alias_c = program.function(parse_alias).file;
    let config_c = program.function(check_config).file;
    let root_loc = SourceLoc::new(alias_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == parse_alias && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "apache1",
            app: "Apache",
            version: "2.0.43",
            language: Language::C,
            root_cause: RootCauseKind::Config,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "mis-parsed mod_alias directive flag aborts startup from the \
                          server-wide config check",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(3)),
                lbrlog_no_tog: Some(PaperMark::Found(3)),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(2)),
                patch_dist_failure: None, // ∞
                patch_dist_lbr: Some(3),
                has_patch_distance: true,
                kloc: 273.0,
                log_points: 2534,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(alias_c, patch_line)],
            failure_site_loc: SourceLoc::new(config_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1])],
            passing: vec![
                Workload::new(vec![0]),
                Workload::new(vec![0]).with_seed(1),
                Workload::new(vec![0]).with_seed(2),
            ],
            perf: Workload::new(vec![0]),
        },
        program,
    }
}

/// Apache 2 (httpd 2.2.3): a semantic bug with a long propagation
/// distance. The root-cause branch retires early in request handling and
/// is evicted from the 16-entry window; LBR still captures a related
/// branch in the same file, 475 lines from the patch. CBI cannot rank any
/// related predicate: benign requests exercise the same outcomes in every
/// run, so `Increase ≤ 0` filters them all.
///
/// Inputs: `[n_requests, req_0, req_1, ...]` with request kinds
/// `0` (plain), `1` (chunked, benign) and `2` (chunked with the trailer
/// that triggers the bug).
pub fn apache2() -> Benchmark {
    let mut pb = ProgramBuilder::new("apache2");
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let handle_request = pb.declare_function("ap_http_filter");
    let commit_body = pb.declare_function("ap_commit_body");

    let root_line = 80;
    let related_line = 555;
    let fail_line = 92;
    let site;
    {
        // Committing the body happens in the core output filter — a
        // different file from the patch.
        let mut f = pb.build_function(commit_body, "server/protocol.c");
        let ps = f.params(1); // stale marker
        f.at(fail_line);
        let ok = f.un(stm_machine::ir::UnOp::Not, ps[0]);
        site = guard_ret(&mut f, ok, "chunked body length mismatch", -1);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(handle_request, "modules/http/http_filters.c");
        let ps = f.params(1); // request kind
        let kind = ps[0];
        let chunked_blk = f.new_block();
        let plain_blk = f.new_block();
        let after_root = f.new_block();
        let trailer_blk = f.new_block();
        let no_trailer = f.new_block();
        f.at(root_line);
        // Root cause: the dechunking state machine forgets to reset the
        // body counter for chunked requests (patched here).
        let chunked = f.bin(BinOp::Ge, kind, 1);
        f.br(chunked, chunked_blk, plain_blk);
        f.set_block(chunked_blk);
        f.at(82);
        f.jmp(after_root);
        f.set_block(plain_blk);
        f.at(84);
        f.jmp(after_root); // fall-through
        f.set_block(after_root);
        // The body of request processing: enough retired branches to evict
        // the root-cause record from a 16-entry LBR.
        pad_checks(&mut f, 15, 600, kind);
        // Trailer validation only runs for the buggy request shape.
        f.at(585);
        let bad_trailer = f.bin(BinOp::Eq, kind, 2);
        f.br(bad_trailer, trailer_blk, no_trailer);
        f.set_block(trailer_blk);
        f.at(587);
        let stale = f.var();
        f.assign(stale, 1); // the stale counter the root cause left behind
        f.jmp(no_trailer);
        f.set_block(no_trailer);
        let stale2 = f.var();
        f.assign_bin(stale2, BinOp::Eq, kind, 2);
        f.at(related_line);
        // Related branch B: committing the (stale) body counter.
        let commit = f.bin(BinOp::Ge, kind, 1);
        let commit_blk = f.new_block();
        let skip_commit = f.new_block();
        f.br(commit, commit_blk, skip_commit);
        f.set_block(commit_blk);
        f.at(556);
        let rc = f.call(commit_body, &[stale2.into()]);
        f.ret(Some(rc.into()));
        f.set_block(skip_commit);
        f.at(558);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "server/main.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let n = f.read_input(0);
        let have = f.bin(BinOp::Gt, n, 0);
        guard(&mut f, have, "no requests");
        counted_loop(&mut f, n, |f, i| {
            f.at(30);
            let idx = f.bin(BinOp::Add, i, 1);
            let kind = f.read_input(idx);
            let rc = f.call(handle_request, &[kind.into()]);
            f.output(rc);
        });
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let filters_c = program.function(handle_request).file;
    let protocol_c = program.function(commit_body).file;
    let related_loc = SourceLoc::new(filters_c, related_line);
    let related_branch = program
        .branches
        .iter()
        .find(|b| b.func == handle_request && b.loc == related_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "apache2",
            app: "Apache",
            version: "2.2.3",
            language: Language::C,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "stale dechunking counter set early in the request is reported only \
                          at body commit; the root-cause branch is outside the LBR window",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Related(2)),
                lbrlog_no_tog: Some(PaperMark::Related(2)),
                lbra: Some(PaperMark::Related(2)),
                cbi: Some(PaperMark::Miss),
                patch_dist_failure: None, // ∞
                patch_dist_lbr: Some(475),
                has_patch_distance: true,
                kloc: 311.0,
                log_points: 2511,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: None, // evicted
            related_branch,
            patch_locs: vec![SourceLoc::new(filters_c, root_line)],
            failure_site_loc: SourceLoc::new(protocol_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            // A benign chunked request first, then the trigger.
            failing: vec![Workload::new(vec![3, 1, 0, 2])],
            passing: vec![
                Workload::new(vec![3, 1, 0, 1]),
                Workload::new(vec![2, 1, 0]),
                Workload::new(vec![4, 0, 1, 0, 1]),
            ],
            perf: Workload::new(vec![4, 1, 0, 1, 0]),
        },
        program,
    }
}

/// Apache 3 (httpd 2.2.9): a semantic bug where the faulty condition sits
/// one line from the error it triggers — the easy case for every tool.
///
/// Inputs: `[keepalive_timeout]`.
pub fn apache3() -> Benchmark {
    let mut pb = ProgramBuilder::new("apache3");
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let set_timeout = pb.declare_function("ap_set_keepalive");

    let patch_line = 220;
    let root_line = 221; // `if (t <= 0) return err(...)` — one line
    let fail_line = 221;
    let site;
    {
        let mut f = pb.build_function(set_timeout, "server/core.c");
        let ps = f.params(1);
        let t = ps[0];
        let reject = f.new_block();
        let accept = f.new_block();
        let report = f.new_block();
        f.at(patch_line);
        // Root cause: `>` should be `>=` — zero is rejected (patched on
        // the line computing the bound).
        let bad = f.bin(BinOp::Le, t, 0);
        f.at(root_line);
        f.br(bad, reject, accept);
        f.set_block(reject);
        f.at(fail_line);
        f.jmp(report); // hop to the shared error-reporting tail
        f.set_block(accept);
        f.at(223);
        f.ret(Some(t.into()));
        f.set_block(report);
        f.at(fail_line);
        site = f.log_error("KeepAliveTimeout must be a positive number");
        f.exit(1);
        f.ret(None);
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "server/main.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let t = f.read_input(0);
        let sane = f.bin(BinOp::Lt, t, 1_000_000);
        guard(&mut f, sane, "bad command line");
        let v = f.call(set_timeout, &[t.into()]);
        f.output(v);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let core_c = program.function(set_timeout).file;
    let root_loc = SourceLoc::new(core_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == set_timeout && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "apache3",
            app: "Apache",
            version: "2.2.9",
            language: Language::C,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "off-by-one comparison rejects KeepAliveTimeout 0 right next to the \
                          error message",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(2)),
                lbrlog_no_tog: Some(PaperMark::Found(2)),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(1)),
                patch_dist_failure: Some(1),
                patch_dist_lbr: Some(1),
                has_patch_distance: true,
                kloc: 333.0,
                log_points: 2515,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(core_c, patch_line)],
            failure_site_loc: SourceLoc::new(core_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![0])],
            passing: vec![
                Workload::new(vec![5]),
                Workload::new(vec![15]),
                Workload::new(vec![100]),
            ],
            perf: Workload::new(vec![15]),
        },
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn apache1_matches_table6_row() {
        let b = apache1();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(3));
        assert_eq!(lbrlog_position(&b, false), Some(3));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (None, Some(3)));
    }

    #[test]
    fn apache2_matches_table6_row() {
        let b = apache2();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(2)); // related branch
        assert_eq!(lbrlog_position(&b, false), Some(2));
        assert_eq!(lbra_rank(&b), Some(2)); // the trailer check ranks 1
        assert_eq!(patch_distances(&b), (None, Some(475)));
    }

    #[test]
    fn apache3_matches_table6_row() {
        let b = apache3();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(2));
        assert_eq!(lbrlog_position(&b, false), Some(2));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(1), Some(1)));
    }
}
