//! The 20 sequential-bug failures of Table 4.

pub mod apache;
pub mod archives;
pub mod coreutils;
pub mod cppcheck;
pub mod servers;
