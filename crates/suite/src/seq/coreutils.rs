//! Sequential-bug benchmarks from GNU Coreutils: `sort`, `cp`, `ln`, `mv`,
//! `paste`, `rm` and `tac` (Table 4).

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, GroundTruth, Language, PaperExpectations, PaperMark,
    RootCauseKind, Symptom, Workloads,
};
use crate::libc;
use crate::util::{counted_loop, guard, pad_checks};
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::ir::{BinOp, Operand, SourceLoc};

/// The `sort -m` buffer overflow of Coreutils 7.2 (the paper's Fig. 3).
///
/// `avoid_trashing_input`'s while condition (`A`) fails to account for
/// `num_merged` growing before the `memmove` (`B`), so the move copies one
/// entry past the initialized files and silently corrupts `files[i].pid`.
/// `open_input_files` then takes the wrong edge at `C` and calls
/// `open_temp` → `wait_proc` → `hash_lookup` on the never-initialized
/// process table, which segfaults at `F` (in a different file).
///
/// Inputs: `[merge_mode, nfiles, output_is_input, stale_word, use_temp]` —
/// `stale_word` is the garbage value sitting past the initialized files
/// (the overflow is silent when the adjacent memory happens to be zero),
/// and `use_temp` models runs that spawned compression children, giving
/// every file a valid pid and a live process table.
pub fn sort() -> Benchmark {
    let mut pb = ProgramBuilder::new("sort");
    let libc = libc::install(&mut pb);

    const MAX_FILES: u64 = 8;
    // files[i] = (name, pid); one extra garbage entry past the end models
    // the adjacent heap/global bytes the real overflow reads.
    let files = pb.global("files", (MAX_FILES + 1) * 2);
    let nfiles_g = pb.global("nfiles", 1);
    let proc_table = pb.global("proc_table", 1); // stays NULL: no children spawned
    let string_table = pb.global("string_table", 1); // valid table for normal lookups

    let main = pb.declare_function("main");
    let merge = pb.declare_function("merge");
    let avoid_trashing_input = pb.declare_function("avoid_trashing_input");
    let mergefiles = pb.declare_function("mergefiles");
    let open_input_files = pb.declare_function("open_input_files");
    let open_temp = pb.declare_function("open_temp");
    let wait_proc = pb.declare_function("wait_proc");
    let hash_lookup = pb.declare_function("hash_lookup");
    let sort_files = pb.declare_function("sort_files");

    // -- lib/hash.c ----------------------------------------------------
    let fault_line = 9;
    {
        let mut f = pb.build_function(hash_lookup, "lib/hash.c");
        let ps = f.params(1); // table pointer
        f.at(fault_line);
        let bucket = f.load(ps[0], 0); // F: table->bucket
        let h = f.call(libc.hash, &[bucket.into()]);
        f.ret(Some(h.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(wait_proc, "sort.c");
        let ps = f.params(1); // pid
        f.at(690);
        let table = f.load(proc_table as i64, 0);
        let r = f.call(hash_lookup, &[table.into()]);
        let _ = ps;
        f.ret(Some(r.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(open_temp, "sort.c");
        let ps = f.params(2); // name, pid
        f.at(700);
        let r = f.call(wait_proc, &[ps[1].into()]);
        f.ret(Some(r.into()));
        f.finish();
    }
    // -- open_input_files: the C branch --------------------------------
    {
        let mut f = pb.build_function(open_input_files, "sort.c");
        let ps = f.params(1); // file index
        let temp_path = f.new_block();
        let normal_path = f.new_block();
        f.at(740);
        let off = f.bin(BinOp::Mul, ps[0], 16);
        let entry = f.bin(BinOp::Add, off, files as i64);
        let name = f.load(entry, 0);
        // Name canonicalization (library work on the open path).
        let _h = f.call(libc.hash, &[name.into()]);
        f.at(745);
        let pid = f.load(entry, 8);
        f.at(746);
        f.br(pid, temp_path, normal_path); // C: if (files[i].pid != 0)
        f.set_block(temp_path);
        f.at(747);
        let r = f.call(open_temp, &[name.into(), pid.into()]);
        f.ret(Some(r.into()));
        f.set_block(normal_path);
        f.at(749);
        f.ret(Some(name.into()));
        f.finish();
    }
    {
        let mut f = pb.build_function(mergefiles, "sort.c");
        let _ = f.params(1);
        f.at(600);
        f.ret(Some(Operand::Const(1)));
        f.finish();
    }
    // -- avoid_trashing_input: the A/B bug ------------------------------
    let root_line = 610;
    {
        let mut f = pb.build_function(avoid_trashing_input, "sort.c");
        let ps = f.params(2); // i, same (output file among inputs)
        let (i, same) = (ps[0], ps[1]);
        let while_hdr = f.new_block();
        let while_body = f.new_block();
        let after = f.new_block();
        let skip = f.new_block();
        let nfiles = f.load(nfiles_g as i64, 0);
        f.at(607);
        let num_merged = f.var();
        f.assign(num_merged, 0);
        f.br(same, while_hdr, skip); // if (same)
        f.set_block(while_hdr);
        f.at(root_line);
        // A: while (i + num_merged < nfiles)   ← the root-cause branch
        let sum = f.bin(BinOp::Add, i, num_merged);
        let cond = f.bin(BinOp::Lt, sum, nfiles);
        f.br(cond, while_body, after);
        f.set_block(while_body);
        f.at(611);
        let m = f.call(mergefiles, &[i.into()]);
        f.assign_bin(num_merged, BinOp::Add, num_merged, m);
        f.at(612);
        // B: memmove(&files[i], &files[i+num_merged], ...): with
        // i + num_merged == nfiles this copies the garbage entry past the
        // initialized files over files[i] — silent corruption.
        let dst_off = f.bin(BinOp::Mul, i, 16);
        let dst = f.bin(BinOp::Add, dst_off, files as i64);
        let src_idx = f.bin(BinOp::Add, i, num_merged);
        let src_off = f.bin(BinOp::Mul, src_idx, 16);
        let src = f.bin(BinOp::Add, src_off, files as i64);
        f.call_void(libc.memmove, &[dst.into(), src.into(), Operand::Const(2)]);
        f.jmp(while_hdr);
        f.set_block(after);
        f.ret(Some(num_merged.into()));
        f.set_block(skip);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    // -- merge ----------------------------------------------------------
    {
        let mut f = pb.build_function(merge, "sort.c");
        let ps = f.params(1); // same
        f.at(570);
        f.call_void(avoid_trashing_input, &[Operand::Const(0), ps[0].into()]);
        f.at(572);
        // for (...) open_input_files(...): the corrupted entry is hit on
        // the first iteration.
        let nfiles = f.load(nfiles_g as i64, 0);
        counted_loop(&mut f, nfiles, |f, i| {
            f.at(574);
            let fd = f.call(open_input_files, &[i.into()]);
            f.output(fd);
        });
        f.ret(None);
        f.finish();
    }
    // -- a non-merge code path so passing runs exercise hash_lookup -----
    {
        let mut f = pb.build_function(sort_files, "sort.c");
        let _ = f.params(0);
        f.at(300);
        let table = f.load(string_table as i64, 0);
        let r = f.call(hash_lookup, &[table.into()]);
        f.ret(Some(r.into()));
        f.finish();
    }
    // -- main ------------------------------------------------------------
    {
        let mut f = pb.build_function(main, "sort.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let merge_blk = f.new_block();
        let sort_blk = f.new_block();
        let done = f.new_block();
        f.at(20);
        let merge_mode = f.read_input(0);
        let nfiles = f.read_input(1);
        let same = f.read_input(2);
        let stale = f.read_input(3);
        let use_temp = f.read_input(4);
        let le = f.bin(BinOp::Le, nfiles, MAX_FILES as i64);
        guard(&mut f, le, "too many input files");
        let pos = f.bin(BinOp::Gt, nfiles, 0);
        guard(&mut f, pos, "sort: no input files");
        f.store(nfiles_g as i64, 0, nfiles);
        // Initialize files[0..nfiles]: valid names, pid = 0. The entry
        // past the end holds stale garbage (a plausible stale pid).
        counted_loop(&mut f, nfiles, |f, i| {
            f.at(30);
            let off = f.bin(BinOp::Mul, i, 16);
            let entry = f.bin(BinOp::Add, off, files as i64);
            let name = f.bin(BinOp::Add, i, 100);
            f.store(entry, 0, name);
            // With children spawned (use_temp), every file has a real pid.
            let i1 = f.bin(BinOp::Add, i, 1);
            let pid = f.bin(BinOp::Mul, use_temp, i1);
            f.store(entry, 8, pid);
        });
        f.at(34);
        let goff = f.bin(BinOp::Mul, nfiles, 16);
        let gentry = f.bin(BinOp::Add, goff, files as i64);
        f.store(gentry, 0, 4242); // garbage "name"
        f.store(gentry, 8, stale); // stale memory past the array
                                   // A valid table for the normal (non-merge) lookup path.
        let tbl = f.alloc(4);
        f.store(tbl, 0, 1);
        f.store(string_table as i64, 0, tbl);
        // Spawning children initializes the process table.
        let skip_pt = f.new_block();
        let init_pt = f.new_block();
        f.br(use_temp, init_pt, skip_pt);
        f.set_block(init_pt);
        let pt = f.alloc(4);
        f.store(pt, 0, 1);
        f.store(proc_table as i64, 0, pt);
        f.jmp(skip_pt);
        f.set_block(skip_pt);
        f.at(40);
        f.br(merge_mode, merge_blk, sort_blk);
        f.set_block(merge_blk);
        f.at(42);
        f.call_void(merge, &[same.into()]);
        f.jmp(done);
        f.set_block(sort_blk);
        f.at(44);
        let r = f.call(sort_files, &[]);
        f.output(r);
        f.jmp(done);
        f.set_block(done);
        f.ret(None);
        f.finish();
    }

    let program = pb.finish(main);
    let sort_c = program.function(main).file;
    let hash_c = program.function(hash_lookup).file;
    let root_loc = SourceLoc::new(sort_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == avoid_trashing_input && b.loc == root_loc)
        .map(|b| b.id);
    let fault_loc = SourceLoc::new(hash_c, fault_line);

    Benchmark {
        info: BenchmarkInfo {
            id: "sort",
            app: "sort",
            version: "7.2",
            language: Language::C,
            root_cause: RootCauseKind::Memory,
            symptom: Symptom::Crash,
            bug_class: BugClass::Sequential,
            description: "merge with output among inputs overflows files[] in \
                          avoid_trashing_input and crashes later in hash_lookup",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(3)),
                lbrlog_no_tog: Some(PaperMark::Found(5)),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(1)),
                patch_dist_failure: None, // ∞: different files
                patch_dist_lbr: Some(4),
                has_patch_distance: true,
                kloc: 3.6,
                log_points: 36,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "hash_lookup".into(),
                line: fault_line,
            },
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![root_loc],
            failure_site_loc: fault_loc,
            fpe: None,
            fault_locs: vec![(hash_lookup, fault_loc)],
        },
        workloads: Workloads {
            // merge mode, 3 files, output among inputs, stale garbage past
            // the array, no children → overflow then crash.
            failing: vec![Workload::new(vec![1, 3, 1, 31337, 0])],
            passing: vec![
                // non-merge mode exercises hash_lookup legitimately,
                // with and without compression children.
                Workload::new(vec![0, 3, 0, 0, 1]),
                Workload::new(vec![0, 4, 0, 0, 0]),
                // ordinary merges with temp children: the open_temp →
                // hash_lookup path runs and succeeds.
                Workload::new(vec![1, 3, 0, 0, 1]),
                Workload::new(vec![1, 4, 0, 0, 1]),
                // aliased merge where the adjacent memory happens to be
                // zero: the overflow fires harmlessly (the reason this bug
                // survived in production).
                Workload::new(vec![1, 3, 1, 0, 1]),
            ],
            perf: Workload::new(vec![1, 8, 0, 0, 1]),
        },
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn sort_failing_workload_segfaults_in_hash_lookup() {
        assert_workloads_classify(&sort());
    }

    #[test]
    fn sort_lbrlog_positions_match_paper() {
        // Table 6: w/ toggling the root-cause branch A is the 3rd latest
        // LBR entry; without toggling, library pollution pushes it to 5th.
        let b = sort();
        assert_eq!(lbrlog_position(&b, true), Some(3));
        assert_eq!(lbrlog_position(&b, false), Some(5));
    }

    #[test]
    fn sort_lbra_ranks_root_cause_first() {
        let b = sort();
        let rank = lbra_rank(&b);
        assert_eq!(rank, Some(1));
    }
}

/// The `cp --backup` semantic bug of Coreutils 4.5.8: backing up a
/// destination that does not exist trips the copy engine, which reports
/// "cannot backup" after the data copy has already been staged.
///
/// Inputs: `[backup_mode, dest_missing]`.
pub fn cp() -> Benchmark {
    let mut pb = ProgramBuilder::new("cp");
    let libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let copy = pb.declare_function("copy");

    let patch_line = 230;
    let root_line = 245;
    let fail_line = 247;
    let site;
    {
        let mut f = pb.build_function(copy, "copy.c");
        let ps = f.params(2); // backup_mode, dest_missing
        let (backup, missing) = (ps[0], ps[1]);
        let backup_blk = f.new_block();
        let join_blk = f.new_block();
        f.at(patch_line);
        // The buggy compound condition: "make a numbered backup" should
        // also require the destination to exist. The patch rewrites this
        // computation.
        let want_backup = f.bin(BinOp::And, backup, missing);
        f.at(root_line);
        f.br(want_backup, backup_blk, join_blk); // root-cause branch
        f.set_block(backup_blk);
        f.at(246);
        // Stage the data copy (library work between root cause and check).
        let src = f.alloc(8);
        let dst = f.alloc(8);
        f.call_void(libc.memmove, &[dst.into(), src.into(), Operand::Const(8)]);
        f.at(fail_line);
        let backup_ok = f.un(stm_machine::ir::UnOp::Not, missing);
        site = guard(&mut f, backup_ok, "cp: cannot backup destination");
        f.ret(Some(Operand::Const(0)));
        f.set_block(join_blk);
        f.at(260);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "cp.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        f.at(20);
        let backup = f.read_input(0);
        let missing = f.read_input(1);
        let nonneg = f.bin(BinOp::Ge, backup, 0);
        guard(&mut f, nonneg, "cp: bad flags");
        f.at(30);
        let r = f.call(copy, &[backup.into(), missing.into()]);
        f.output(r);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let copy_c = program.function(copy).file;
    let root_loc = SourceLoc::new(copy_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == copy && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "cp",
            app: "cp",
            version: "4.5.8",
            language: Language::C,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "backup of a non-existent destination fails after staging the copy",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(2)),
                lbrlog_no_tog: Some(PaperMark::Miss),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(1)),
                patch_dist_failure: Some(17),
                patch_dist_lbr: Some(15),
                has_patch_distance: true,
                kloc: 1.2,
                log_points: 108,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(copy_c, patch_line)],
            failure_site_loc: SourceLoc::new(copy_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 1])],
            passing: vec![
                Workload::new(vec![1, 0]), // backup of an existing dest
                Workload::new(vec![0, 1]), // plain copy
                Workload::new(vec![0, 0]),
            ],
            perf: Workload::new(vec![1, 0]),
        },
        program,
    }
}

/// The `ln --target-directory` semantic bug of Coreutils 4.5.1: with a
/// single operand the early `if (n_files == 1)` branch (missing the
/// `!target_directory_specified` conjunct) misclassifies the operand; the
/// failure surfaces hundreds of lines later, and the LBR window only
/// reaches the related `if (target_directory_specified)` branch.
///
/// Inputs: `[n_files, target_dir_specified]`.
pub fn ln() -> Benchmark {
    let mut pb = ProgramBuilder::new("ln");
    let libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let do_link = pb.declare_function("do_link");

    let root_line = 40;
    let related_line = 287;
    let fail_line = 294;
    let site;
    {
        // do_link is shared by the target-directory and plain paths, as in
        // the real program: its checks appear in success profiles too.
        let mut f = pb.build_function(do_link, "ln.c");
        let ps = f.params(2); // misclassified, n_files
        let (misclassified, n_files) = (ps[0], ps[1]);
        pad_checks(&mut f, 11, 300, n_files);
        // Pre-render the link report: a library formatting call whose
        // branches evict the whole window when toggling is off.
        f.at(292);
        f.call_void(libc.format, &[Operand::Const(8)]);
        f.at(fail_line);
        let ok = f.un(stm_machine::ir::UnOp::Not, misclassified);
        site = guard(
            &mut f,
            ok,
            "ln: accessing target: no such file or directory",
        );
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "ln.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let single = f.new_block();
        let multi = f.new_block();
        let after_mode = f.new_block();
        let tdir_blk = f.new_block();
        let plain_blk = f.new_block();
        let tail = f.new_block();
        f.at(20);
        let n_files = f.read_input(0);
        let tdir = f.read_input(1);
        let pos = f.bin(BinOp::Gt, n_files, 0);
        guard(&mut f, pos, "ln: missing file operand");
        // The mode flag the root-cause branch mis-computes: the patch
        // changes this condition to `!tdir && n_files == 1`.
        let misclassified = f.var();
        f.at(root_line);
        let one = f.bin(BinOp::Eq, n_files, 1);
        f.br(one, single, multi); // root-cause branch
        f.set_block(single);
        f.at(41);
        f.assign(misclassified, 1); // treated as "link into cwd"
        f.jmp(after_mode);
        f.set_block(multi);
        f.at(43);
        f.assign(misclassified, 0);
        f.jmp(after_mode);
        f.set_block(after_mode);
        // Early argument processing (the 70s lines): three checks whose
        // records survive in the window.
        pad_checks(&mut f, 3, 73, n_files);
        // ... lots of unrelated work (no retired branches: straight-line).
        f.at(100);
        let names = f.alloc(4);
        f.store(names, 0, 1001);
        f.at(related_line);
        f.br(tdir, tdir_blk, plain_blk); // related branch B
        f.set_block(tdir_blk);
        f.at(288);
        // Linking into the target directory with the misclassified operand
        // produces a dangling path inside do_link.
        f.call_void(do_link, &[misclassified.into(), n_files.into()]);
        f.jmp(tail);
        f.set_block(plain_blk);
        f.at(290);
        // The plain path links through the very same code.
        f.call_void(do_link, &[Operand::Const(0), n_files.into()]);
        f.output(1);
        f.jmp(tail);
        f.set_block(tail);
        // Formatting of the final report (library; pollutes w/o toggling
        // *before* the failure when the error path runs: the error path
        // calls format() while building the message).
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let ln_c = program.function(main).file;
    let related_loc = SourceLoc::new(ln_c, related_line);
    let related_branch = program
        .branches
        .iter()
        .find(|b| b.func == main && b.loc == related_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "ln",
            app: "ln",
            version: "4.5.1",
            language: Language::C,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "single-operand ln with --target-directory misclassifies the operand \
                          at startup; the failure fires 254 lines later",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Related(13)),
                lbrlog_no_tog: Some(PaperMark::Miss),
                lbra: Some(PaperMark::Related(1)),
                cbi: Some(PaperMark::Found(1)),
                patch_dist_failure: Some(254),
                patch_dist_lbr: Some(33),
                has_patch_distance: true,
                kloc: 0.7,
                log_points: 29,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: None, // evicted from the 16-entry window
            related_branch,
            patch_locs: vec![SourceLoc::new(ln_c, root_line)],
            failure_site_loc: SourceLoc::new(ln_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 1])],
            passing: vec![
                Workload::new(vec![1, 0]), // plain two-operand form
                Workload::new(vec![2, 0]),
                Workload::new(vec![3, 0]),
            ],
            perf: Workload::new(vec![2, 0]),
        },
        program,
    }
}

#[cfg(test)]
mod cp_ln_tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn cp_matches_table6_row() {
        let b = cp();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(2));
        assert_eq!(lbrlog_position(&b, false), None); // evicted by memmove
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(17), Some(15)));
    }

    #[test]
    fn ln_matches_table6_row() {
        let b = ln();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(13)); // related branch
        assert_eq!(lbrlog_position(&b, false), None);
        assert_eq!(lbra_rank(&b), Some(1));
        let (df, dl) = patch_distances(&b);
        assert_eq!(df, Some(254));
        assert_eq!(dl, Some(33));
    }
}

/// The `mv` into-itself semantic bug of Coreutils 6.8: the early
/// same-file classification at the patch line takes the wrong edge, and
/// the rename machinery reports "cannot move" 309 lines later.
///
/// Inputs: `[same_file]`.
pub fn mv() -> Benchmark {
    let mut pb = ProgramBuilder::new("mv");
    let libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let do_move = pb.declare_function("do_move");

    let root_line = 110;
    let fail_line = 419;
    let site;
    {
        // Shared by the failing and passing paths, as in the real rename
        // machinery.
        let mut f = pb.build_function(do_move, "mv.c");
        let ps = f.params(2); // into_itself, operand
        let (into_itself, operand) = (ps[0], ps[1]);
        f.at(402);
        // Canonicalize the destination name (library).
        let _h = f.call(libc.hash, &[operand.into()]);
        pad_checks(&mut f, 10, 404, operand);
        f.at(fail_line);
        let ok = f.un(stm_machine::ir::UnOp::Not, into_itself);
        site = guard(
            &mut f,
            ok,
            "mv: cannot move file to a subdirectory of itself",
        );
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "mv.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let bad = f.new_block();
        let good = f.new_block();
        let tail = f.new_block();
        f.at(20);
        let same = f.read_input(0);
        let operand = f.read_input(1);
        let have = f.bin(BinOp::Ge, operand, 0);
        guard(&mut f, have, "mv: missing operand");
        f.at(root_line);
        // Root cause: the classification misses the trailing-slash case,
        // so `same` holds when it should not.
        f.br(same, bad, good);
        f.set_block(bad);
        f.at(112);
        f.call_void(do_move, &[Operand::Const(1), operand.into()]);
        f.jmp(tail);
        f.set_block(good);
        f.at(114);
        f.call_void(do_move, &[Operand::Const(0), operand.into()]);
        f.output(1);
        f.jmp(tail);
        f.set_block(tail);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let mv_c = program.function(main).file;
    let root_loc = SourceLoc::new(mv_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == main && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "mv",
            app: "mv",
            version: "6.8",
            language: Language::C,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "destination misclassified as inside the source at startup; \
                          rename reports the failure 309 lines later",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(12)),
                lbrlog_no_tog: Some(PaperMark::Found(14)),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(2)),
                patch_dist_failure: Some(309),
                patch_dist_lbr: Some(0),
                has_patch_distance: true,
                kloc: 4.1,
                log_points: 46,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![root_loc],
            failure_site_loc: SourceLoc::new(mv_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 7])],
            passing: vec![
                Workload::new(vec![0, 7]),
                Workload::new(vec![0, 3]),
                Workload::new(vec![0, 12]),
            ],
            perf: Workload::new(vec![0, 9]),
        },
        program,
    }
}

/// The `rm -r` semantic bug of Coreutils 4.5.4: the directory-cycle
/// detection takes the wrong edge and `rm` refuses a legitimate removal
/// 31 lines later.
///
/// Inputs: `[is_cycle]`.
pub fn rm() -> Benchmark {
    let mut pb = ProgramBuilder::new("rm");
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let remove_entry = pb.declare_function("remove_entry");

    let root_line = 200;
    let fail_line = 231;
    let site;
    {
        let mut f = pb.build_function(remove_entry, "remove.c");
        let ps = f.params(2); // cycle_flag, entry
        let (cycle, entry) = (ps[0], ps[1]);
        pad_checks(&mut f, 3, 222, entry);
        f.at(fail_line);
        let ok = f.un(stm_machine::ir::UnOp::Not, cycle);
        site = guard(&mut f, ok, "rm: WARNING: Circular directory structure");
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "remove.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let cyc = f.new_block();
        let fine = f.new_block();
        let tail = f.new_block();
        f.at(20);
        let is_cycle = f.read_input(0);
        let entry = f.read_input(1);
        let have = f.bin(BinOp::Ge, entry, 0);
        guard(&mut f, have, "rm: missing operand");
        f.at(root_line);
        // Root cause: dev/ino comparison misses the bind-mount case.
        f.br(is_cycle, cyc, fine);
        f.set_block(cyc);
        f.at(202);
        f.call_void(remove_entry, &[Operand::Const(1), entry.into()]);
        f.jmp(tail);
        f.set_block(fine);
        f.at(204);
        f.call_void(remove_entry, &[Operand::Const(0), entry.into()]);
        f.output(1);
        f.jmp(tail);
        f.set_block(tail);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let remove_c = program.function(main).file;
    let root_loc = SourceLoc::new(remove_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == main && b.loc == root_loc)
        .map(|b| b.id);
    Benchmark {
        info: BenchmarkInfo {
            id: "rm",
            app: "rm",
            version: "4.5.4",
            language: Language::C,
            root_cause: RootCauseKind::Semantic,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Sequential,
            description: "spurious directory-cycle detection aborts a legitimate recursive removal",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(5)),
                lbrlog_no_tog: Some(PaperMark::Found(5)),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(2)),
                patch_dist_failure: Some(31),
                patch_dist_lbr: Some(0),
                has_patch_distance: true,
                kloc: 1.3,
                log_points: 31,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![root_loc],
            failure_site_loc: SourceLoc::new(remove_c, fail_line),
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 4])],
            passing: vec![
                Workload::new(vec![0, 4]),
                Workload::new(vec![0, 9]),
                Workload::new(vec![0, 2]),
            ],
            perf: Workload::new(vec![0, 5]),
        },
        program,
    }
}

/// The `tac` separator-regex memory bug of Coreutils 6.11: the bundled
/// regex engine returns a match offset past the read buffer when the
/// separator is treated as a regex; `tac` dereferences it and crashes.
/// The patch lives in the regex engine — a different file from everything
/// LBR captures.
///
/// Inputs: `[separator_regex, text]`.
pub fn tac() -> Benchmark {
    let mut pb = ProgramBuilder::new("tac");
    let _libc = libc::install(&mut pb);
    let main = pb.declare_function("main");
    let re_search = pb.declare_function("re_search");

    let sep_line = 120; // the related branch LBR captures
    let match_line = 128;
    let fault_line = 134;
    let patch_line = 310; // in regex.c
    {
        // The bundled regex engine (a library: its internals are toggled
        // like any other library's). Straight-line match computation whose
        // *result* is wrong in separator-regex mode.
        let mut f = pb.build_function(re_search, "regex.c");
        f.set_library();
        let ps = f.params(2); // buf, sep_mode
        f.at(patch_line);
        // Root cause (patched here): the range end is not clamped in
        // separator mode, yielding an offset far past the buffer.
        let bad = f.bin(BinOp::Mul, ps[1], 98);
        let off = f.bin(BinOp::Add, bad, 1);
        let _ = ps[0];
        f.ret(Some(off.into()));
        f.finish();
    }
    let site_decoy;
    {
        let mut f = pb.build_function(main, "tac.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let regex_blk = f.new_block();
        let plain_blk = f.new_block();
        let matched = f.new_block();
        let nomatch = f.new_block();
        f.at(20);
        let sep_mode = f.read_input(0);
        let text = f.read_input(1);
        let have = f.bin(BinOp::Gt, text, 0);
        site_decoy = guard(&mut f, have, "tac: no input");
        let buf = f.alloc(4);
        f.store(buf, 0, text);
        f.store(buf, 8, text);
        f.at(sep_line);
        // Related branch: choosing the separator-regex engine mode.
        f.br(sep_mode, regex_blk, plain_blk);
        f.set_block(regex_blk);
        f.at(122);
        let off_r = f.call(re_search, &[buf.into(), Operand::Const(1)]);
        f.jmp(matched);
        f.set_block(plain_blk);
        f.at(124);
        let off_p = f.call(re_search, &[buf.into(), Operand::Const(0)]);
        f.jmp(matched);
        f.set_block(matched);
        let off = f.var();
        // Merge the two offsets (exactly one path assigned a value).
        f.assign_bin(off, BinOp::Add, off_r, off_p);
        f.at(match_line);
        let found = f.bin(BinOp::Gt, off, 0);
        f.br(found, nomatch, nomatch); // placeholder, replaced below
        f.set_block(nomatch);
        f.at(fault_line);
        let addr = f.bin(BinOp::Mul, off, 8);
        let ptr = f.bin(BinOp::Add, addr, buf);
        let v = f.load(ptr, 0); // F: crashes when off is garbage
        f.output(v);
        f.ret(None);
        f.finish();
    }
    let _ = site_decoy;
    let program = pb.finish(main);
    let tac_c = program.function(main).file;
    let regex_c = program.function(re_search).file;
    let sep_loc = SourceLoc::new(tac_c, sep_line);
    let related_branch = program
        .branches
        .iter()
        .find(|b| b.func == main && b.loc == sep_loc)
        .map(|b| b.id);
    let fault_loc = SourceLoc::new(tac_c, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "tac",
            app: "tac",
            version: "6.11",
            language: Language::C,
            root_cause: RootCauseKind::Memory,
            symptom: Symptom::Crash,
            bug_class: BugClass::Sequential,
            description: "separator-regex mode returns an out-of-buffer match offset from the \
                          bundled regex engine; tac dereferences it",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Related(3)),
                lbrlog_no_tog: Some(PaperMark::Related(3)),
                lbra: Some(PaperMark::Related(1)),
                cbi: Some(PaperMark::Related(3)),
                patch_dist_failure: None, // ∞: patch is in regex.c
                patch_dist_lbr: None,     // ∞: no captured branch in regex.c
                has_patch_distance: true,
                kloc: 0.7,
                log_points: 21,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "main".into(),
                line: fault_line,
            },
            root_cause_branch: None, // the root cause is not a branch here
            related_branch,
            patch_locs: vec![SourceLoc::new(regex_c, patch_line)],
            failure_site_loc: fault_loc,
            fpe: None,
            fault_locs: vec![(main, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 5])],
            passing: vec![
                Workload::new(vec![0, 5]),
                Workload::new(vec![0, 8]),
                Workload::new(vec![0, 2]),
            ],
            perf: Workload::new(vec![0, 6]),
        },
        program,
    }
}

#[cfg(test)]
mod mv_rm_tac_tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn mv_matches_table6_row() {
        let b = mv();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(12));
        assert_eq!(lbrlog_position(&b, false), Some(14));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(309), Some(0)));
    }

    #[test]
    fn rm_matches_table6_row() {
        let b = rm();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(5));
        assert_eq!(lbrlog_position(&b, false), Some(5));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(31), Some(0)));
    }

    #[test]
    fn tac_matches_table6_row() {
        let b = tac();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(3));
        assert_eq!(lbrlog_position(&b, false), Some(3));
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (None, None)); // both ∞
    }
}

/// The `paste -d'\'` memory bug of Coreutils 6.10: the delimiter-list
/// walk leaks a held lock on the trailing-backslash path, and the next
/// delimiter write self-deadlocks — the process hangs.
///
/// Inputs: `[trailing_backslash, n]`.
pub fn paste() -> Benchmark {
    let mut pb = ProgramBuilder::new("paste");
    let libc = libc::install(&mut pb);
    let delim_lock = pb.global("delim_lock", 1);
    let main = pb.declare_function("main");
    let write_delim = pb.declare_function("write_delim");

    let patch_line = 397;
    let root_line = 400;
    let hang_line = 432;
    {
        let mut f = pb.build_function(write_delim, "paste.c");
        let ps = f.params(1); // n
        f.at(428);
        // Render the delimiter (library; evicts the window w/o toggling).
        f.call_void(libc.format, &[Operand::Const(8)]);
        pad_checks(&mut f, 4, 429, ps[0]);
        f.at(hang_line);
        f.lock(delim_lock as i64); // F: self-deadlock when the lock leaked
        f.at(433);
        f.unlock(delim_lock as i64);
        f.ret(Some(Operand::Const(0)));
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "paste.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let leak_blk = f.new_block();
        let fine_blk = f.new_block();
        let join_blk = f.new_block();
        f.at(20);
        let backslash = f.read_input(0);
        let n = f.read_input(1);
        let have = f.bin(BinOp::Gt, n, 0);
        guard(&mut f, have, "paste: missing input");
        f.at(395);
        f.lock(delim_lock as i64);
        f.at(root_line);
        // Root cause (patched 3 lines up): the trailing-backslash case
        // takes the early-continue edge and skips the unlock below.
        f.br(backslash, leak_blk, fine_blk);
        f.set_block(fine_blk);
        f.at(403);
        f.unlock(delim_lock as i64);
        f.jmp(join_blk); // fall-through (adjacent)
        f.set_block(join_blk);
        f.at(410);
        let r = f.call(write_delim, &[n.into()]);
        f.output(r);
        f.ret(None);
        f.set_block(leak_blk);
        f.at(402);
        f.jmp(join_blk); // backward jump: retires a record
        f.finish();
    }
    let program = pb.finish(main);
    let paste_c = program.function(main).file;
    let root_loc = SourceLoc::new(paste_c, root_line);
    let root_branch = program
        .branches
        .iter()
        .find(|b| b.func == main && b.loc == root_loc)
        .map(|b| b.id);
    let hang_loc = SourceLoc::new(paste_c, hang_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "paste",
            app: "paste",
            version: "6.10",
            language: Language::C,
            root_cause: RootCauseKind::Memory,
            symptom: Symptom::Hang,
            bug_class: BugClass::Sequential,
            description: "trailing backslash in the delimiter list leaks a lock; the next \
                          delimiter write hangs forever",
            paper: PaperExpectations {
                lbrlog_tog: Some(PaperMark::Found(6)),
                lbrlog_no_tog: Some(PaperMark::Miss),
                lbra: Some(PaperMark::Found(1)),
                cbi: Some(PaperMark::Found(1)),
                patch_dist_failure: Some(35),
                patch_dist_lbr: Some(3),
                has_patch_distance: true,
                kloc: 0.5,
                log_points: 23,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::Hang,
            root_cause_branch: root_branch,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(paste_c, patch_line)],
            failure_site_loc: hang_loc,
            fpe: None,
            fault_locs: vec![(write_delim, hang_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![1, 5])],
            passing: vec![
                Workload::new(vec![0, 5]),
                Workload::new(vec![0, 2]),
                Workload::new(vec![0, 9]),
            ],
            perf: Workload::new(vec![0, 6]),
        },
        program,
    }
}

#[cfg(test)]
mod paste_tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn paste_matches_table6_row() {
        let b = paste();
        assert_workloads_classify(&b);
        assert_eq!(lbrlog_position(&b, true), Some(6));
        assert_eq!(lbrlog_position(&b, false), None);
        assert_eq!(lbra_rank(&b), Some(1));
        assert_eq!(patch_distances(&b), (Some(35), Some(3)));
    }
}
