//! Shared evaluation drivers: run one benchmark through LBRLOG / LBRA /
//! LCRLOG / LCRA exactly as the paper's experiments do, and report the
//! measured positions/ranks that Tables 6 and 7 tabulate.

use crate::benchmark::{Benchmark, BugClass};
use stm_core::diagnose::{LbraDiagnosis, LcraDiagnosis};
use stm_core::engine::{DiagnosisSession, ProfileKind};
use stm_core::logging::failure_log_for;
use stm_core::runner::{FailureSpec, RunClass, Runner, Workload};
use stm_core::transform::{instrument, InstrumentOptions};
use stm_machine::events::LcrConfig;
use stm_machine::interp::Machine;
use stm_machine::ir::SourceLoc;

/// How many seeds to scan when expanding concurrency workloads.
const SEED_SCAN: u64 = 400;

/// Worker threads for profile collection: `STM_THREADS` when set,
/// otherwise the machine's available parallelism capped at 8. Thread
/// count never changes results (the engine consumes runs in job order),
/// only wall-clock time.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("STM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Builds the reactive-scheme instrumentation options implied by a
/// benchmark's ground truth (the failure has been observed once; §5.2).
pub fn reactive_options(
    b: &Benchmark,
    lbr: bool,
    lcr_config: Option<LcrConfig>,
) -> InstrumentOptions {
    let log_sites = match &b.truth.spec {
        FailureSpec::ErrorLogAt(site) => vec![*site],
        _ => Vec::new(),
    };
    let fault_locs = b.truth.fault_locs.clone();
    let mut opts = match lcr_config {
        Some(cfg) => InstrumentOptions::lcra_reactive(cfg, log_sites, fault_locs),
        None => InstrumentOptions::lbra_reactive(log_sites, fault_locs),
    };
    opts.lbr = lbr || lcr_config.is_none();
    opts
}

/// An LBRLOG deployment of the benchmark.
pub fn lbrlog_runner(b: &Benchmark, toggling: bool) -> Runner {
    let opts = if toggling {
        InstrumentOptions::lbrlog()
    } else {
        InstrumentOptions::lbrlog_without_toggling()
    };
    Runner::new(Machine::new(instrument(&b.program, &opts)))
}

/// An LCRLOG deployment of the benchmark.
pub fn lcrlog_runner(b: &Benchmark, config: LcrConfig) -> Runner {
    Runner::new(Machine::new(instrument(
        &b.program,
        &InstrumentOptions::lcrlog(config),
    )))
}

/// Expands the benchmark's workloads into concrete failing/passing sets.
/// Sequential benchmarks fail deterministically; concurrency benchmarks
/// scan scheduler seeds for reproducing/avoiding interleavings.
pub fn expand_workloads(b: &Benchmark, runner: &Runner) -> (Vec<Workload>, Vec<Workload>) {
    match b.info.bug_class {
        BugClass::Sequential => (b.workloads.failing.clone(), b.workloads.passing.clone()),
        BugClass::Concurrency => {
            let scan = |base: &Workload, fail_n: usize, pass_n: usize| {
                DiagnosisSession::from_runner(runner)
                    .failure(b.truth.spec.clone())
                    .workloads(vec![base.clone()])
                    .seeds(base.seed..base.seed + SEED_SCAN)
                    .failure_profiles(fail_n)
                    .success_profiles(pass_n)
                    .threads(default_threads())
                    .collect()
                    .expect("scan-mode collection cannot fail")
            };
            let mut failing = Vec::new();
            let mut passing = Vec::new();
            if b.workloads.failing == b.workloads.passing {
                // One combined pass per base finds both witness classes
                // and stops as soon as both quotas are met (previously:
                // two full scans over the same seed range).
                for base in &b.workloads.failing {
                    let got = scan(base, 12, 12);
                    failing.extend(got.failing_workloads());
                    passing.extend(got.passing_workloads());
                }
            } else {
                for base in &b.workloads.failing {
                    failing.extend(scan(base, 12, 0).failing_workloads());
                }
                for base in &b.workloads.passing {
                    passing.extend(scan(base, 0, 12).passing_workloads());
                }
            }
            (failing, passing)
        }
    }
}

/// Runs the benchmark under LBRLOG and returns the ring position of the
/// target (root-cause or related) branch in the first reproduced failure —
/// a Table 6 "LBRLOG" cell.
pub fn lbrlog_position(b: &Benchmark, toggling: bool) -> Option<usize> {
    let runner = lbrlog_runner(b, toggling);
    let (failing, _) = expand_workloads(b, &runner);
    let target = b.truth.target_branch()?;
    for w in &failing {
        let (report, class) = runner.run_classified(w, &b.truth.spec);
        if class != RunClass::TargetFailure {
            continue;
        }
        let log = failure_log_for(&runner, &report, &b.truth.spec)?;
        return log.lbr_position_of_branch(target);
    }
    None
}

/// Like [`lbrlog_position`], but with a custom LBR capacity — the E7
/// capacity-sensitivity experiment (4 entries on Pentium 4, 8 on
/// Pentium M, 16 on Nehalem, §2.1).
pub fn lbrlog_position_with_entries(b: &Benchmark, entries: usize) -> Option<usize> {
    let runner = lbrlog_runner(b, true).with_hw_config(stm_hardware::HwConfig {
        lbr_entries: entries,
        ..stm_hardware::HwConfig::default()
    });
    let (failing, _) = expand_workloads(b, &runner);
    let target = b.truth.target_branch()?;
    for w in &failing {
        let (report, class) = runner.run_classified(w, &b.truth.spec);
        if class != RunClass::TargetFailure {
            continue;
        }
        let log = failure_log_for(&runner, &report, &b.truth.spec)?;
        return log.lbr_position_of_branch(target);
    }
    None
}

/// Measured patch distances (Table 6's "Patch distance" columns):
/// `(failure_site_to_patch, nearest_lbr_branch_to_patch)`; `None` = ∞
/// (different file, or branch not captured).
pub fn patch_distances(b: &Benchmark) -> (Option<u32>, Option<u32>) {
    let dist = |a: SourceLoc, p: SourceLoc| -> Option<u32> {
        (a.file == p.file).then(|| a.line.abs_diff(p.line))
    };
    let fail_dist = b
        .truth
        .patch_locs
        .iter()
        .filter_map(|p| dist(b.truth.failure_site_loc, *p))
        .min();

    let runner = lbrlog_runner(b, true);
    let (failing, _) = expand_workloads(b, &runner);
    let mut lbr_dist: Option<u32> = None;
    for w in &failing {
        let (report, class) = runner.run_classified(w, &b.truth.spec);
        if class != RunClass::TargetFailure {
            continue;
        }
        if let Some(log) = failure_log_for(&runner, &report, &b.truth.spec) {
            for e in &log.lbr {
                if let Some(stm_machine::layout::Decoded::SourceBranch { loc, .. }) = e.decoded {
                    for p in &b.truth.patch_locs {
                        if let Some(d) = dist(loc, *p) {
                            lbr_dist = Some(lbr_dist.map_or(d, |x| x.min(d)));
                        }
                    }
                }
            }
        }
        break;
    }
    (fail_dist, lbr_dist)
}

/// Runs LBRA (reactive scheme, 10 + 10 runs) and returns the diagnosis.
pub fn run_lbra(b: &Benchmark) -> LbraDiagnosis {
    let opts = reactive_options(b, true, None);
    let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
    let (failing, passing) = expand_workloads(b, &runner);
    let profiles = DiagnosisSession::from_runner(&runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(ProfileKind::Lbr)
        .threads(default_threads())
        .collect()
        .expect("witness-mode collection cannot fail");
    let mut d = profiles.lbra();
    d.exclude_site_guards(runner.machine().program(), &b.truth.spec);
    d
}

/// The LBRA rank of the benchmark's target branch — a Table 6 "LBRA" cell.
pub fn lbra_rank(b: &Benchmark) -> Option<usize> {
    let target = b.truth.target_branch()?;
    run_lbra(b).rank_of_branch(target)
}

/// The LBRA deployment's runner, for expanding witnesses once and reusing
/// them across sensitivity-sweep settings (perturbations degrade only the
/// snapshots the driver reads — never execution or classification — so a
/// witness list found at full signal stays valid at every setting).
pub fn lbra_runner(b: &Benchmark) -> Runner {
    let opts = reactive_options(b, true, None);
    Runner::new(Machine::new(instrument(&b.program, &opts)))
}

/// The LCRA (Conf2) deployment's runner; see [`lbra_runner`].
pub fn lcra_runner(b: &Benchmark) -> Runner {
    let opts = reactive_options(b, false, Some(LcrConfig::SPACE_CONSUMING));
    Runner::new(Machine::new(instrument(&b.program, &opts)))
}

/// Runs LBRA on pre-expanded witnesses under an explicit hardware
/// configuration — one cell of the §7-style sensitivity sweep (ring size
/// × degradation). `runner` must come from [`lbra_runner`] so witnesses
/// and instrumentation match.
pub fn run_lbra_with_hw(
    b: &Benchmark,
    runner: &Runner,
    hw: stm_hardware::HwConfig,
    failing: Vec<Workload>,
    passing: Vec<Workload>,
) -> Result<LbraDiagnosis, stm_core::engine::SessionError> {
    let profiles = DiagnosisSession::from_runner(runner)
        .hw_config(hw)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(ProfileKind::Lbr)
        .threads(default_threads())
        .collect()?;
    let mut d = profiles.lbra();
    d.exclude_site_guards(runner.machine().program(), &b.truth.spec);
    Ok(d)
}

/// Runs LCRA (Conf2) on pre-expanded witnesses under an explicit hardware
/// configuration; the LCR counterpart of [`run_lbra_with_hw`].
pub fn run_lcra_with_hw(
    b: &Benchmark,
    runner: &Runner,
    hw: stm_hardware::HwConfig,
    failing: Vec<Workload>,
    passing: Vec<Workload>,
) -> Result<LcraDiagnosis, stm_core::engine::SessionError> {
    Ok(DiagnosisSession::from_runner(runner)
        .hw_config(hw)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(ProfileKind::Lcr)
        .threads(default_threads())
        .collect()?
        .lcra())
}

/// Runs the benchmark under LCRLOG with the given configuration and
/// returns the ring position of the failure-predicting event — a Table 7
/// "LCRLOG" cell.
///
/// For FPEs whose space-saving signal is an *absence* (read-too-early
/// order violations), the reported position is that of the corresponding
/// record in a success-run profile — the entry whose disappearance the
/// developer keys on (§4.2.2).
pub fn lcrlog_position(b: &Benchmark, space_saving: bool) -> Option<usize> {
    let fpe = b.truth.fpe?;
    let config = if space_saving {
        LcrConfig::SPACE_SAVING
    } else {
        LcrConfig::SPACE_CONSUMING
    };
    let state = if space_saving {
        fpe.conf1_state?
    } else {
        fpe.conf2_state?
    };
    if space_saving && fpe.conf1_is_absence {
        // Collect a success-site profile instead.
        let opts = reactive_options(b, false, Some(config));
        let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
        let (_, passing) = expand_workloads(b, &runner);
        for w in &passing {
            let (report, class) = runner.run_classified(w, &b.truth.spec);
            if class != RunClass::Success {
                continue;
            }
            let Some(prof) = report
                .profiles_with_role(stm_machine::ir::ProfileRole::SuccessSite)
                .last()
            else {
                continue; // this run never reached the success site
            };
            if let stm_machine::report::ProfileData::Lcr(records) = &prof.data {
                return stm_core::profile::lcr_position_of_event(
                    runner.machine().layout(),
                    records,
                    fpe.loc,
                    state,
                );
            }
        }
        return None;
    }
    let runner = lcrlog_runner(b, config);
    let (failing, _) = expand_workloads(b, &runner);
    for w in &failing {
        let (report, class) = runner.run_classified(w, &b.truth.spec);
        if class != RunClass::TargetFailure {
            continue;
        }
        let log = failure_log_for(&runner, &report, &b.truth.spec)?;
        return log.lcr_position_of_event(fpe.loc, state);
    }
    None
}

/// Runs LCRA (reactive, Conf2, 10 + 10 runs) and returns the diagnosis.
pub fn run_lcra(b: &Benchmark) -> LcraDiagnosis {
    let opts = reactive_options(b, false, Some(LcrConfig::SPACE_CONSUMING));
    let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
    let (failing, passing) = expand_workloads(b, &runner);
    DiagnosisSession::from_runner(&runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(ProfileKind::Lcr)
        .threads(default_threads())
        .collect()
        .expect("witness-mode collection cannot fail")
        .lcra()
}

/// The LCRA rank of the benchmark's FPE — a Table 7 "LCRA" cell.
pub fn lcra_rank(b: &Benchmark) -> Option<usize> {
    let fpe = b.truth.fpe?;
    let state = fpe.conf2_state?;
    run_lcra(b).rank_of_event(fpe.loc, state)
}

/// One measured Table 6 row.
#[derive(Debug, Clone)]
pub struct SeqRow {
    /// Benchmark id.
    pub id: String,
    /// LBRLOG position with toggling.
    pub lbrlog_tog: Option<usize>,
    /// LBRLOG position without toggling.
    pub lbrlog_no_tog: Option<usize>,
    /// LBRA rank of the target branch.
    pub lbra: Option<usize>,
    /// Measured failure-site→patch distance (None = ∞).
    pub dist_failure: Option<u32>,
    /// Measured nearest-LBR-branch→patch distance (None = ∞).
    pub dist_lbr: Option<u32>,
}

/// Evaluates a sequential benchmark end to end (one Table 6 row, minus the
/// CBI and overhead columns, which have their own harnesses).
pub fn evaluate_sequential(b: &Benchmark) -> SeqRow {
    let (dist_failure, dist_lbr) = patch_distances(b);
    SeqRow {
        id: b.info.id.to_string(),
        lbrlog_tog: lbrlog_position(b, true),
        lbrlog_no_tog: lbrlog_position(b, false),
        lbra: lbra_rank(b),
        dist_failure,
        dist_lbr,
    }
}

/// One measured Table 7 row.
#[derive(Debug, Clone)]
pub struct ConcRow {
    /// Benchmark id.
    pub id: String,
    /// LCRLOG position under the space-saving Conf1.
    pub lcrlog_conf1: Option<usize>,
    /// LCRLOG position under the space-consuming Conf2.
    pub lcrlog_conf2: Option<usize>,
    /// LCRA rank of the FPE.
    pub lcra: Option<usize>,
}

/// Evaluates a concurrency benchmark end to end (one Table 7 row).
pub fn evaluate_concurrency(b: &Benchmark) -> ConcRow {
    ConcRow {
        id: b.info.id.to_string(),
        lcrlog_conf1: lcrlog_position(b, true),
        lcrlog_conf2: lcrlog_position(b, false),
        lcra: lcra_rank(b),
    }
}
