//! The 11 concurrency-bug failures of Table 4 (Table 7 rows).
//!
//! ## How LCR ring positions are engineered
//!
//! Each benchmark's failure-predicting event (FPE) must land at the exact
//! ring position Table 7 reports, under both LCR configurations. The knobs
//! are the *noise accesses* the failure thread performs between the FPE
//! and the profile point:
//!
//! * loads of a thread-private global (warmed at thread start) observe
//!   `Exclusive` — visible only under the space-consuming Conf2;
//! * loads of a global that both threads read at startup observe `Shared`
//!   — visible only under the space-saving Conf1;
//! * the LCR driver's own disable-path pollution contributes two exclusive
//!   reads (Conf2) or one shared read (Conf1) at the top of every snapshot
//!   (§4.3).
//!
//! So with `s` shared-noise and `e` exclusive-noise loads after the FPE,
//! the FPE sits at position `s + 2` under Conf1 and `e + 3` under Conf2.

pub mod apache;
pub mod misc;
pub mod mozilla;
pub mod mysql;
pub mod splash;

use stm_machine::builder::{FunctionBuilder, ProgramBuilder};

/// The two noise globals of a concurrency benchmark.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NoiseGlobals {
    /// Loaded only by the failure thread: observes `Exclusive` once warm.
    pub private: u64,
    /// Loaded by both threads at startup: observes `Shared` thereafter.
    pub shared: u64,
}

impl NoiseGlobals {
    /// Allocates the two globals.
    pub fn install(pb: &mut ProgramBuilder) -> Self {
        NoiseGlobals {
            private: pb.global_init("stats_private", 1, vec![7]),
            shared: pb.global_init("config_shared", 1, vec![9]),
        }
    }

    /// Warm-up for the failure thread: touch both globals so later loads
    /// observe stable states.
    pub fn warm_failure_thread(&self, f: &mut FunctionBuilder<'_>) {
        let _ = f.load(self.private as i64, 0);
        let _ = f.load(self.shared as i64, 0);
    }

    /// Warm-up for the interloper thread: share the shared global.
    pub fn warm_interloper(&self, f: &mut FunctionBuilder<'_>) {
        let _ = f.load(self.shared as i64, 0);
    }

    /// Declares and builds a helper thread function that touches the
    /// shared global and exits. Benchmarks whose interloper may not have
    /// run before the failure region spawn-and-join this warmer first, so
    /// the shared global is deterministically in the `Shared` state.
    pub fn build_warmer(&self, pb: &mut ProgramBuilder) -> stm_machine::ids::FuncId {
        let warmer = pb.declare_function("__config_warmer");
        let mut f = pb.build_function(warmer, "warm.c");
        let _ = f.load(self.shared as i64, 0);
        f.ret(None);
        f.finish();
        warmer
    }

    /// Emits `s` shared-observing loads then `e` exclusive-observing loads
    /// (so the exclusive ones are the most recent). Call right after the
    /// FPE access.
    pub fn emit(&self, f: &mut FunctionBuilder<'_>, s: u32, e: u32) {
        for _ in 0..s {
            let _ = f.load(self.shared as i64, 0);
        }
        for _ in 0..e {
            let _ = f.load(self.private as i64, 0);
        }
    }
}
