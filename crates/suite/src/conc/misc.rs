//! Concurrency-bug benchmarks from Cherokee and PBZIP2 (Table 4).

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, FpeSpec, GroundTruth, Language, PaperExpectations,
    PaperMark, RootCauseKind, Symptom, Workloads,
};
use crate::conc::NoiseGlobals;
use crate::util::pad_checks;
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::events::CoherenceState;
use stm_machine::ir::{BinOp, SourceLoc};

/// Cherokee 0.98.0: an atomicity violation on the access-log buffer swap —
/// two threads swap and flush concurrently, and entries vanish from the
/// log. Silent corruption with no logging near the root cause: the `-`
/// row shape of Table 7.
pub fn cherokee() -> Benchmark {
    let mut pb = ProgramBuilder::new("cherokee");
    let noise = NoiseGlobals::install(&mut pb);
    let active_buf = pb.global("active_buf", 1);
    let buf_a = pb.global("buf_a", 2);
    let buf_b = pb.global("buf_b", 2);
    let main = pb.declare_function("main");
    let flusher = pb.declare_function("flush_thread");

    {
        let mut f = pb.build_function(flusher, "cherokee/logger.c");
        noise.warm_interloper(&mut f);
        f.at(210);
        // Swap the active buffer (non-atomically vs. the writer).
        let cur = f.load(active_buf as i64, 0);
        f.yield_now();
        let other = f.bin(BinOp::Xor, cur, 1);
        f.at(212);
        f.store(active_buf as i64, 0, other);
        // "Flush" (clear) the buffer that was active.
        let base = f.var();
        let sel = f.bin(BinOp::Mul, cur, (buf_b - buf_a) as i64);
        f.assign_bin(base, BinOp::Add, sel, buf_a as i64);
        f.at(215);
        f.store(base, 0, 0);
        f.ret(None);
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "cherokee/logger.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        noise.warm_failure_thread(&mut f);
        f.store(active_buf as i64, 0, 0);
        f.store(buf_a as i64, 0, 0);
        f.store(buf_b as i64, 0, 0);
        let t = f.spawn(flusher, &[]);
        // Append an entry to whichever buffer is active — racing with the
        // swap-and-flush.
        f.at(190);
        let cur = f.load(active_buf as i64, 0);
        f.yield_now();
        let sel = f.bin(BinOp::Mul, cur, (buf_b - buf_a) as i64);
        let base = f.bin(BinOp::Add, sel, buf_a as i64);
        f.at(192);
        f.store(base, 0, 41);
        f.join(t);
        // The surviving log content is the observable output.
        let a = f.load(buf_a as i64, 0);
        let b = f.load(buf_b as i64, 0);
        let sum = f.bin(BinOp::Add, a, b);
        f.output(sum);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let logger_c = program.function(main).file;
    Benchmark {
        info: BenchmarkInfo {
            id: "cherokee",
            app: "Cherokee",
            version: "0.98.0",
            language: Language::C,
            root_cause: RootCauseKind::AtomicityViolation,
            symptom: Symptom::CorruptedLog,
            bug_class: BugClass::Concurrency,
            description: "access-log buffer swapped and flushed mid-append; entries vanish \
                          silently",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Miss),
                lcrlog_conf2: Some(PaperMark::Miss),
                lcra: Some(PaperMark::Miss),
                kloc: 85.0,
                log_points: 184,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::WrongOutput,
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(logger_c, 190)],
            failure_site_loc: SourceLoc::UNKNOWN,
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            // The entry survives ⇒ the buffers sum to 41.
            failing: vec![Workload::new(vec![]).with_expected(vec![41])],
            passing: vec![Workload::new(vec![]).with_expected(vec![41])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

/// PBZIP2 0.9.4 (the paper's Fig. 6): a read-too-late order violation —
/// the main thread destroys the FIFO mutex while a consumer still needs
/// it; the consumer's pointer read observes the invalid state, gets NULL
/// and crashes inside `pthread_mutex_lock`. Table 7 row `✓3 / ✓7 / ✓1`.
pub fn pbzip3() -> Benchmark {
    let mut pb = ProgramBuilder::new("pbzip3");
    let noise = NoiseGlobals::install(&mut pb);
    let mutex_ptr = pb.global("fifo_mutex", 1);
    let main = pb.declare_function("main");
    let consumer = pb.declare_function("consumer");

    let b1_line = 898;
    let b3_line = 904;
    let fault_line = 910;
    {
        let mut f = pb.build_function(consumer, "pbzip2.cpp");
        noise.warm_failure_thread(&mut f); // the consumer is the failure thread
        f.at(b1_line);
        let m1 = f.load(mutex_ptr as i64, 0); // B1
        f.lock(m1);
        f.at(b1_line + 2);
        f.unlock(m1); // B2
        f.yield_now();
        f.at(b3_line);
        let m3 = f.load(mutex_ptr as i64, 0); // B3 — the FPE read
        f.at(b3_line + 1);
        noise.emit(&mut f, 1, 4);
        f.at(fault_line);
        f.lock(m3); // F: crashes when the mutex was destroyed
        f.unlock(m3);
        f.ret(None);
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "pbzip2.cpp");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        noise.warm_interloper(&mut f);
        let m = f.alloc(1);
        f.store(mutex_ptr as i64, 0, m);
        let t = f.spawn(consumer, &[]);
        f.yield_now();
        f.yield_now();
        f.at(1043);
        // A: main "destroys" the mutex without waiting for the consumer.
        f.store(mutex_ptr as i64, 0, 0);
        f.join(t);
        f.output(1);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let cpp = program.function(consumer).file;
    let b3_loc = SourceLoc::new(cpp, b3_line);
    let fault_loc = SourceLoc::new(cpp, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "pbzip3",
            app: "PBZIP",
            version: "0.9.4",
            language: Language::Cpp,
            root_cause: RootCauseKind::OrderViolation,
            symptom: Symptom::Crash,
            bug_class: BugClass::Concurrency,
            description: "Fig. 6: main destroys the FIFO mutex before the consumer's last \
                          lock; the consumer crashes",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Found(3)),
                lcrlog_conf2: Some(PaperMark::Found(7)),
                lcra: Some(PaperMark::Found(1)),
                kloc: 2.1,
                log_points: 163,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "consumer".into(),
                line: fault_line,
            },
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(cpp, b3_line)],
            failure_site_loc: fault_loc,
            fpe: Some(FpeSpec {
                loc: b3_loc,
                conf2_state: Some(CoherenceState::Invalid),
                conf1_state: Some(CoherenceState::Invalid),
                conf1_is_absence: false,
            }),
            fault_locs: vec![(consumer, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![])],
            passing: vec![Workload::new(vec![])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn cherokee_is_a_miss_row() {
        let b = cherokee();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), None);
        assert_eq!(lcrlog_position(&b, false), None);
        assert_eq!(lcra_rank(&b), None);
    }

    #[test]
    fn pbzip3_matches_table7_row() {
        let b = pbzip3();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), Some(3));
        assert_eq!(lcrlog_position(&b, false), Some(7));
        assert_eq!(lcra_rank(&b), Some(1));
    }
}
