//! Concurrency-bug benchmarks from the Mozilla JavaScript engine
//! (Table 4: Mozilla-JS 1–3). Mozilla-JS3 is the paper's Fig. 4.

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, FpeSpec, GroundTruth, Language, PaperExpectations,
    PaperMark, RootCauseKind, Symptom, Workloads,
};
use crate::conc::NoiseGlobals;
use crate::util::pad_checks;
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::events::CoherenceState;
use stm_machine::ir::{BinOp, SourceLoc};

/// Mozilla-JS3 (the paper's Fig. 4): a WWR atomicity violation on
/// `st->table`. `InitState` allocates the table (`a1`) and checks it
/// (`a2`); `FreeState` occasionally nulls it in between (`a3`), and the
/// check path reports "out of memory". The FPE is the invalid state the
/// check read observes.
pub fn mozilla_js3() -> Benchmark {
    let mut pb = ProgramBuilder::new("mozilla-js3");
    let noise = NoiseGlobals::install(&mut pb);
    let st_table = pb.global("st_table", 1);
    let main = pb.declare_function("main");
    let free_state = pb.declare_function("FreeState");

    let a1_line = 1500;
    let a2_line = 1503;
    let fail_line = 1505;
    {
        let mut f = pb.build_function(free_state, "js/src/jsgc.c");
        noise.warm_interloper(&mut f);
        f.yield_now();
        f.at(2300);
        // a3: Destroy(st->table); st->table = NULL;
        f.store(st_table as i64, 0, 0);
        f.ret(None);
        f.finish();
    }
    let site;
    {
        let mut f = pb.build_function(main, "js/src/jsapi.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let err = f.new_block();
        let ok = f.new_block();
        noise.warm_failure_thread(&mut f);
        let table = f.alloc(4);
        f.store(table, 0, 1);
        f.at(a1_line);
        f.store(st_table as i64, 0, table); // a1: st->table = New(st)
        let t = f.spawn(free_state, &[]);
        f.yield_now();
        f.yield_now();
        f.at(a2_line);
        let v = f.load(st_table as i64, 0); // a2: if (!st->table) — the FPE
        f.at(a2_line + 1);
        noise.emit(&mut f, 1, 8);
        let bad = f.bin(BinOp::Eq, v, 0);
        f.at(a2_line + 2);
        f.br(bad, err, ok);
        f.set_block(err);
        f.at(fail_line);
        site = f.log_error("out of memory");
        f.join(t);
        f.exit(1);
        f.ret(None);
        f.set_block(ok);
        f.join(t);
        f.output(1);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let jsapi_c = program.function(main).file;
    let a2_loc = SourceLoc::new(jsapi_c, a2_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "mozilla-js3",
            app: "Mozilla-JS",
            version: "1.5",
            language: Language::Cpp,
            root_cause: RootCauseKind::AtomicityViolation,
            symptom: Symptom::ErrorMessage,
            bug_class: BugClass::Concurrency,
            description: "Fig. 4: st->table nulled by FreeState between InitState's \
                          assignment and check; the check reports out-of-memory",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Found(3)),
                lcrlog_conf2: Some(PaperMark::Found(11)),
                lcra: Some(PaperMark::Found(1)),
                kloc: 107.0,
                log_points: 343,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(jsapi_c, a1_line)],
            failure_site_loc: SourceLoc::new(jsapi_c, fail_line),
            fpe: Some(FpeSpec {
                loc: a2_loc,
                conf2_state: Some(CoherenceState::Invalid),
                conf1_state: Some(CoherenceState::Invalid),
                conf1_is_absence: false,
            }),
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![])],
            passing: vec![Workload::new(vec![])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

/// Mozilla-JS1: an RWR atomicity violation on a GC thing pointer — the
/// classic `if (ptr) use(ptr)` race of Table 3. The use-read observes the
/// invalid state and the engine crashes dereferencing NULL.
pub fn mozilla_js1() -> Benchmark {
    let mut pb = ProgramBuilder::new("mozilla-js1");
    let noise = NoiseGlobals::install(&mut pb);
    let gcthing = pb.global("gcthing", 1);
    let main = pb.declare_function("main");
    let collector = pb.declare_function("js_GC");

    let a1_line = 2203;
    let a2_line = 2207;
    let fault_line = 2212;
    {
        let mut f = pb.build_function(collector, "js/src/jsgc.c");
        noise.warm_interloper(&mut f);
        f.yield_now();
        f.at(900);
        f.store(gcthing as i64, 0, 0); // a3: the collector frees the thing
        f.ret(None);
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "js/src/jsinterp.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let use_blk = f.new_block();
        let skip_blk = f.new_block();
        noise.warm_failure_thread(&mut f);
        let obj = f.alloc(4);
        f.store(obj, 0, 11);
        f.at(2198);
        f.store(gcthing as i64, 0, obj);
        let t = f.spawn(collector, &[]);
        f.yield_now();
        f.at(a1_line);
        let v1 = f.load(gcthing as i64, 0); // a1: if (ptr)
        f.at(a1_line + 1);
        f.br(v1, use_blk, skip_blk);
        f.set_block(use_blk);
        f.at(a2_line);
        let v2 = f.load(gcthing as i64, 0); // a2: puts(ptr) — the FPE
        f.at(a2_line + 1);
        noise.emit(&mut f, 1, 5);
        f.at(fault_line);
        let field = f.load(v2, 0); // F: crashes when v2 is NULL
        f.join(t);
        f.output(field);
        f.ret(None);
        f.set_block(skip_blk);
        f.join(t);
        f.output(0);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let interp_c = program.function(main).file;
    let a2_loc = SourceLoc::new(interp_c, a2_line);
    let fault_loc = SourceLoc::new(interp_c, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "mozilla-js1",
            app: "Mozilla-JS",
            version: "1.5",
            language: Language::Cpp,
            root_cause: RootCauseKind::AtomicityViolation,
            symptom: Symptom::Crash,
            bug_class: BugClass::Concurrency,
            description: "GC nulls a thing pointer between the check and the use; the use \
                          dereferences NULL",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Found(3)),
                lcrlog_conf2: Some(PaperMark::Found(8)),
                lcra: Some(PaperMark::Found(1)),
                kloc: 107.0,
                log_points: 343,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "main".into(),
                line: fault_line,
            },
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(interp_c, a1_line)],
            failure_site_loc: fault_loc,
            fpe: Some(FpeSpec {
                loc: a2_loc,
                conf2_state: Some(CoherenceState::Invalid),
                conf1_state: Some(CoherenceState::Invalid),
                conf1_is_absence: false,
            }),
            fault_locs: vec![(main, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![])],
            passing: vec![Workload::new(vec![])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

/// Mozilla-JS2: an atomicity violation that silently corrupts a counter —
/// the program completes with wrong output and never logs near the root
/// cause, so LCRLOG and LCRA have nothing to profile (the `-` row).
pub fn mozilla_js2() -> Benchmark {
    let mut pb = ProgramBuilder::new("mozilla-js2");
    let noise = NoiseGlobals::install(&mut pb);
    let prop_count = pb.global("prop_count", 1);
    let main = pb.declare_function("main");
    let worker = pb.declare_function("js_worker");

    const N: i64 = 4;
    {
        let mut f = pb.build_function(worker, "js/src/jsobj.c");
        noise.warm_interloper(&mut f);
        // One unsynchronized read-modify-write racing against main's loop.
        f.at(310);
        let v = f.load(prop_count as i64, 0);
        let v1 = f.bin(BinOp::Add, v, 1);
        f.at(312);
        f.store(prop_count as i64, 0, v1);
        f.ret(None);
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "js/src/jsobj.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        noise.warm_failure_thread(&mut f);
        let t = f.spawn(worker, &[]);
        for _ in 0..N {
            f.at(290);
            let v = f.load(prop_count as i64, 0);
            let v1 = f.bin(BinOp::Add, v, 1);
            f.at(292);
            f.store(prop_count as i64, 0, v1);
        }
        f.join(t);
        let total = f.load(prop_count as i64, 0);
        f.output(total);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let jsobj_c = program.function(main).file;
    Benchmark {
        info: BenchmarkInfo {
            id: "mozilla-js2",
            app: "Mozilla-JS",
            version: "1.5",
            language: Language::Cpp,
            root_cause: RootCauseKind::AtomicityViolation,
            symptom: Symptom::WrongOutput,
            bug_class: BugClass::Concurrency,
            description: "lost property-count updates; silent corruption with no logging \
                          near the root cause",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Miss),
                lcrlog_conf2: Some(PaperMark::Miss),
                lcra: Some(PaperMark::Miss),
                kloc: 107.0,
                log_points: 343,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::WrongOutput,
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(jsobj_c, 290)],
            failure_site_loc: SourceLoc::UNKNOWN,
            fpe: None, // no failure-predicting event is ever profiled
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![]).with_expected(vec![N + 1])],
            passing: vec![Workload::new(vec![]).with_expected(vec![N + 1])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn mozilla_js3_matches_table7_row() {
        let b = mozilla_js3();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), Some(3)); // Conf1
        assert_eq!(lcrlog_position(&b, false), Some(11)); // Conf2
        assert_eq!(lcra_rank(&b), Some(1));
    }

    #[test]
    fn mozilla_js1_matches_table7_row() {
        let b = mozilla_js1();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), Some(3));
        assert_eq!(lcrlog_position(&b, false), Some(8));
        assert_eq!(lcra_rank(&b), Some(1));
    }

    #[test]
    fn mozilla_js2_is_a_miss_row() {
        let b = mozilla_js2();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), None);
        assert_eq!(lcrlog_position(&b, false), None);
        assert_eq!(lcra_rank(&b), None);
    }
}
