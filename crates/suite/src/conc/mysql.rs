//! Concurrency-bug benchmarks from MySQL (Table 4: MySQL 1–2).

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, FpeSpec, GroundTruth, Language, PaperExpectations,
    PaperMark, RootCauseKind, Symptom, Workloads,
};
use crate::conc::NoiseGlobals;
use crate::util::pad_checks;
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::events::CoherenceState;
use stm_machine::ir::{BinOp, SourceLoc};

/// MySQL 1 (4.0.18): a WRW atomicity violation on the binlog state flag —
/// the rotation thread writes CLOSED then OPEN (`a1`/`a2`); a query thread
/// reading between the two (`a3`) sees CLOSED and crashes on the torn-down
/// handle. Per Table 3, the failure-predicting event lives in the *other*
/// thread, so the failure thread's LCR never contains it: the `-` row.
pub fn mysql1() -> Benchmark {
    let mut pb = ProgramBuilder::new("mysql1");
    let noise = NoiseGlobals::install(&mut pb);
    let log_state = pb.global("binlog_open", 1);
    let binlog = pb.global("binlog_handle", 1);
    let main = pb.declare_function("main");
    let rotate = pb.declare_function("rotate_binlog");

    let a3_line = 3111;
    let fault_line = 3115;
    {
        let mut f = pb.build_function(rotate, "sql/log.cc");
        noise.warm_interloper(&mut f);
        f.yield_now();
        f.at(280);
        f.store(log_state as i64, 0, 0); // a1: log = CLOSED
        f.yield_now();
        f.yield_now();
        f.at(284);
        f.store(log_state as i64, 0, 1); // a2: log = OPEN
        f.ret(None);
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "sql/sql_parse.cc");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let write_blk = f.new_block();
        let closed_blk = f.new_block();
        noise.warm_failure_thread(&mut f);
        let h = f.alloc(4);
        f.store(h, 0, 55);
        f.store(binlog as i64, 0, h);
        f.store(log_state as i64, 0, 1);
        let t = f.spawn(rotate, &[]);
        f.yield_now();
        f.at(a3_line);
        let open = f.load(log_state as i64, 0); // a3: if (log != OPEN)
        f.at(a3_line + 1);
        f.br(open, write_blk, closed_blk);
        f.set_block(closed_blk);
        // The query path takes the "log closed" branch and touches the
        // torn-down handle.
        f.at(fault_line);
        let _bad = f.load(0i64, 0); // F: crash on the stale handle
        f.join(t);
        f.ret(None);
        f.set_block(write_blk);
        let hh = f.load(binlog as i64, 0);
        let v = f.load(hh, 0);
        f.join(t);
        f.output(v);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let parse_cc = program.function(main).file;
    let fault_loc = SourceLoc::new(parse_cc, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "mysql1",
            app: "MySQL",
            version: "4.0.18",
            language: Language::Cpp,
            root_cause: RootCauseKind::AtomicityViolation,
            symptom: Symptom::Crash,
            bug_class: BugClass::Concurrency,
            description: "WRW: binlog flag read between CLOSED and OPEN writes; the \
                          failure-predicting event is in the rotation thread, not the \
                          crashing thread",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Miss),
                lcrlog_conf2: Some(PaperMark::Miss),
                lcra: Some(PaperMark::Miss),
                kloc: 658.0,
                log_points: 1585,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "main".into(),
                line: fault_line,
            },
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(parse_cc, a3_line)],
            failure_site_loc: fault_loc,
            // The a3 read observes Invalid in success runs too (the
            // rotation thread's writes always invalidate the line), so no
            // recordable event in the failure thread predicts the failure.
            fpe: None,
            fault_locs: vec![(main, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![])],
            passing: vec![Workload::new(vec![])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

/// MySQL 2 (4.0.12): an RWW atomicity violation on the binlog byte
/// counter — two sessions interleave `tmp = cnt + n; cnt = tmp`, one
/// update is lost, and the accounting check reports the mismatch. The FPE
/// is the invalid state the clobbering *write* observes (Table 3, RWW).
/// Table 7 row `✓3 / ✓9 / ✓1`.
pub fn mysql2() -> Benchmark {
    let mut pb = ProgramBuilder::new("mysql2");
    let noise = NoiseGlobals::install(&mut pb);
    let cnt = pb.global("binlog_bytes", 1);
    let main = pb.declare_function("main");
    let session = pb.declare_function("session_commit");

    let a1_line = 1210;
    let a2_line = 1213;
    let fail_line = 1220;
    {
        let mut f = pb.build_function(session, "sql/log.cc");
        noise.warm_interloper(&mut f);
        f.at(905);
        let v = f.load(cnt as i64, 0);
        let v1 = f.bin(BinOp::Add, v, 200);
        f.at(907);
        f.store(cnt as i64, 0, v1); // the interleaving RMW
        f.ret(None);
        f.finish();
    }
    let site;
    {
        let mut f = pb.build_function(main, "sql/log.cc");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let err = f.new_block();
        let ok = f.new_block();
        noise.warm_failure_thread(&mut f);
        f.store(cnt as i64, 0, 0);
        let t = f.spawn(session, &[]);
        f.yield_now();
        f.at(a1_line);
        let v = f.load(cnt as i64, 0); // a1: tmp = cnt + deposit1
        f.yield_now();
        let v1 = f.bin(BinOp::Add, v, 100);
        f.at(a2_line);
        f.store(cnt as i64, 0, v1); // a2: cnt = tmp — the FPE (invalid write)
        f.at(a2_line + 1);
        noise.emit(&mut f, 1, 6);
        f.join(t);
        f.at(fail_line - 3);
        let total = f.load(cnt as i64, 0);
        // The check fires when the *session's* confirmed deposit is
        // missing — i.e. when this thread's write clobbered it (the RWW
        // interleaving of Table 3, whose FPE is this thread's a2 write).
        let bad = f.bin(BinOp::Eq, total, 100);
        f.at(fail_line - 1);
        f.br(bad, err, ok);
        f.set_block(err);
        f.at(fail_line);
        site = f.log_error("binlog accounting mismatch");
        f.exit(1);
        f.ret(None);
        f.set_block(ok);
        f.output(total);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let log_cc = program.function(main).file;
    let a2_loc = SourceLoc::new(log_cc, a2_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "mysql2",
            app: "MySQL",
            version: "4.0.12",
            language: Language::Cpp,
            root_cause: RootCauseKind::AtomicityViolation,
            symptom: Symptom::WrongOutput,
            bug_class: BugClass::Concurrency,
            description: "RWW: concurrent binlog byte-count updates lose a deposit; the \
                          accounting check reports it",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Found(3)),
                lcrlog_conf2: Some(PaperMark::Found(9)),
                lcra: Some(PaperMark::Found(1)),
                kloc: 639.0,
                log_points: 1523,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(log_cc, a1_line)],
            failure_site_loc: SourceLoc::new(log_cc, fail_line),
            fpe: Some(FpeSpec {
                loc: a2_loc,
                conf2_state: Some(CoherenceState::Invalid),
                conf1_state: Some(CoherenceState::Invalid),
                conf1_is_absence: false,
            }),
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![]).with_expected(vec![300])],
            passing: vec![Workload::new(vec![]).with_expected(vec![300])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn mysql1_is_a_miss_row() {
        let b = mysql1();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), None);
        assert_eq!(lcrlog_position(&b, false), None);
        assert_eq!(lcra_rank(&b), None);
    }

    #[test]
    fn mysql2_matches_table7_row() {
        let b = mysql2();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), Some(3));
        assert_eq!(lcrlog_position(&b, false), Some(9));
        assert_eq!(lcra_rank(&b), Some(1));
    }
}
