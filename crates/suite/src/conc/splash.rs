//! Concurrency-bug benchmarks from SPLASH-2: FFT (the paper's Fig. 5) and
//! LU — read-too-early order violations with wrong-output symptoms caught
//! by the kernels' verification phase.
//!
//! Under the space-consuming Conf2 the FPE is the *exclusive* state the
//! too-early read observes; under the space-saving Conf1 the signal is the
//! **absence** of the shared-state read that every success run records
//! (§4.2.2) — Table 7 reports the position of that success-run entry.

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, FpeSpec, GroundTruth, Language, PaperExpectations,
    PaperMark, RootCauseKind, Symptom, Workloads,
};
use crate::conc::NoiseGlobals;
use crate::util::pad_checks;
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::events::CoherenceState;
use stm_machine::ir::{BinOp, SourceLoc};

#[allow(clippy::too_many_arguments)]
fn splash_kernel(
    id: &'static str,
    app: &'static str,
    file: &'static str,
    kloc: f64,
    log_points: u32,
    b1_line: u32,
    b2_line: u32,
    fail_line: u32,
    timer_line: u32,
) -> Benchmark {
    let mut pb = ProgramBuilder::new(id);
    let noise = NoiseGlobals::install(&mut pb);
    let warmer = noise.build_warmer(&mut pb);
    let gend = pb.global("Gend", 1);
    let main = pb.declare_function("main");
    let timer = pb.declare_function("timer_thread");

    {
        let mut f = pb.build_function(timer, file);
        noise.warm_interloper(&mut f);
        f.yield_now();
        f.at(timer_line);
        f.store(gend as i64, 0, 123); // A: Gend = time()
        f.ret(None);
        f.finish();
    }
    let site;
    {
        let mut f = pb.build_function(main, file);
        // Startup preamble, as in every real main.
        pad_checks(&mut f, 12, 2, 9000i64);
        let err = f.new_block();
        let ok = f.new_block();
        noise.warm_failure_thread(&mut f);
        // Deterministically share the config line before racing.
        let w = f.spawn(warmer, &[]);
        f.join(w);
        let t = f.spawn(timer, &[]);
        f.yield_now();
        // The missing-barrier bug: Gend is read without waiting for the
        // timer thread.
        f.at(b1_line);
        let v1 = f.load(gend as i64, 0); // B1: printf("End at %f", Gend)
        f.at(b2_line);
        let v2 = f.load(gend as i64, 0); // B2: the FPE read
        f.at(b2_line + 1);
        noise.emit(&mut f, 2, 3);
        let elapsed = f.bin(BinOp::Sub, v2, v1);
        let _ = elapsed;
        let bad = f.bin(BinOp::Eq, v2, 0);
        f.at(fail_line - 1);
        f.br(bad, err, ok);
        f.set_block(err);
        f.at(fail_line);
        site = f.log_error("verification failed: uninitialized timing value");
        f.join(t);
        f.exit(1);
        f.ret(None);
        f.set_block(ok);
        f.join(t);
        // Both timing reads are observable: a run where the timer fired
        // *between* them prints a garbage elapsed time and is neither a
        // clean success nor the diagnosed failure.
        f.output(v1);
        f.output(v2);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let file_id = program.function(main).file;
    let b2_loc = SourceLoc::new(file_id, b2_line);
    Benchmark {
        info: BenchmarkInfo {
            id,
            app,
            version: "2.0",
            language: Language::C,
            root_cause: RootCauseKind::OrderViolation,
            symptom: Symptom::WrongOutput,
            bug_class: BugClass::Concurrency,
            description: "Fig. 5: the timing value is read before the timer thread \
                          initializes it (missing barrier)",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Found(4)),
                lcrlog_conf2: Some(PaperMark::Found(6)),
                lcra: Some(PaperMark::Found(1)),
                kloc,
                log_points,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::ErrorLogAt(site),
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(file_id, b1_line)],
            failure_site_loc: SourceLoc::new(file_id, fail_line),
            fpe: Some(FpeSpec {
                loc: b2_loc,
                conf2_state: Some(CoherenceState::Exclusive),
                conf1_state: Some(CoherenceState::Shared),
                conf1_is_absence: true,
            }),
            fault_locs: vec![],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![]).with_expected(vec![123, 123])],
            passing: vec![Workload::new(vec![]).with_expected(vec![123, 123])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

/// FFT (SPLASH-2): Table 7 row `✓4 / ✓6 / ✓1`.
pub fn fft() -> Benchmark {
    splash_kernel("fft", "FFT", "fft.c", 1.3, 59, 770, 772, 780, 50)
}

/// LU (SPLASH-2): Table 7 row `✓4 / ✓6 / ✓1`.
pub fn lu() -> Benchmark {
    splash_kernel("lu", "LU", "lu.c", 1.2, 45, 612, 614, 630, 44)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn fft_matches_table7_row() {
        let b = fft();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), Some(4)); // absence entry, success run
        assert_eq!(lcrlog_position(&b, false), Some(6));
        assert_eq!(lcra_rank(&b), Some(1));
    }

    #[test]
    fn fft_conf1_top_predictor_is_an_absence() {
        // §4.2.2: under the space-saving configuration, failures correlate
        // with B2 *not* observing the shared state.
        use stm_core::engine::{DiagnosisSession, ProfileKind};
        use stm_core::runner::Runner;
        use stm_core::transform::instrument;
        use stm_machine::events::LcrConfig;
        use stm_machine::interp::Machine;

        let b = fft();
        let opts = crate::eval::reactive_options(&b, false, Some(LcrConfig::SPACE_SAVING));
        let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
        let (failing, passing) = crate::eval::expand_workloads(&b, &runner);
        let d = DiagnosisSession::from_runner(&runner)
            .failure(b.truth.spec.clone())
            .failing(failing)
            .passing(passing)
            .profile_kind(ProfileKind::Lcr)
            .collect()
            .expect("collection")
            .lcra();
        let fpe = b.truth.fpe.unwrap();
        let top = d.top().expect("a predictor");
        assert_eq!(top.event.loc, fpe.loc);
        assert_eq!(top.event.state, CoherenceState::Shared);
        assert_eq!(top.polarity, stm_core::ranking::Polarity::Absent);
    }

    #[test]
    fn lu_matches_table7_row() {
        let b = lu();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), Some(4));
        assert_eq!(lcrlog_position(&b, false), Some(6));
        assert_eq!(lcra_rank(&b), Some(1));
    }
}
