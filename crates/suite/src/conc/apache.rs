//! Concurrency-bug benchmarks from Apache httpd (Table 4: Apache 4–5).

use crate::benchmark::{
    Benchmark, BenchmarkInfo, BugClass, FpeSpec, GroundTruth, Language, PaperExpectations,
    PaperMark, RootCauseKind, Symptom, Workloads,
};
use crate::conc::NoiseGlobals;
use crate::util::pad_checks;
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::events::CoherenceState;
use stm_machine::ir::SourceLoc;

/// Apache 4 (httpd 2.0.50): an RWR atomicity violation — the connection
/// object is checked, then a cleanup thread nulls it, then the worker's
/// use-read observes the invalid state and the worker crashes.
/// Table 7 row `✓3 / ✓5 / ✓1`.
pub fn apache4() -> Benchmark {
    let mut pb = ProgramBuilder::new("apache4");
    let noise = NoiseGlobals::install(&mut pb);
    let conn = pb.global("current_conn", 1);
    let main = pb.declare_function("main");
    let cleaner = pb.declare_function("ap_cleanup_thread");

    let a1_line = 430;
    let a2_line = 434;
    let fault_line = 440;
    {
        let mut f = pb.build_function(cleaner, "server/connection.c");
        noise.warm_interloper(&mut f);
        f.yield_now();
        f.at(118);
        f.store(conn as i64, 0, 0); // a3: pool cleanup nulls the connection
        f.ret(None);
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "modules/generators/mod_status.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        let use_blk = f.new_block();
        let idle_blk = f.new_block();
        noise.warm_failure_thread(&mut f);
        let c = f.alloc(4);
        f.store(c, 0, 80);
        f.at(426);
        f.store(conn as i64, 0, c);
        let t = f.spawn(cleaner, &[]);
        f.yield_now();
        f.at(a1_line);
        let v1 = f.load(conn as i64, 0); // a1: if (conn)
        f.at(a1_line + 1);
        f.br(v1, use_blk, idle_blk);
        f.set_block(use_blk);
        f.at(a2_line);
        let v2 = f.load(conn as i64, 0); // a2: report conn->port — the FPE
        f.at(a2_line + 1);
        noise.emit(&mut f, 1, 2);
        f.at(fault_line);
        let port = f.load(v2, 0); // F: NULL dereference
        f.join(t);
        f.output(port);
        f.ret(None);
        f.set_block(idle_blk);
        f.join(t);
        f.output(0);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let status_c = program.function(main).file;
    let a2_loc = SourceLoc::new(status_c, a2_line);
    let fault_loc = SourceLoc::new(status_c, fault_line);
    Benchmark {
        info: BenchmarkInfo {
            id: "apache4",
            app: "Apache",
            version: "2.0.50",
            language: Language::C,
            root_cause: RootCauseKind::AtomicityViolation,
            symptom: Symptom::Crash,
            bug_class: BugClass::Concurrency,
            description: "connection object nulled by pool cleanup between mod_status's \
                          check and use",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Found(3)),
                lcrlog_conf2: Some(PaperMark::Found(5)),
                lcra: Some(PaperMark::Found(1)),
                kloc: 263.0,
                log_points: 2412,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::CrashAt {
                func: "main".into(),
                line: fault_line,
            },
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(status_c, a1_line)],
            failure_site_loc: fault_loc,
            fpe: Some(FpeSpec {
                loc: a2_loc,
                conf2_state: Some(CoherenceState::Invalid),
                conf1_state: Some(CoherenceState::Invalid),
                conf1_is_absence: false,
            }),
            fault_locs: vec![(main, fault_loc)],
        },
        workloads: Workloads {
            failing: vec![Workload::new(vec![])],
            passing: vec![Workload::new(vec![])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

/// Apache 5 (httpd 2.2.9): an atomicity violation on the error-log write
/// index — two threads interleave their reserve/write/advance sequences
/// and entries overwrite each other. The corruption is silent (the log
/// itself is the victim), so LCRLOG/LCRA have nothing to profile: the
/// `-` row of Table 7.
pub fn apache5() -> Benchmark {
    let mut pb = ProgramBuilder::new("apache5");
    let noise = NoiseGlobals::install(&mut pb);
    let log_len = pb.global("log_len", 1);
    let log_buf = pb.global("log_buf", 8);
    let main = pb.declare_function("main");
    let worker = pb.declare_function("worker_log");

    {
        let mut f = pb.build_function(worker, "server/log.c");
        noise.warm_interloper(&mut f);
        f.at(640);
        let idx = f.load(log_len as i64, 0); // reserve
        f.yield_now();
        let off = f.bin(stm_machine::ir::BinOp::Mul, idx, 8);
        let slot = f.bin(stm_machine::ir::BinOp::Add, off, log_buf as i64);
        f.at(642);
        f.store(slot, 0, 2); // write entry
        let idx1 = f.bin(stm_machine::ir::BinOp::Add, idx, 1);
        f.at(643);
        f.store(log_len as i64, 0, idx1); // advance
        f.ret(None);
        f.finish();
    }
    {
        let mut f = pb.build_function(main, "server/log.c");
        // Startup preamble: argument parsing, environment and config
        // checks — the control-flow history every real main accumulates
        // before any interesting work.
        pad_checks(&mut f, 12, 2, 9000i64);
        noise.warm_failure_thread(&mut f);
        let t = f.spawn(worker, &[]);
        f.at(620);
        let idx = f.load(log_len as i64, 0);
        f.yield_now();
        let off = f.bin(stm_machine::ir::BinOp::Mul, idx, 8);
        let slot = f.bin(stm_machine::ir::BinOp::Add, off, log_buf as i64);
        f.at(622);
        f.store(slot, 0, 1);
        let idx1 = f.bin(stm_machine::ir::BinOp::Add, idx, 1);
        f.at(623);
        f.store(log_len as i64, 0, idx1);
        f.join(t);
        // The log content is the program's observable output.
        let e0 = f.load(log_buf as i64, 0);
        let e1 = f.load(log_buf as i64, 8);
        let sum = f.bin(stm_machine::ir::BinOp::Add, e0, e1);
        f.output(sum);
        f.ret(None);
        f.finish();
    }
    let program = pb.finish(main);
    let log_c = program.function(main).file;
    Benchmark {
        info: BenchmarkInfo {
            id: "apache5",
            app: "Apache",
            version: "2.2.9",
            language: Language::C,
            root_cause: RootCauseKind::AtomicityViolation,
            symptom: Symptom::CorruptedLog,
            bug_class: BugClass::Concurrency,
            description: "racy reserve/write/advance on the error log index silently \
                          overwrites entries",
            paper: PaperExpectations {
                lcrlog_conf1: Some(PaperMark::Miss),
                lcrlog_conf2: Some(PaperMark::Miss),
                lcra: Some(PaperMark::Miss),
                kloc: 333.0,
                log_points: 2515,
                ..PaperExpectations::default()
            },
        },
        truth: GroundTruth {
            spec: FailureSpec::WrongOutput,
            root_cause_branch: None,
            related_branch: None,
            patch_locs: vec![SourceLoc::new(log_c, 620)],
            failure_site_loc: SourceLoc::UNKNOWN,
            fpe: None,
            fault_locs: vec![],
        },
        workloads: Workloads {
            // Both entries present ⇒ 1 + 2 = 3.
            failing: vec![Workload::new(vec![]).with_expected(vec![3])],
            passing: vec![Workload::new(vec![]).with_expected(vec![3])],
            perf: Workload::new(vec![]),
        },
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_test_support::*;

    #[test]
    fn apache4_matches_table7_row() {
        let b = apache4();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), Some(3));
        assert_eq!(lcrlog_position(&b, false), Some(5));
        assert_eq!(lcra_rank(&b), Some(1));
    }

    #[test]
    fn apache5_is_a_miss_row() {
        let b = apache5();
        assert_workloads_classify(&b);
        assert_eq!(lcrlog_position(&b, true), None);
        assert_eq!(lcrlog_position(&b, false), None);
        assert_eq!(lcra_rank(&b), None);
    }
}
