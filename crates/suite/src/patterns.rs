//! The six concurrency-bug interleaving patterns of the paper's Table 3,
//! as minimal runnable programs with their failure-predicting events
//! (FPEs). These are the didactic core of §4.2.2: for every common bug
//! class, which coherence state does the failure thread's access observe,
//! and does the FPE live in the failure thread at all?

use crate::conc::NoiseGlobals;
use stm_core::runner::{FailureSpec, Workload};
use stm_machine::builder::ProgramBuilder;
use stm_machine::ir::{BinOp, Program, SourceLoc};

/// One Table 3 row: the pattern's program plus its FPE expectation.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Row name (`RWR`, `RWW`, `WWR`, `WRW`, `read-too-early`,
    /// `read-too-late`).
    pub name: &'static str,
    /// Bug class per Table 3.
    pub bug_type: &'static str,
    /// The FPE the table predicts (state letter at the `a2`/`B` access),
    /// or `None` for WRW, where the event is not in the failure thread.
    pub fpe: Option<(&'static str, SourceLoc)>,
    /// Does the FPE (almost) always exist in the failure thread?
    pub fpe_in_failure_thread: &'static str,
    /// The program.
    pub program: Program,
    /// The failure specification.
    pub spec: FailureSpec,
    /// A base workload (scan seeds for failing/passing interleavings).
    pub base: Workload,
}

fn two_thread(
    name: &'static str,
    build_interloper: impl FnOnce(&mut ProgramBuilder, u64) -> stm_machine::ids::FuncId,
    a2_is_store: bool,
) -> (Program, SourceLoc, stm_machine::ids::LogSiteId) {
    let mut pb = ProgramBuilder::new(name);
    let noise = NoiseGlobals::install(&mut pb);
    let shared = pb.global("ptr", 1);
    let interloper = build_interloper(&mut pb, shared);
    let main = pb.declare_function("main");
    let site;
    let a2_line = 50;
    {
        let mut f = pb.build_function(main, "pattern.c");
        let err = f.new_block();
        let ok = f.new_block();
        noise.warm_failure_thread(&mut f);
        let obj = f.alloc(2);
        f.store(obj, 0, 5);
        f.at(40);
        f.store(shared as i64, 0, obj); // a1-ish setup
        let t = f.spawn(interloper, &[]);
        f.yield_now();
        f.at(45);
        let v1 = f.load(shared as i64, 0); // a1 (read patterns)
        f.yield_now();
        f.at(a2_line);
        let v2 = if a2_is_store {
            let sum = f.bin(BinOp::Add, v1, 1);
            f.store(shared as i64, 0, sum); // a2 = write
            sum
        } else {
            f.load(shared as i64, 0) // a2 = read
        };
        let bad = f.bin(BinOp::Eq, v2, 0);
        f.at(52);
        f.br(bad, err, ok);
        f.set_block(err);
        f.at(54);
        site = f.log_error("pattern failure");
        f.join(t);
        f.exit(1);
        f.ret(None);
        f.set_block(ok);
        f.join(t);
        f.output(1);
        f.ret(None);
        f.finish();
    }
    let p = pb.finish(main);
    let file = p.function(main).file;
    (p, SourceLoc::new(file, a2_line), site)
}

/// Builds all six Table 3 patterns.
pub fn table3_patterns() -> Vec<Pattern> {
    let nuller = |pb: &mut ProgramBuilder, shared: u64| {
        let f_id = pb.declare_function("interloper");
        let mut f = pb.build_function(f_id, "interloper.c");
        f.yield_now();
        f.store(shared as i64, 0, 0); // a3
        f.ret(None);
        f.finish();
        f_id
    };
    let (p_rwr, a2, site) = two_thread("rwr", nuller, false);
    let rwr = Pattern {
        name: "RWR",
        bug_type: "Atomicity Violation",
        fpe: Some(("I", a2)),
        fpe_in_failure_thread: "almost always",
        program: p_rwr,
        spec: FailureSpec::ErrorLogAt(site),
        base: Workload::new(vec![]),
    };

    // RWW is Table 3's bank-balance example — exactly the MySQL-2 shape:
    // `tmp = cnt + deposit; cnt = tmp` clobbering the other session's
    // deposit, with the FPE at the clobbering write.
    let mysql2 = crate::conc::mysql::mysql2();
    let fpe2 = mysql2.truth.fpe.unwrap();
    let rww = Pattern {
        name: "RWW",
        bug_type: "Atomicity Violation",
        fpe: Some(("I", fpe2.loc)),
        fpe_in_failure_thread: "often",
        program: mysql2.program,
        spec: mysql2.truth.spec,
        base: Workload::new(vec![]),
    };

    let (p_wwr, a2, site) = two_thread("wwr", nuller, false);
    let wwr = Pattern {
        name: "WWR",
        bug_type: "Atomicity Violation",
        fpe: Some(("I", a2)),
        fpe_in_failure_thread: "almost always (Fig. 4)",
        program: p_wwr,
        spec: FailureSpec::ErrorLogAt(site),
        base: Workload::new(vec![]),
    };

    // WRW: the failure-predicting event is in the *other* thread; reuse the
    // mysql1 shape, where the crash thread's read observes Invalid in
    // success runs too.
    let mysql1 = crate::conc::mysql::mysql1();
    let wrw = Pattern {
        name: "WRW",
        bug_type: "Atomicity Violation",
        fpe: None,
        fpe_in_failure_thread: "sometimes (not here)",
        program: mysql1.program,
        spec: mysql1.truth.spec,
        base: Workload::new(vec![]),
    };

    let fft = crate::conc::splash::fft();
    let fpe = fft.truth.fpe.unwrap();
    let early = Pattern {
        name: "read-too-early",
        bug_type: "Order Violation",
        fpe: Some(("E", fpe.loc)),
        fpe_in_failure_thread: "often (Fig. 5)",
        program: fft.program,
        spec: fft.truth.spec,
        base: fft.workloads.failing[0].clone(),
    };

    let pbzip3 = crate::conc::misc::pbzip3();
    let fpe = pbzip3.truth.fpe.unwrap();
    let late = Pattern {
        name: "read-too-late",
        bug_type: "Order Violation",
        fpe: Some(("I", fpe.loc)),
        fpe_in_failure_thread: "often (Fig. 6)",
        program: pbzip3.program,
        spec: pbzip3.truth.spec,
        base: pbzip3.workloads.failing[0].clone(),
    };

    vec![rwr, rww, wwr, wrw, early, late]
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::engine::DiagnosisSession;
    use stm_core::runner::Runner;
    use stm_core::transform::{instrument, InstrumentOptions};
    use stm_machine::events::LcrConfig;
    use stm_machine::interp::Machine;

    #[test]
    fn all_six_patterns_exist_and_validate() {
        let ps = table3_patterns();
        assert_eq!(ps.len(), 6);
        for p in &ps {
            p.program.validate().unwrap();
        }
    }

    /// For every pattern with an in-failure-thread FPE, the failing
    /// interleaving's LCR contains the predicted coherence event.
    #[test]
    fn fpe_states_match_table3() {
        for p in table3_patterns() {
            let Some((state, loc)) = p.fpe else { continue };
            let runner = Runner::new(Machine::new(instrument(
                &p.program,
                &InstrumentOptions::lcrlog(LcrConfig::SPACE_CONSUMING),
            )));
            let failing = DiagnosisSession::from_runner(&runner)
                .failure(p.spec.clone())
                .workloads(vec![p.base.clone()])
                .seeds(0..300)
                .failure_profiles(3)
                .success_profiles(0)
                .collect()
                .expect("seed scan")
                .failing_workloads();
            assert!(!failing.is_empty(), "{}: no failing interleaving", p.name);
            let (report, _) = runner.run_classified(&failing[0], &p.spec);
            let log = stm_core::logging::failure_log_for(&runner, &report, &p.spec)
                .unwrap_or_else(|| panic!("{}: no failure profile", p.name));
            let want = match state {
                "I" => stm_machine::events::CoherenceState::Invalid,
                "E" => stm_machine::events::CoherenceState::Exclusive,
                other => panic!("unexpected state {other}"),
            };
            assert!(
                log.lcr_position_of_event(loc, want).is_some(),
                "{}: FPE ({state} at {loc}) not in LCR:\n{}",
                p.name,
                stm_core::logging::render_failure_log(&runner, &log)
            );
        }
    }
}
