//! Assertions shared by the benchmark unit tests.

use crate::benchmark::Benchmark;
use crate::eval::{expand_workloads, lbrlog_runner};
pub use crate::eval::{lbra_rank, lbrlog_position, lcra_rank, lcrlog_position, patch_distances};
use stm_core::runner::RunClass;

/// Asserts that every failing workload reproduces the target failure and
/// every passing workload completes successfully under an LBRLOG
/// deployment.
pub fn assert_workloads_classify(b: &Benchmark) {
    let runner = lbrlog_runner(b, true);
    let (failing, passing) = expand_workloads(b, &runner);
    assert!(!failing.is_empty(), "{}: no failing workloads", b.info.id);
    assert!(!passing.is_empty(), "{}: no passing workloads", b.info.id);
    for w in &failing {
        let (report, class) = runner.run_classified(w, &b.truth.spec);
        assert_eq!(
            class,
            RunClass::TargetFailure,
            "{}: workload {w:?} did not reproduce the failure: {:?}",
            b.info.id,
            report.outcome
        );
    }
    for w in &passing {
        let (report, class) = runner.run_classified(w, &b.truth.spec);
        assert_eq!(
            class,
            RunClass::Success,
            "{}: workload {w:?} did not pass: {:?}",
            b.info.id,
            report.outcome
        );
    }
}
