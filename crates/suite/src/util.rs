//! Builder utilities shared by the benchmark programs.

use stm_machine::builder::FunctionBuilder;
use stm_machine::ids::LogSiteId;
use stm_machine::ir::{BinOp, Operand};

/// Emits the ubiquitous C error-handling idiom
///
/// ```c
/// if (!cond) { error("msg"); exit(code); }
/// ```
///
/// and leaves the cursor on the fall-through (passing) path. Each executed
/// guard whose condition holds retires exactly **one** LBR record (the
/// true-edge jump of its conditional), which is how the benchmarks place
/// root-cause branches at specific ring positions. Each guard is also a
/// genuine failure-logging site, feeding Table 4's log-point counts and
/// Table 5's useful-branch analysis.
pub fn guard(f: &mut FunctionBuilder<'_>, cond: impl Into<Operand>, msg: &str) -> LogSiteId {
    let pass = f.new_block();
    let fail = f.new_block();
    f.br(cond, pass, fail);
    f.set_block(fail);
    let site = f.log_error(msg);
    f.exit(1);
    f.jmp(pass);
    f.set_block(pass);
    site
}

/// Like [`guard`], but the failing path *returns* `ret` instead of exiting
/// the process — the library-style error propagation idiom.
pub fn guard_ret(
    f: &mut FunctionBuilder<'_>,
    cond: impl Into<Operand>,
    msg: &str,
    ret: i64,
) -> LogSiteId {
    let pass = f.new_block();
    let fail = f.new_block();
    f.br(cond, pass, fail);
    f.set_block(fail);
    let site = f.log_error(msg);
    f.ret(Some(Operand::Const(ret)));
    f.set_block(pass);
    site
}

/// Emits a data-dependent if/then diamond whose arms rejoin: the shape
/// that dominates real pre-failure control flow. Exactly one LBR record
/// retires per traversal (the conditional's taken edge; the work arm falls
/// through to the join), and — unlike a guard — *both* edges reach
/// downstream code, so the record is "useful" to the Table 5 analysis.
pub fn diamond(f: &mut FunctionBuilder<'_>, value: impl Into<Operand> + Copy) {
    let work = f.new_block();
    let join = f.new_block();
    // The straight-line computation the check guards (record-free work).
    let a = f.bin(BinOp::Mul, value, 31);
    let b = f.bin(BinOp::Add, a, 17);
    let c2 = f.bin(BinOp::Xor, b, a);
    let c = f.bin(BinOp::Gt, c2, i64::MIN / 2);
    f.br(c, join, work);
    f.set_block(work);
    f.nop();
    f.jmp(join); // adjacent: pure fall-through, no record
    f.set_block(join);
}

/// Emits `n` checks on `value`, one source line apart starting at
/// `start_line`, mixing rejoining [`diamond`]s with guarded error-log
/// sites in the ~7:1 proportion real request-processing code shows. Every
/// check retires exactly one LBR record under the benchmark workloads, so
/// chains of these place root-cause branches at the ring positions
/// Table 6 reports while keeping the static useful-branch profile
/// (Table 5) realistic.
pub fn pad_checks(
    f: &mut FunctionBuilder<'_>,
    n: u32,
    start_line: u32,
    value: impl Into<Operand> + Copy,
) {
    for k in 0..n {
        f.at(start_line + 2 * k);
        if k % 8 == 7 {
            let c = f.bin(BinOp::Gt, value, i64::MIN / 2);
            guard(f, c, "internal consistency check failed");
        } else {
            diamond(f, value);
        }
    }
}

/// Emits a counted loop `for i in 0..n { body(i) }`; the body closure runs
/// with the cursor inside the loop body. Returns the loop-counter variable.
pub fn counted_loop(
    f: &mut FunctionBuilder<'_>,
    n: impl Into<Operand>,
    body: impl FnOnce(&mut FunctionBuilder<'_>, stm_machine::ids::VarId),
) -> stm_machine::ids::VarId {
    let n = n.into();
    let header = f.new_block();
    let body_blk = f.new_block();
    let done = f.new_block();
    let i = f.var();
    f.assign(i, 0);
    f.jmp(header);
    f.set_block(header);
    let c = f.bin(BinOp::Lt, i, n);
    f.br(c, body_blk, done);
    f.set_block(body_blk);
    body(f, i);
    f.assign_bin(i, BinOp::Add, i, 1);
    f.jmp(header);
    f.set_block(done);
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::events::NullHardware;
    use stm_machine::interp::{Machine, RunConfig};

    #[test]
    fn guard_passes_and_fails() {
        let mut pb = ProgramBuilder::new("t");
        let main = pb.declare_function("main");
        let site;
        {
            let mut f = pb.build_function(main, "m.c");
            let x = f.read_input(0);
            site = guard(&mut f, x, "x must be non-zero");
            f.output(x);
            f.ret(None);
            f.finish();
        }
        let m = Machine::new(pb.finish(main));
        let cfg = RunConfig::default();
        let ok = m.run(&[5], &cfg, &mut NullHardware);
        assert_eq!(ok.outputs, vec![5]);
        assert!(!ok.logged_error());
        let bad = m.run(&[0], &cfg, &mut NullHardware);
        assert!(bad.logged_site(site));
        assert_eq!(
            bad.outcome,
            stm_machine::report::RunOutcome::Completed { exit_code: 1 }
        );
    }

    #[test]
    fn guard_ret_returns_instead_of_exiting() {
        let mut pb = ProgramBuilder::new("t");
        let main = pb.declare_function("main");
        let helper = pb.declare_function("helper");
        {
            let mut f = pb.build_function(helper, "h.c");
            let ps = f.params(1);
            guard_ret(&mut f, ps[0], "bad arg", -1);
            f.ret(Some(Operand::Const(1)));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let x = f.read_input(0);
            let r = f.call(helper, &[x.into()]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        let m = Machine::new(pb.finish(main));
        let cfg = RunConfig::default();
        assert_eq!(m.run(&[3], &cfg, &mut NullHardware).outputs, vec![1]);
        let bad = m.run(&[0], &cfg, &mut NullHardware);
        assert_eq!(bad.outputs, vec![-1]);
        assert!(bad.logged_error());
    }

    #[test]
    fn counted_loop_iterates_n_times() {
        let mut pb = ProgramBuilder::new("t");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "m.c");
            let n = f.read_input(0);
            let total = f.var();
            f.assign(total, 0);
            counted_loop(&mut f, n, |f, _i| {
                f.assign_bin(total, BinOp::Add, total, 1);
            });
            f.output(total);
            f.ret(None);
            f.finish();
        }
        let m = Machine::new(pb.finish(main));
        let r = m.run(&[7], &RunConfig::default(), &mut NullHardware);
        assert_eq!(r.outputs, vec![7]);
    }
}
