//! Golden-file coverage for [`CausalChain`]: committed JSON and markdown
//! renderings per [`FailureKind`] symptom, plus edge-case chains for
//! empty rings, wrapped rings and a single witness. The inputs are
//! hand-constructed (no session run), so the goldens pin the renderers
//! themselves, not the collection pipeline.
//!
//! Regenerate with `BLESS=1 cargo test -p stm-forensics --test
//! chain_golden` and review the diff like any other change.

use std::path::PathBuf;

use stm_core::profile::{BranchOutcome, CoherenceEvent, DecodedLbrEntry, DecodedLcrEntry};
use stm_core::ranking::{Polarity, RankedEvent};
use stm_forensics::{CausalChain, ChainKind};
use stm_machine::events::{AccessKind, BranchKind, BranchRecord, CoherenceRecord, CoherenceState};
use stm_machine::ids::{BranchId, FuncId};
use stm_machine::ir::SourceLoc;
use stm_machine::layout::Decoded;
use stm_machine::report::FailureKind;

fn bo(branch: u32, outcome: bool) -> BranchOutcome {
    BranchOutcome {
        branch: BranchId::new(branch),
        outcome,
    }
}

fn ranked_bo(
    branch: u32,
    outcome: bool,
    score: f64,
    f: usize,
    s: usize,
) -> RankedEvent<BranchOutcome> {
    RankedEvent {
        event: bo(branch, outcome),
        polarity: Polarity::Present,
        precision: score,
        recall: score,
        score,
        failure_matches: f,
        success_matches: s,
        failure_witnesses: vec![],
        success_witnesses: vec![],
    }
}

fn lbr_entry(position: usize, branch: u32, outcome: bool) -> DecodedLbrEntry {
    DecodedLbrEntry {
        position,
        record: BranchRecord {
            from: 0x100 + 8 * branch as u64,
            to: 0x200 + 8 * branch as u64,
            kind: BranchKind::CondJump,
        },
        decoded: Some(Decoded::SourceBranch {
            branch: BranchId::new(branch),
            outcome,
            loc: SourceLoc::UNKNOWN,
            func: FuncId::new(0),
        }),
    }
}

fn lcr_event(line: u32, state: CoherenceState) -> CoherenceEvent {
    CoherenceEvent {
        loc: SourceLoc {
            file: stm_machine::ids::FileId::new(0),
            line,
        },
        state,
        access: AccessKind::Load,
    }
}

fn lcr_entry(position: usize, line: u32, state: CoherenceState) -> DecodedLcrEntry {
    let event = lcr_event(line, state);
    DecodedLcrEntry {
        position,
        record: CoherenceRecord {
            pc: 0x400 + 4 * line as u64,
            state,
            access: AccessKind::Load,
        },
        event,
    }
}

type LbrTraces = Vec<(String, Vec<DecodedLbrEntry>)>;

/// The shared LBR fixture: two witnesses, anchor `br0=true`, two
/// propagation candidates, one event outside the causal window.
fn lbr_fixture() -> (Vec<RankedEvent<BranchOutcome>>, LbrTraces) {
    let ranked = vec![
        ranked_bo(0, true, 1.0, 2, 0),
        ranked_bo(1, false, 0.8, 2, 1),
        ranked_bo(2, true, 0.5, 1, 1),
        ranked_bo(9, true, 0.1, 1, 2),
    ];
    let traces = vec![
        (
            "fail:w0:seed1".to_string(),
            vec![
                lbr_entry(1, 2, true),
                lbr_entry(2, 1, false),
                lbr_entry(3, 0, true),
                lbr_entry(4, 9, true),
            ],
        ),
        (
            "fail:w1:seed2".to_string(),
            vec![lbr_entry(1, 1, false), lbr_entry(2, 0, true)],
        ),
    ];
    (ranked, traces)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; regenerate with BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "chain rendering diverged from {}; re-bless if intentional",
        path.display()
    );
}

/// Builds the shared chain under one failure symptom and checks both
/// renderings against their goldens.
fn check_symptom_variant(name: &str, kind: FailureKind) {
    let (ranked, traces) = lbr_fixture();
    let chain = CausalChain::from_lbra(None, &ranked, &traces, 2, 2)
        .expect("fixture chain reconstructs")
        .with_symptom(format!("{kind} in main at m.c:10"));
    check_golden(
        &format!("chain_{name}.json"),
        &(chain.to_json().encode() + "\n"),
    );
    check_golden(&format!("chain_{name}.md"), &chain.to_markdown());
}

#[test]
fn golden_segfault() {
    check_symptom_variant("segfault", FailureKind::Segfault { addr: 0x40_1000 });
}

#[test]
fn golden_invalid_free() {
    check_symptom_variant("invalid_free", FailureKind::InvalidFree { addr: 0x40_2040 });
}

#[test]
fn golden_assert_failed() {
    check_symptom_variant(
        "assert_failed",
        FailureKind::AssertFailed {
            message: "index < len".into(),
        },
    );
}

#[test]
fn golden_div_by_zero() {
    check_symptom_variant("div_by_zero", FailureKind::DivByZero);
}

#[test]
fn golden_deadlock() {
    check_symptom_variant("deadlock", FailureKind::Deadlock);
}

#[test]
fn golden_hang() {
    check_symptom_variant("hang", FailureKind::Hang);
}

#[test]
fn golden_stack_overflow() {
    check_symptom_variant("stack_overflow", FailureKind::StackOverflow);
}

#[test]
fn golden_lcr_chain() {
    // An LCR chain rides MESI transitions instead of branch edges.
    let mk = |line: u32, state, score, f, s| RankedEvent {
        event: lcr_event(line, state),
        polarity: Polarity::Present,
        precision: score,
        recall: score,
        score,
        failure_matches: f,
        success_matches: s,
        failure_witnesses: vec![],
        success_witnesses: vec![],
    };
    let ranked = vec![
        mk(40, CoherenceState::Invalid, 1.0, 2, 0),
        mk(41, CoherenceState::Shared, 0.6, 2, 1),
    ];
    let traces = vec![
        (
            "fail:w0:seed1".to_string(),
            vec![
                lcr_entry(1, 41, CoherenceState::Shared),
                lcr_entry(2, 40, CoherenceState::Invalid),
            ],
        ),
        (
            "fail:w1:seed2".to_string(),
            vec![
                lcr_entry(1, 41, CoherenceState::Shared),
                lcr_entry(2, 40, CoherenceState::Invalid),
            ],
        ),
    ];
    let chain = CausalChain::from_lcra(None, &ranked, &traces, 2, 2)
        .expect("lcr chain reconstructs")
        .with_symptom("segmentation fault at 0x0 in worker at w.c:41");
    assert_eq!(chain.kind, ChainKind::Lcr);
    check_golden("chain_lcr.json", &(chain.to_json().encode() + "\n"));
    check_golden("chain_lcr.md", &chain.to_markdown());
}

#[test]
fn golden_empty_ring_witness_is_skipped() {
    // One witness captured an empty ring (reactive deployment raced the
    // failure): it is skipped, the chain forms from the other witness.
    let (ranked, mut traces) = lbr_fixture();
    traces[0].1.clear();
    let chain = CausalChain::from_lbra(None, &ranked, &traces, 2, 2)
        .expect("non-empty witness still anchors the chain");
    assert_eq!(chain.witnesses_consulted, 1);
    check_golden("chain_empty_ring.json", &(chain.to_json().encode() + "\n"));
}

#[test]
fn all_empty_rings_yield_no_chain() {
    let (ranked, mut traces) = lbr_fixture();
    for (_, t) in &mut traces {
        t.clear();
    }
    assert!(CausalChain::from_lbra(None, &ranked, &traces, 2, 2).is_none());
}

#[test]
fn golden_wrapped_ring_uses_deepest_occurrence() {
    // A wrapped ring shows the same branch at several positions; the
    // walk anchors each event at its DEEPEST (earliest in time)
    // occurrence inside the causal window.
    let (ranked, _) = lbr_fixture();
    let traces = vec![(
        "fail:w0:seed1".to_string(),
        vec![
            lbr_entry(1, 2, true),
            lbr_entry(2, 1, false),
            lbr_entry(3, 2, true), // wrap: br2 again, deeper
            lbr_entry(4, 0, true),
            lbr_entry(5, 1, false), // deeper than the anchor: outside
        ],
    )];
    let chain = CausalChain::from_lbra(None, &ranked, &traces, 2, 2).expect("chain reconstructs");
    let root = &chain.links[0];
    assert_eq!(root.event, "br0=true");
    let br2 = chain
        .links
        .iter()
        .find(|l| l.event == "br2=true")
        .expect("wrapped event links");
    assert_eq!(br2.witnesses[0].position, 3, "deepest in-window occurrence");
    check_golden(
        "chain_wrapped_ring.json",
        &(chain.to_json().encode() + "\n"),
    );
}

#[test]
fn golden_single_witness() {
    let (ranked, mut traces) = lbr_fixture();
    traces.truncate(1);
    let chain = CausalChain::from_lbra(None, &ranked, &traces, 1, 2)
        .expect("single witness chain reconstructs")
        .with_symptom("assertion failed: single witness");
    assert_eq!(chain.witnesses_consulted, 1);
    check_golden(
        "chain_single_witness.json",
        &(chain.to_json().encode() + "\n"),
    );
    check_golden("chain_single_witness.md", &chain.to_markdown());
}

#[test]
fn fingerprint_is_stable_across_rebuilds() {
    let (ranked, traces) = lbr_fixture();
    let a = CausalChain::from_lbra(None, &ranked, &traces, 2, 2).unwrap();
    let b = CausalChain::from_lbra(None, &ranked, &traces, 2, 2).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.to_json().encode(), b.to_json().encode());
}
