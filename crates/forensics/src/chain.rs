//! Causal-chain reconstruction: from the top-ranked predictor to an
//! evidence-linked failure storyline.
//!
//! LBRA/LCRA stop at "event X best predicts the failure" (Tables 4–7
//! rank single events). A developer debugging a production failure needs
//! the *path*: what happened between the root cause and the failure
//! site. This module walks backward through the short-term hardware
//! memory the diagnosis already decoded — the LBR/LCR ring snapshots of
//! the failing witnesses — and emits an ordered **root-cause →
//! propagation → failure** chain:
//!
//! 1. **Anchor.** The walk anchors at the *deepest* ring occurrence of
//!    the top-ranked presence predictor in each failing witness
//!    ([`stm_machine::ring::deepest_position_of`]). When the top
//!    predictor is an absence predictor (§4.2.2's read-too-early
//!    signature never appears in failing rings), the walk anchors at
//!    the best *presence* predictor instead and reports both.
//! 2. **Window.** Everything between the anchor and the failure
//!    (positions 1..=anchor, [`stm_machine::ring::window`]) happened
//!    after the root cause fired — the candidate propagation events.
//! 3. **Support.** Each candidate is scored against the passing
//!    population with the same precision/recall harmonic the ranking
//!    uses (program-spectra-style, per Abreu et al.), so a link's
//!    support is directly comparable to a predictor's rank score.
//! 4. **Order.** Links sort by mean ring position across the failing
//!    witnesses, deepest (oldest, closest to the root cause) first; the
//!    anchor always leads. Ties break by support score descending, then
//!    by event display — fully deterministic, pinned across thread
//!    counts in `tests/engine_determinism.rs`.
//!
//! Every link carries typed evidence: the witnesses containing it and
//! its position in each of their rings, the branch edge or MESI
//! transition it rides on ([`crate::dossier::mesi_transition`]), and the
//! precision/recall/support triple with raw match counts.

use crate::dossier::mesi_transition;
use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use stm_core::converge::{LiveRanking, ScoredPredictor, SnapshotIngest};
use stm_core::profile::{
    decode_lbr, decode_lcr, BranchOutcome, CoherenceEvent, DecodedLbrEntry, DecodedLcrEntry,
};
use stm_core::ranking::{Polarity, RankedEvent};
use stm_machine::ir::Program;
use stm_machine::report::ProfileData;
use stm_telemetry::json::Json;

/// Longest chain the reconstructor reports. The anchor and the
/// failure-end link always survive the cap; middle links are kept by
/// support score.
pub const MAX_LINKS: usize = 8;

/// Which ring the chain was walked from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainKind {
    /// Last Branch Record — branch-outcome links.
    Lbr,
    /// Last Cache-coherence Record — coherence-event links.
    Lcr,
}

impl ChainKind {
    /// Wire form (`"lbr"` / `"lcr"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ChainKind::Lbr => "lbr",
            ChainKind::Lcr => "lcr",
        }
    }
}

/// A link's role in the storyline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkRole {
    /// The anchor: the top-ranked predictor the walk started from.
    RootCause,
    /// An intermediate event between root cause and failure.
    Propagation,
    /// The window's failure end: the event nearest position 1.
    Failure,
}

impl LinkRole {
    /// Wire form (`"root-cause"` / `"propagation"` / `"failure"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LinkRole::RootCause => "root-cause",
            LinkRole::Propagation => "propagation",
            LinkRole::Failure => "failure",
        }
    }
}

/// One witness sighting of a link: which profile contains it and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessMark {
    /// The witness id (`fail:w<idx>:seed<seed>` or an endpoint-prefixed
    /// fleet form).
    pub witness: String,
    /// Deepest 1-based ring position of the event in that witness
    /// (1 = most recent, closest to the failure).
    pub position: usize,
}

/// One step of the reconstructed chain, with its typed evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainLink {
    /// Role in the storyline.
    pub role: LinkRole,
    /// Canonical predictor form (`br1=true`, `load@m.c:9:S`).
    pub event: String,
    /// Human label; program-aware when a [`Program`] was available
    /// (`branch br1 at m.c:10 taken TRUE`), canonical otherwise.
    pub label: String,
    /// The hardware mechanism the link rides on: the branch edge
    /// (`edge 0x.. -> 0x..`) or the MESI transition with its meaning.
    pub mechanism: String,
    /// Mean deepest ring position across the witnesses containing the
    /// link — the chain's ordering key (larger = earlier in time).
    pub mean_position: f64,
    /// The failing witnesses containing the link, with positions.
    pub witnesses: Vec<WitnessMark>,
    /// Prediction precision against the passing population.
    pub precision: f64,
    /// Prediction recall over the failing population.
    pub recall: f64,
    /// Harmonic support score — same formula as the predictor ranking.
    pub support: f64,
    /// Failure profiles containing the event.
    pub failure_matches: usize,
    /// Success profiles containing the event.
    pub success_matches: usize,
}

/// An ordered root-cause → propagation → failure chain with per-link
/// evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalChain {
    /// Which ring was walked.
    pub kind: ChainKind,
    /// Display form of the top-ranked predictor (with `!` prefix when it
    /// is an absence predictor).
    pub top_predictor: String,
    /// Display form of the presence predictor the walk anchored at.
    /// Differs from `top_predictor` only when the top is an absence
    /// predictor.
    pub anchor: String,
    /// Failing-witness traces the walk consulted (ring-retention capped;
    /// support counts below cover the full populations).
    pub witnesses_consulted: usize,
    /// Failure profiles in the support population.
    pub failures: usize,
    /// Success profiles in the support population.
    pub successes: usize,
    /// What failed, when known (`FailureKind` display of the witness
    /// run, e.g. `assertion failed: ...`).
    pub symptom: Option<String>,
    /// The links, root cause first.
    pub links: Vec<ChainLink>,
}

/// Per-event support statistics, source-agnostic: built from either the
/// batch [`RankedEvent`]s or the live [`ScoredPredictor`]s.
#[derive(Debug, Clone, Copy)]
struct Support {
    precision: f64,
    recall: f64,
    score: f64,
    failure_matches: usize,
    success_matches: usize,
}

/// A predictor stat in ranking order — what the reconstructor needs from
/// either ranking representation.
struct PredictorStat<E> {
    event: E,
    polarity: Polarity,
    support: Support,
}

impl<E: Clone> PredictorStat<E> {
    fn from_ranked(r: &RankedEvent<E>) -> Self {
        PredictorStat {
            event: r.event.clone(),
            polarity: r.polarity,
            support: Support {
                precision: r.precision,
                recall: r.recall,
                score: r.score,
                failure_matches: r.failure_matches,
                success_matches: r.success_matches,
            },
        }
    }

    fn from_scored(s: &ScoredPredictor<E>) -> Self {
        PredictorStat {
            event: s.event.clone(),
            polarity: s.polarity,
            support: Support {
                precision: s.precision,
                recall: s.recall,
                score: s.score,
                failure_matches: s.failure_matches,
                success_matches: s.success_matches,
            },
        }
    }
}

/// One decoded occurrence in a failing trace: 1-based ring position, the
/// source-level event, and the mechanism string for that record.
type TraceEntry<E> = (usize, E, String);

fn lbr_trace(entries: &[DecodedLbrEntry]) -> Vec<TraceEntry<BranchOutcome>> {
    entries
        .iter()
        .filter_map(|e| {
            e.branch_outcome().map(|bo| {
                (
                    e.position,
                    bo,
                    format!(
                        "edge {:#010x} -> {:#010x} taken {}",
                        e.record.from,
                        e.record.to,
                        if bo.outcome { "TRUE" } else { "FALSE" }
                    ),
                )
            })
        })
        .collect()
}

fn lcr_trace(entries: &[DecodedLcrEntry]) -> Vec<TraceEntry<CoherenceEvent>> {
    entries
        .iter()
        .map(|e| {
            let t = mesi_transition(e.event.access, e.event.state);
            (
                e.position,
                e.event,
                format!("{}: {}", t.transition, t.meaning),
            )
        })
        .collect()
}

fn branch_label(program: Option<&Program>, e: &BranchOutcome) -> String {
    match program {
        Some(p) => {
            let loc = p
                .branches
                .iter()
                .find(|b| b.id == e.branch)
                .map(|b| p.render_loc(b.loc))
                .unwrap_or_else(|| "<unknown>".to_string());
            format!(
                "branch {} at {} taken {}",
                e.branch,
                loc,
                if e.outcome { "TRUE" } else { "FALSE" }
            )
        }
        None => e.to_string(),
    }
}

fn coherence_label(program: Option<&Program>, e: &CoherenceEvent) -> String {
    match program {
        Some(p) => format!(
            "{} at {} observed {}",
            e.access,
            p.render_loc(e.loc),
            e.state
        ),
        None => e.to_string(),
    }
}

impl CausalChain {
    /// Reconstructs an LBR chain from a batch ranking and decoded
    /// failing-witness traces. Pass the ranking *after* site-guard
    /// exclusion so the anchor is a cause, not the failure site itself.
    /// `None` when the ranking is empty or no trace contains the anchor.
    pub fn from_lbra(
        program: Option<&Program>,
        ranked: &[RankedEvent<BranchOutcome>],
        traces: &[(String, Vec<DecodedLbrEntry>)],
        failures: usize,
        successes: usize,
    ) -> Option<CausalChain> {
        let stats: Vec<PredictorStat<BranchOutcome>> =
            ranked.iter().map(PredictorStat::from_ranked).collect();
        let traces: Vec<(String, Vec<TraceEntry<BranchOutcome>>)> = traces
            .iter()
            .map(|(w, entries)| (w.clone(), lbr_trace(entries)))
            .collect();
        reconstruct(ChainKind::Lbr, &stats, &traces, failures, successes, |e| {
            branch_label(program, e)
        })
    }

    /// Reconstructs an LCR chain from a batch ranking and decoded
    /// failing-witness traces. `None` when the ranking is empty or no
    /// trace contains the anchor.
    pub fn from_lcra(
        program: Option<&Program>,
        ranked: &[RankedEvent<CoherenceEvent>],
        traces: &[(String, Vec<DecodedLcrEntry>)],
        failures: usize,
        successes: usize,
    ) -> Option<CausalChain> {
        let stats: Vec<PredictorStat<CoherenceEvent>> =
            ranked.iter().map(PredictorStat::from_ranked).collect();
        let traces: Vec<(String, Vec<TraceEntry<CoherenceEvent>>)> = traces
            .iter()
            .map(|(w, entries)| (w.clone(), lcr_trace(entries)))
            .collect();
        reconstruct(ChainKind::Lcr, &stats, &traces, failures, successes, |e| {
            coherence_label(program, e)
        })
    }

    /// Reconstructs the *live* chain of a streaming ingest (the fleet
    /// path): anchors on the current incremental top predictor and walks
    /// the ingest's retained failing traces. Labels are canonical (the
    /// daemon holds a [`Layout`](stm_machine::layout::Layout), not a
    /// [`Program`]). `None` before the first failing trace is retained
    /// or while no retained trace contains the anchor.
    pub fn from_ingest(ingest: &SnapshotIngest) -> Option<CausalChain> {
        let layout = ingest.layout();
        let failures = ingest.failures();
        let successes = ingest.successes();
        match ingest.live_ranking()? {
            LiveRanking::Lbr(scored) => {
                let stats: Vec<PredictorStat<BranchOutcome>> =
                    scored.iter().map(PredictorStat::from_scored).collect();
                let traces: Vec<(String, Vec<TraceEntry<BranchOutcome>>)> = ingest
                    .chain_traces()
                    .iter()
                    .filter_map(|(w, data)| match data {
                        ProfileData::Lbr(records) => {
                            Some((w.clone(), lbr_trace(&decode_lbr(layout, records))))
                        }
                        ProfileData::Lcr(_) => None,
                    })
                    .collect();
                reconstruct(ChainKind::Lbr, &stats, &traces, failures, successes, |e| {
                    branch_label(None, e)
                })
            }
            LiveRanking::Lcr(scored) => {
                let stats: Vec<PredictorStat<CoherenceEvent>> =
                    scored.iter().map(PredictorStat::from_scored).collect();
                let traces: Vec<(String, Vec<TraceEntry<CoherenceEvent>>)> = ingest
                    .chain_traces()
                    .iter()
                    .filter_map(|(w, data)| match data {
                        ProfileData::Lcr(records) => {
                            Some((w.clone(), lcr_trace(&decode_lcr(layout, records))))
                        }
                        ProfileData::Lbr(_) => None,
                    })
                    .collect();
                reconstruct(ChainKind::Lcr, &stats, &traces, failures, successes, |e| {
                    coherence_label(None, e)
                })
            }
        }
    }

    /// Attaches the failing run's symptom (its `FailureKind` display) to
    /// the chain — the dossier-side context of the storyline.
    pub fn with_symptom(mut self, symptom: impl Into<String>) -> Self {
        self.symptom = Some(symptom.into());
        self
    }

    /// 1-based position of the first link matching `pred` — how the
    /// chain-quality gate asks "does the chain contain the injected
    /// root-cause event".
    pub fn link_rank_of(&self, pred: impl FnMut(&ChainLink) -> bool) -> Option<usize> {
        self.links.iter().position(pred).map(|i| i + 1)
    }

    /// The smallest link support score — the chain's weakest evidence.
    pub fn min_link_support(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.support)
            .fold(f64::INFINITY, f64::min)
    }

    /// A stable fingerprint of the chain's observable content, used to
    /// fire `diagnosis.chain` events only when a chain forms or changes.
    /// Deterministic across processes (fixed-key hasher over the encoded
    /// JSON).
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.to_json().encode().hash(&mut h);
        h.finish()
    }

    /// The chain as a JSON object (the `/diagnosis` and report shape).
    pub fn to_json(&self) -> Json {
        let links = self
            .links
            .iter()
            .map(|l| {
                let witnesses = l
                    .witnesses
                    .iter()
                    .map(|m| {
                        Json::obj([
                            ("witness", Json::from(m.witness.clone())),
                            ("position", Json::from(m.position)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("role", Json::from(l.role.as_str())),
                    ("event", Json::from(l.event.clone())),
                    ("label", Json::from(l.label.clone())),
                    ("mechanism", Json::from(l.mechanism.clone())),
                    ("mean_position", Json::from(l.mean_position)),
                    ("precision", Json::from(l.precision)),
                    ("recall", Json::from(l.recall)),
                    ("support", Json::from(l.support)),
                    ("failure_matches", Json::from(l.failure_matches)),
                    ("success_matches", Json::from(l.success_matches)),
                    ("witnesses", Json::Arr(witnesses)),
                ])
            })
            .collect();
        Json::obj([
            ("kind", Json::from(self.kind.as_str())),
            ("top_predictor", Json::from(self.top_predictor.clone())),
            ("anchor", Json::from(self.anchor.clone())),
            ("witnesses_consulted", Json::from(self.witnesses_consulted)),
            ("failures", Json::from(self.failures)),
            ("successes", Json::from(self.successes)),
            (
                "symptom",
                self.symptom.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
            ("links", Json::Arr(links)),
        ])
    }

    /// The chain as a markdown storyline section.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## Causal chain ({})", self.kind.as_str());
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Top predictor `{}`; walk anchored at `{}` across {} failing witness trace(s) \
             ({} failure / {} success profiles in the support population).",
            self.top_predictor,
            self.anchor,
            self.witnesses_consulted,
            self.failures,
            self.successes
        );
        if let Some(symptom) = &self.symptom {
            let _ = writeln!(out, "Failure symptom: {symptom}.");
        }
        let _ = writeln!(out);
        for (i, l) in self.links.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}. **{}** — {} (rides `{}`)",
                i + 1,
                l.role.as_str(),
                l.label,
                l.mechanism
            );
            let marks: Vec<String> = l
                .witnesses
                .iter()
                .map(|m| format!("{}@{}", m.witness, m.position))
                .collect();
            let _ = writeln!(
                out,
                "   support {:.3} (precision {:.2}, recall {:.2}; {}F/{}S), \
                 mean ring position {:.1}, seen in {}",
                l.support,
                l.precision,
                l.recall,
                l.failure_matches,
                l.success_matches,
                l.mean_position,
                if marks.is_empty() {
                    "(no retained trace)".to_string()
                } else {
                    marks.join(", ")
                }
            );
        }
        if self.links.is_empty() {
            let _ = writeln!(out, "(no links)");
        }
        out
    }
}

/// Sightings of one candidate event across the failing windows.
#[derive(Debug, Default)]
struct Candidate {
    marks: Vec<WitnessMark>,
    position_sum: u64,
    mechanism: String,
}

/// The shared reconstruction walk over decoded, mechanism-annotated
/// traces. `stats` must be in ranking order (best predictor first).
fn reconstruct<E: Ord + Clone + std::fmt::Display>(
    kind: ChainKind,
    stats: &[PredictorStat<E>],
    traces: &[(String, Vec<TraceEntry<E>>)],
    failures: usize,
    successes: usize,
    label: impl Fn(&E) -> String,
) -> Option<CausalChain> {
    let top = stats.first()?;
    let top_display = match top.polarity {
        Polarity::Present => format!("{}", top.event),
        Polarity::Absent => format!("!{}", top.event),
    };
    // The anchor must be a presence predictor that actually occurs in a
    // retained failing trace — an absence predictor never does, and a
    // presence predictor can be missing from the (capped) retained set.
    let anchor = stats
        .iter()
        .filter(|s| s.polarity == Polarity::Present)
        .find(|s| {
            traces
                .iter()
                .any(|(_, t)| t.iter().any(|(_, e, _)| *e == s.event))
        })?;
    let anchor_event = anchor.event.clone();

    // Per-witness window: from the anchor's deepest occurrence down to
    // the failure at position 1. Witnesses without the anchor contribute
    // no window (their snapshot starts after the root cause fired).
    let mut candidates: BTreeMap<E, Candidate> = BTreeMap::new();
    let mut consulted = 0usize;
    for (witness, trace) in traces {
        let Some(anchor_pos) = trace
            .iter()
            .filter(|(_, e, _)| *e == anchor_event)
            .map(|(p, _, _)| *p)
            .max()
        else {
            continue;
        };
        consulted += 1;
        // Deepest in-window occurrence per event in this witness.
        let mut deepest: BTreeMap<&E, (usize, &str)> = BTreeMap::new();
        for (pos, event, mechanism) in trace {
            if *pos <= anchor_pos {
                deepest.insert(event, (*pos, mechanism.as_str()));
            }
        }
        for (event, (pos, mechanism)) in deepest {
            let c = candidates.entry(event.clone()).or_default();
            c.marks.push(WitnessMark {
                witness: witness.clone(),
                position: pos,
            });
            c.position_sum += pos as u64;
            if c.mechanism.is_empty() {
                c.mechanism = mechanism.to_string();
            }
        }
    }
    if consulted == 0 {
        return None;
    }

    let support_of = |event: &E| -> Support {
        stats
            .iter()
            .find(|s| s.polarity == Polarity::Present && s.event == *event)
            .map(|s| s.support)
            .unwrap_or(Support {
                precision: 0.0,
                recall: 0.0,
                score: 0.0,
                failure_matches: 0,
                success_matches: 0,
            })
    };

    let mut links: Vec<ChainLink> = candidates
        .into_iter()
        .map(|(event, c)| {
            let s = support_of(&event);
            ChainLink {
                role: LinkRole::Propagation,
                event: format!("{event}"),
                label: label(&event),
                mechanism: c.mechanism,
                mean_position: c.position_sum as f64 / c.marks.len() as f64,
                witnesses: c.marks,
                precision: s.precision,
                recall: s.recall,
                support: s.score,
                failure_matches: s.failure_matches,
                success_matches: s.success_matches,
            }
        })
        .collect();

    // Temporal order: deepest mean position first (root cause end), ties
    // by support descending, then event display — all deterministic.
    links.sort_by(|a, b| {
        b.mean_position
            .total_cmp(&a.mean_position)
            .then_with(|| b.support.total_cmp(&a.support))
            .then_with(|| a.event.cmp(&b.event))
    });

    // The anchor leads the storyline regardless of its mean position
    // (other window events can average deeper across different witness
    // subsets).
    let anchor_display = format!("{anchor_event}");
    if let Some(i) = links.iter().position(|l| l.event == anchor_display) {
        let anchor_link = links.remove(i);
        links.insert(0, anchor_link);
    }

    // Cap: keep the anchor and the failure-end link, fill the middle
    // with the best-supported propagation links, then restore order.
    if links.len() > MAX_LINKS {
        let last = links.pop().expect("len > MAX_LINKS >= 2");
        let anchor_link = links.remove(0);
        let mut order: Vec<usize> = (0..links.len()).collect();
        order.sort_by(|&a, &b| {
            links[b]
                .support
                .total_cmp(&links[a].support)
                .then_with(|| links[a].event.cmp(&links[b].event))
        });
        let mut keep: Vec<bool> = vec![false; links.len()];
        for &i in order.iter().take(MAX_LINKS - 2) {
            keep[i] = true;
        }
        let mut kept: Vec<ChainLink> = links
            .into_iter()
            .zip(keep)
            .filter_map(|(l, k)| k.then_some(l))
            .collect();
        kept.insert(0, anchor_link);
        kept.push(last);
        links = kept;
    }

    let n = links.len();
    for (i, l) in links.iter_mut().enumerate() {
        l.role = if i == 0 {
            LinkRole::RootCause
        } else if i == n - 1 {
            LinkRole::Failure
        } else {
            LinkRole::Propagation
        };
    }

    Some(CausalChain {
        kind,
        top_predictor: top_display,
        anchor: anchor_display,
        witnesses_consulted: consulted,
        failures,
        successes,
        symptom: None,
        links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::events::{AccessKind, BranchKind, BranchRecord, CoherenceState};
    use stm_machine::ids::BranchId;
    use stm_machine::ir::SourceLoc;
    use stm_machine::layout::Decoded;

    fn bo(branch: u32, outcome: bool) -> BranchOutcome {
        BranchOutcome {
            branch: BranchId::new(branch),
            outcome,
        }
    }

    fn ranked_bo(
        branch: u32,
        outcome: bool,
        score: f64,
        f: usize,
        s: usize,
    ) -> RankedEvent<BranchOutcome> {
        RankedEvent {
            event: bo(branch, outcome),
            polarity: Polarity::Present,
            precision: score,
            recall: score,
            score,
            failure_matches: f,
            success_matches: s,
            failure_witnesses: vec![],
            success_witnesses: vec![],
        }
    }

    fn entry(position: usize, branch: u32, outcome: bool) -> DecodedLbrEntry {
        DecodedLbrEntry {
            position,
            record: BranchRecord {
                from: 0x100 + 8 * branch as u64,
                to: 0x200 + 8 * branch as u64,
                kind: BranchKind::CondJump,
            },
            decoded: Some(Decoded::SourceBranch {
                branch: BranchId::new(branch),
                outcome,
                loc: SourceLoc::UNKNOWN,
                func: stm_machine::ids::FuncId::new(0),
            }),
        }
    }

    type DemoTraces = Vec<(String, Vec<DecodedLbrEntry>)>;

    /// Two witnesses, anchor b0=true deepest, b1/b2 in the window, b9
    /// outside it (deeper than the anchor).
    fn demo_inputs() -> (Vec<RankedEvent<BranchOutcome>>, DemoTraces) {
        let ranked = vec![
            ranked_bo(0, true, 1.0, 2, 0),
            ranked_bo(1, false, 0.8, 2, 1),
            ranked_bo(2, true, 0.5, 1, 1),
            ranked_bo(9, true, 0.1, 1, 2),
        ];
        let traces = vec![
            (
                "fail:w0:seed1".to_string(),
                vec![
                    entry(1, 2, true),
                    entry(2, 1, false),
                    entry(3, 0, true),
                    entry(4, 9, true), // before the root cause: outside
                ],
            ),
            (
                "fail:w1:seed2".to_string(),
                vec![entry(1, 1, false), entry(2, 0, true)],
            ),
        ];
        (ranked, traces)
    }

    #[test]
    fn chain_orders_root_cause_to_failure() {
        let (ranked, traces) = demo_inputs();
        let chain = CausalChain::from_lbra(None, &ranked, &traces, 2, 2).unwrap();
        assert_eq!(chain.kind, ChainKind::Lbr);
        assert_eq!(chain.anchor, "br0=true");
        assert_eq!(chain.top_predictor, "br0=true");
        assert_eq!(chain.witnesses_consulted, 2);
        let events: Vec<&str> = chain.links.iter().map(|l| l.event.as_str()).collect();
        assert_eq!(events, vec!["br0=true", "br1=false", "br2=true"]);
        assert_eq!(chain.links[0].role, LinkRole::RootCause);
        assert_eq!(chain.links[1].role, LinkRole::Propagation);
        assert_eq!(chain.links[2].role, LinkRole::Failure);
        // b9 sits deeper than the anchor in w0: not part of the story.
        assert!(!events.contains(&"br9=true"));
    }

    #[test]
    fn link_evidence_carries_witness_positions_and_support() {
        let (ranked, traces) = demo_inputs();
        let chain = CausalChain::from_lbra(None, &ranked, &traces, 2, 2).unwrap();
        let root = &chain.links[0];
        assert_eq!(root.witnesses.len(), 2);
        assert_eq!(root.witnesses[0].witness, "fail:w0:seed1");
        assert_eq!(root.witnesses[0].position, 3);
        assert_eq!(root.witnesses[1].position, 2);
        assert_eq!(root.mean_position, 2.5);
        assert_eq!(root.support, 1.0);
        assert_eq!(root.failure_matches, 2);
        assert!(root.mechanism.starts_with("edge 0x"));
    }

    #[test]
    fn absence_top_predictor_anchors_at_best_presence() {
        let (mut ranked, traces) = demo_inputs();
        ranked.insert(
            0,
            RankedEvent {
                polarity: Polarity::Absent,
                ..ranked_bo(7, true, 1.0, 2, 0)
            },
        );
        let chain = CausalChain::from_lbra(None, &ranked, &traces, 2, 2).unwrap();
        assert_eq!(chain.top_predictor, "!br7=true");
        assert_eq!(chain.anchor, "br0=true");
    }

    #[test]
    fn empty_ranking_or_unmatched_anchor_yields_no_chain() {
        let (ranked, traces) = demo_inputs();
        assert!(CausalChain::from_lbra(None, &[], &traces, 0, 0).is_none());
        // A ranking whose presence predictors never occur in any trace.
        let foreign = vec![ranked_bo(42, true, 1.0, 1, 0)];
        assert!(CausalChain::from_lbra(None, &foreign, &traces, 1, 0).is_none());
        // Empty rings: nothing to anchor in.
        let empty = vec![("fail:w0:seed1".to_string(), vec![])];
        assert!(CausalChain::from_lbra(None, &ranked, &empty, 2, 2).is_none());
    }

    #[test]
    fn cap_keeps_anchor_and_failure_end() {
        // One witness with MAX_LINKS + 3 distinct events; the middle is
        // thinned by support but the ends survive.
        let n = MAX_LINKS + 3;
        let mut ranked = vec![ranked_bo(0, true, 1.0, 1, 0)];
        let mut trace = Vec::new();
        for i in 0..n {
            let branch = i as u32;
            if branch != 0 {
                ranked.push(ranked_bo(branch, true, 0.9 - 0.01 * i as f64, 1, 1));
            }
            // Position n..1: branch 0 deepest, branch n-1 at position 1.
            trace.push(entry(n - i, branch, true));
        }
        let traces = vec![("fail:w0:seed1".to_string(), trace)];
        let chain = CausalChain::from_lbra(None, &ranked, &traces, 1, 1).unwrap();
        assert_eq!(chain.links.len(), MAX_LINKS);
        assert_eq!(chain.links[0].event, "br0=true");
        assert_eq!(chain.links[0].role, LinkRole::RootCause);
        let last = chain.links.last().unwrap();
        assert_eq!(last.event, format!("br{}=true", n - 1));
        assert_eq!(last.role, LinkRole::Failure);
    }

    #[test]
    fn lcr_links_ride_mesi_transitions() {
        let loc = SourceLoc::UNKNOWN;
        let e = CoherenceEvent {
            loc,
            state: CoherenceState::Shared,
            access: AccessKind::Store,
        };
        let ranked = vec![RankedEvent {
            event: e,
            polarity: Polarity::Present,
            precision: 1.0,
            recall: 1.0,
            score: 1.0,
            failure_matches: 1,
            success_matches: 0,
            failure_witnesses: vec![],
            success_witnesses: vec![],
        }];
        let traces = vec![(
            "fail:w0:seed1".to_string(),
            vec![DecodedLcrEntry {
                position: 1,
                record: stm_machine::events::CoherenceRecord {
                    pc: 0x10,
                    state: CoherenceState::Shared,
                    access: AccessKind::Store,
                },
                event: e,
            }],
        )];
        let chain = CausalChain::from_lcra(None, &ranked, &traces, 1, 0).unwrap();
        assert_eq!(chain.kind, ChainKind::Lcr);
        let t = mesi_transition(AccessKind::Store, CoherenceState::Shared);
        assert!(chain.links[0].mechanism.starts_with(t.transition));
    }

    #[test]
    fn json_round_trips_and_fingerprint_tracks_content() {
        let (ranked, traces) = demo_inputs();
        let chain = CausalChain::from_lbra(None, &ranked, &traces, 2, 2)
            .unwrap()
            .with_symptom("assertion failed: demo");
        let parsed = Json::parse(&chain.to_json().encode()).expect("valid JSON");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("lbr"));
        assert_eq!(
            parsed.get("symptom").and_then(Json::as_str),
            Some("assertion failed: demo")
        );
        assert_eq!(
            parsed
                .get("links")
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(3)
        );
        let same = CausalChain::from_lbra(None, &ranked, &traces, 2, 2)
            .unwrap()
            .with_symptom("assertion failed: demo");
        assert_eq!(chain.fingerprint(), same.fingerprint());
        let different = CausalChain::from_lbra(None, &ranked, &traces[..1], 2, 2).unwrap();
        assert_ne!(chain.fingerprint(), different.fingerprint());
    }

    #[test]
    fn rank_and_support_helpers() {
        let (ranked, traces) = demo_inputs();
        let chain = CausalChain::from_lbra(None, &ranked, &traces, 2, 2).unwrap();
        assert_eq!(chain.link_rank_of(|l| l.event == "br0=true"), Some(1));
        assert_eq!(chain.link_rank_of(|l| l.event == "br2=true"), Some(3));
        assert_eq!(chain.link_rank_of(|l| l.event == "br9=true"), None);
        assert_eq!(chain.min_link_support(), 0.5);
    }
}
