//! The failure flight recorder: everything one failed run left behind,
//! decoded and bundled into a single shippable artifact.
//!
//! A [`FailureDossier`] is assembled at diagnosis time from a
//! [`RunReport`](stm_machine::report::RunReport): the failure symptom and
//! site, the LBR ring decoded to source branches, the LCR ring decoded to
//! MESI state transitions, the log calls the run executed, and the
//! per-thread last-instruction context (which instruction each thread was
//! about to retire, and why it was not running, when the run ended). It
//! renders as strict JSON — round-trippable through
//! [`stm_telemetry::json::Json::parse`] — and as developer-facing
//! markdown.

use stm_core::logging::{failure_log, failure_log_for, FailureLog};
use stm_core::runner::{FailureSpec, Runner, Workload};
use stm_machine::events::{AccessKind, CoherenceState};
use stm_machine::ir::{LogKind, Program};
use stm_machine::layout::Decoded;
use stm_machine::report::{RunOutcome, RunReport};
use stm_telemetry::json::Json;

/// A MESI state transition implied by one LCR record: the state the access
/// observed, the state the line ends in, and what that means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MesiTransition {
    /// The transition, e.g. `"S -> M"`.
    pub transition: &'static str,
    /// What the transition tells the developer.
    pub meaning: &'static str,
}

/// Decodes the MESI transition implied by an access observing a state.
///
/// The LCR records the state a line was in *right before* the access
/// updated it (Table 2); combined with the access kind, that pins down
/// the transition the coherence protocol performed.
pub fn mesi_transition(access: AccessKind, observed: CoherenceState) -> MesiTransition {
    let (transition, meaning) = match (access, observed) {
        (AccessKind::Load, CoherenceState::Invalid) => (
            "I -> S/E",
            "load miss: the line was absent or had been invalidated by a remote write",
        ),
        (AccessKind::Load, CoherenceState::Shared) => (
            "S -> S",
            "load hit a line concurrently cached by another core",
        ),
        (AccessKind::Load, CoherenceState::Exclusive) => {
            ("E -> E", "load hit a clean line exclusive to this core")
        }
        (AccessKind::Load, CoherenceState::Modified) => {
            ("M -> M", "load hit a line this core had modified")
        }
        (AccessKind::Store, CoherenceState::Invalid) => (
            "I -> M",
            "store miss: ownership was fetched, invalidating any remote copies",
        ),
        (AccessKind::Store, CoherenceState::Shared) => (
            "S -> M",
            "store upgraded a shared line, invalidating the other cached copies",
        ),
        (AccessKind::Store, CoherenceState::Exclusive) => {
            ("E -> M", "store dirtied a clean exclusive line")
        }
        (AccessKind::Store, CoherenceState::Modified) => {
            ("M -> M", "store hit a line already modified locally")
        }
    };
    MesiTransition {
        transition,
        meaning,
    }
}

/// One decoded LBR ring entry of the dossier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LbrLine {
    /// Ring position, 1 = most recent.
    pub position: usize,
    /// Raw `from` address.
    pub from: u64,
    /// Raw `to` address.
    pub to: u64,
    /// Source-level description ("branch b3 at sort.c:12 taken TRUE").
    pub desc: String,
}

/// One decoded LCR ring entry of the dossier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcrLine {
    /// Ring position, 1 = most recent.
    pub position: usize,
    /// Program counter of the access.
    pub pc: u64,
    /// `"load"` or `"store"`.
    pub access: String,
    /// Observed MESI state letter.
    pub state: String,
    /// The implied state transition, e.g. `"S -> M"`.
    pub transition: String,
    /// What the transition means.
    pub meaning: String,
    /// Rendered source location of the access.
    pub loc: String,
}

/// One executed logging call of the dossier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLine {
    /// The static site index.
    pub site: usize,
    /// `"error"`, `"warning"` or `"info"`.
    pub kind: String,
    /// Executing thread.
    pub thread: u32,
    /// Global step at which the call retired.
    pub step: u64,
    /// Rendered source location of the site.
    pub loc: String,
    /// The site's static message.
    pub message: String,
}

/// One thread's last-instruction context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadLine {
    /// The thread.
    pub thread: u32,
    /// Final scheduling state ("done", "blocked on lock 0x40", ...).
    pub status: String,
    /// Function of the last (or next pending) instruction.
    pub func: String,
    /// Rendered source location of that instruction.
    pub loc: String,
    /// Its program counter.
    pub pc: u64,
    /// Global step at which the thread last retired an instruction.
    pub last_step: u64,
}

/// The failure site, when the run ended in a fail-stop failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSite {
    /// The failure kind, rendered ("segmentation fault at 0x40").
    pub kind: String,
    /// The failure thread.
    pub thread: u32,
    /// Function of the failing statement.
    pub func: String,
    /// Rendered source location of the failing statement.
    pub loc: String,
    /// Program counter of the failing statement.
    pub pc: u64,
}

/// The failure flight recorder artifact: one failed run, fully decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDossier {
    /// Program name.
    pub program: String,
    /// The workload that produced the failure.
    pub inputs: Vec<i64>,
    /// Its scheduler seed.
    pub seed: u64,
    /// Human-readable failure symptom (the enhanced log's headline).
    pub symptom: String,
    /// The failure site, when the run failed fail-stop (`None` for runs
    /// whose symptom is an error log followed by a clean exit).
    pub failure: Option<FailureSite>,
    /// Decoded LBR ring, most recent first.
    pub lbr: Vec<LbrLine>,
    /// Decoded LCR ring, most recent first.
    pub lcr: Vec<LcrLine>,
    /// Log calls the run executed, in order.
    pub logs: Vec<LogLine>,
    /// Per-thread last-instruction context, in spawn order.
    pub threads: Vec<ThreadLine>,
    /// Total interpreter steps retired.
    pub steps: u64,
    /// Total branches retired.
    pub branches_retired: u64,
    /// Total data accesses retired.
    pub accesses_retired: u64,
}

fn log_kind_str(kind: LogKind) -> &'static str {
    match kind {
        LogKind::Error => "error",
        LogKind::Warning => "warning",
        LogKind::Info => "info",
    }
}

fn describe_lbr(program: &Program, decoded: Option<Decoded>) -> String {
    match decoded {
        Some(Decoded::SourceBranch {
            branch,
            outcome,
            loc,
            ..
        }) => format!(
            "branch {branch} at {} taken {}",
            program.render_loc(loc),
            if outcome { "TRUE" } else { "FALSE" }
        ),
        Some(Decoded::PlainJump { loc, .. }) => format!("jump at {}", program.render_loc(loc)),
        Some(Decoded::Call { loc, .. }) => format!("call at {}", program.render_loc(loc)),
        Some(Decoded::Return { loc, .. }) => format!("return at {}", program.render_loc(loc)),
        None => "<unmapped>".to_string(),
    }
}

impl FailureDossier {
    /// Assembles the dossier from one failed run.
    ///
    /// When `spec` is given, the rings are taken strictly from the
    /// profile matching that failure specification
    /// ([`failure_log_for`]); otherwise any failure-site profile is used.
    /// Returns `None` when the run collected no failure-site profile
    /// (e.g. it did not fail).
    pub fn collect(
        runner: &Runner,
        report: &RunReport,
        workload: &Workload,
        spec: Option<&FailureSpec>,
    ) -> Option<FailureDossier> {
        let log = match spec {
            Some(spec) => failure_log_for(runner, report, spec)?,
            None => failure_log(runner, report)?,
        };
        Some(FailureDossier::from_parts(runner, report, workload, &log))
    }

    /// Assembles the dossier from an already-built enhanced failure log.
    pub fn from_parts(
        runner: &Runner,
        report: &RunReport,
        workload: &Workload,
        log: &FailureLog,
    ) -> FailureDossier {
        let program = runner.machine().program();
        let failure = match &report.outcome {
            RunOutcome::Failed(f) => Some(FailureSite {
                kind: f.kind.to_string(),
                thread: f.thread.0,
                func: program.function(f.func).name.clone(),
                loc: program.render_loc(f.loc),
                pc: f.pc,
            }),
            RunOutcome::Completed { .. } => None,
        };
        let lbr = log
            .lbr
            .iter()
            .map(|e| LbrLine {
                position: e.position,
                from: e.record.from,
                to: e.record.to,
                desc: describe_lbr(program, e.decoded),
            })
            .collect();
        let lcr = log
            .lcr
            .iter()
            .map(|e| {
                let t = mesi_transition(e.event.access, e.event.state);
                LcrLine {
                    position: e.position,
                    pc: e.record.pc,
                    access: e.event.access.to_string(),
                    state: e.event.state.to_string(),
                    transition: t.transition.to_string(),
                    meaning: t.meaning.to_string(),
                    loc: program.render_loc(e.event.loc),
                }
            })
            .collect();
        let logs = report
            .logs
            .iter()
            .map(|l| {
                let info = &program.log_sites[l.site.index()];
                LogLine {
                    site: l.site.index(),
                    kind: log_kind_str(l.kind).to_string(),
                    thread: l.thread.0,
                    step: l.step,
                    loc: program.render_loc(info.loc),
                    message: info.message.clone(),
                }
            })
            .collect();
        let threads = report
            .thread_states
            .iter()
            .map(|t| ThreadLine {
                thread: t.thread.0,
                status: t.status.to_string(),
                func: program.function(t.func).name.clone(),
                loc: program.render_loc(t.loc),
                pc: t.pc,
                last_step: t.last_step,
            })
            .collect();
        FailureDossier {
            program: program.name.clone(),
            inputs: workload.inputs.clone(),
            seed: workload.seed,
            symptom: log.symptom.clone(),
            failure,
            lbr,
            lcr,
            logs,
            threads,
            steps: report.steps,
            branches_retired: report.branches_retired,
            accesses_retired: report.accesses_retired,
        }
    }

    /// Serializes the dossier as a strict-JSON value.
    #[must_use = "serialization has no side effects; use the returned value"]
    pub fn to_json(&self) -> Json {
        let failure = match &self.failure {
            Some(f) => Json::obj([
                ("kind", Json::Str(f.kind.clone())),
                ("thread", Json::from(f.thread as u64)),
                ("func", Json::Str(f.func.clone())),
                ("loc", Json::Str(f.loc.clone())),
                ("pc", Json::from(f.pc)),
            ]),
            None => Json::Null,
        };
        let lbr = self
            .lbr
            .iter()
            .map(|e| {
                Json::obj([
                    ("position", Json::from(e.position)),
                    ("from", Json::from(e.from)),
                    ("to", Json::from(e.to)),
                    ("desc", Json::Str(e.desc.clone())),
                ])
            })
            .collect();
        let lcr = self
            .lcr
            .iter()
            .map(|e| {
                Json::obj([
                    ("position", Json::from(e.position)),
                    ("pc", Json::from(e.pc)),
                    ("access", Json::Str(e.access.clone())),
                    ("state", Json::Str(e.state.clone())),
                    ("transition", Json::Str(e.transition.clone())),
                    ("meaning", Json::Str(e.meaning.clone())),
                    ("loc", Json::Str(e.loc.clone())),
                ])
            })
            .collect();
        let logs = self
            .logs
            .iter()
            .map(|l| {
                Json::obj([
                    ("site", Json::from(l.site)),
                    ("kind", Json::Str(l.kind.clone())),
                    ("thread", Json::from(l.thread as u64)),
                    ("step", Json::from(l.step)),
                    ("loc", Json::Str(l.loc.clone())),
                    ("message", Json::Str(l.message.clone())),
                ])
            })
            .collect();
        let threads = self
            .threads
            .iter()
            .map(|t| {
                Json::obj([
                    ("thread", Json::from(t.thread as u64)),
                    ("status", Json::Str(t.status.clone())),
                    ("func", Json::Str(t.func.clone())),
                    ("loc", Json::Str(t.loc.clone())),
                    ("pc", Json::from(t.pc)),
                    ("last_step", Json::from(t.last_step)),
                ])
            })
            .collect();
        Json::obj([
            ("program", Json::Str(self.program.clone())),
            (
                "workload",
                Json::obj([
                    (
                        "inputs",
                        Json::Arr(self.inputs.iter().map(|i| Json::Num(*i as f64)).collect()),
                    ),
                    ("seed", Json::from(self.seed)),
                ]),
            ),
            ("symptom", Json::Str(self.symptom.clone())),
            ("failure", failure),
            ("lbr", Json::Arr(lbr)),
            ("lcr", Json::Arr(lcr)),
            ("logs", Json::Arr(logs)),
            ("threads", Json::Arr(threads)),
            (
                "totals",
                Json::obj([
                    ("steps", Json::from(self.steps)),
                    ("branches_retired", Json::from(self.branches_retired)),
                    ("accesses_retired", Json::from(self.accesses_retired)),
                ]),
            ),
        ])
    }

    /// Renders the dossier as developer-facing markdown.
    #[must_use = "rendering has no side effects; use the returned text"]
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## Failure dossier — `{}`", self.program);
        let _ = writeln!(out);
        let _ = writeln!(out, "**Symptom:** {}", self.symptom);
        let _ = writeln!(
            out,
            "**Workload:** inputs `{:?}`, scheduler seed {}",
            self.inputs, self.seed
        );
        if let Some(f) = &self.failure {
            let _ = writeln!(
                out,
                "**Failing instruction:** {} in `{}` at {} (pc {:#x}, thread {})",
                f.kind, f.func, f.loc, f.pc, f.thread
            );
        }
        let _ = writeln!(
            out,
            "**Run totals:** {} steps, {} branches retired, {} accesses retired",
            self.steps, self.branches_retired, self.accesses_retired
        );
        if !self.lbr.is_empty() {
            let _ = writeln!(out, "\n### LBR ring (most recent first)\n");
            let _ = writeln!(out, "| # | from | to | decoded |");
            let _ = writeln!(out, "|---|------|----|---------|");
            for e in &self.lbr {
                let _ = writeln!(
                    out,
                    "| {} | {:#010x} | {:#010x} | {} |",
                    e.position, e.from, e.to, e.desc
                );
            }
        }
        if !self.lcr.is_empty() {
            let _ = writeln!(out, "\n### LCR ring (most recent first)\n");
            let _ = writeln!(out, "| # | pc | access | MESI transition | at | meaning |");
            let _ = writeln!(out, "|---|----|--------|-----------------|----|---------|");
            for e in &self.lcr {
                let _ = writeln!(
                    out,
                    "| {} | {:#010x} | {} | {} | {} | {} |",
                    e.position, e.pc, e.access, e.transition, e.loc, e.meaning
                );
            }
        }
        if !self.logs.is_empty() {
            let _ = writeln!(out, "\n### Log events\n");
            for l in &self.logs {
                let _ = writeln!(
                    out,
                    "- step {}: [{}] `{}` at {} (thread {})",
                    l.step, l.kind, l.message, l.loc, l.thread
                );
            }
        }
        if !self.threads.is_empty() {
            let _ = writeln!(out, "\n### Threads at end of run\n");
            let _ = writeln!(out, "| thread | status | last instruction | last step |");
            let _ = writeln!(out, "|--------|--------|------------------|-----------|");
            for t in &self.threads {
                let _ = writeln!(
                    out,
                    "| {} | {} | `{}` at {} (pc {:#x}) | {} |",
                    t.thread, t.status, t.func, t.loc, t.pc, t.last_step
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::transform::InstrumentOptions;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;

    fn failing_runner() -> (Runner, stm_machine::ids::LogSiteId) {
        let mut pb = ProgramBuilder::new("dossier-demo");
        let main = pb.declare_function("main");
        let site;
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let ok = f.new_block();
            let x = f.read_input(0);
            let c = f.bin(BinOp::Lt, x, 0);
            f.at(9);
            f.br(c, err, ok);
            f.set_block(err);
            f.at(10);
            site = f.log_error("boom");
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.output(x);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        (Runner::instrumented(&p, &InstrumentOptions::lbrlog()), site)
    }

    #[test]
    fn collect_builds_a_dossier_for_a_failing_run() {
        let (runner, site) = failing_runner();
        let w = Workload::new(vec![-3]);
        let report = runner.run(&w);
        let spec = FailureSpec::ErrorLogAt(site);
        let d = FailureDossier::collect(&runner, &report, &w, Some(&spec)).unwrap();
        assert_eq!(d.program, "dossier-demo");
        assert!(!d.lbr.is_empty());
        assert_eq!(d.logs.len(), 1);
        assert_eq!(d.logs[0].message, "boom");
        assert_eq!(d.threads.len(), 1);
        // `exit(1)` ends the run before main returns, so the flight
        // recorder sees the thread still runnable at its exit call.
        assert_eq!(d.threads[0].status, "runnable");
        assert!(d.threads[0].last_step > 0);
    }

    #[test]
    fn successful_run_yields_no_dossier() {
        let (runner, _) = failing_runner();
        let w = Workload::new(vec![5]);
        let report = runner.run(&w);
        assert!(FailureDossier::collect(&runner, &report, &w, None).is_none());
    }

    #[test]
    fn json_round_trips_through_the_strict_parser() {
        let (runner, _) = failing_runner();
        let w = Workload::new(vec![-1]);
        let report = runner.run(&w);
        let d = FailureDossier::collect(&runner, &report, &w, None).unwrap();
        let text = d.to_json().encode();
        let back = Json::parse(&text).expect("strict parse");
        assert_eq!(back, d.to_json());
        assert_eq!(
            back.get("program").and_then(Json::as_str),
            Some("dossier-demo")
        );
        assert!(back.get("lbr").and_then(Json::as_array).is_some());
    }

    #[test]
    fn markdown_mentions_ring_and_threads() {
        let (runner, _) = failing_runner();
        let w = Workload::new(vec![-1]);
        let report = runner.run(&w);
        let d = FailureDossier::collect(&runner, &report, &w, None).unwrap();
        let md = d.to_markdown();
        assert!(md.contains("### LBR ring"), "{md}");
        assert!(md.contains("### Threads at end of run"), "{md}");
        assert!(md.contains("boom"), "{md}");
    }

    #[test]
    fn mesi_transitions_cover_all_combinations() {
        use AccessKind::*;
        use CoherenceState::*;
        assert_eq!(mesi_transition(Store, Shared).transition, "S -> M");
        assert_eq!(mesi_transition(Load, Invalid).transition, "I -> S/E");
        assert_eq!(mesi_transition(Store, Invalid).transition, "I -> M");
        for access in [Load, Store] {
            for state in [Invalid, Shared, Exclusive, Modified] {
                let t = mesi_transition(access, state);
                assert!(!t.meaning.is_empty());
                assert!(t.transition.contains("->"));
            }
        }
    }
}
