//! # stm-forensics — evidence trails for production-run diagnosis
//!
//! The diagnosis pipeline (`stm-core`) answers *what* predicts a failure;
//! this crate preserves *why* — the forensic artifacts a developer (or a
//! regression gate) needs to trust a rank number:
//!
//! * [`dossier`] — the **failure flight recorder**: a [`FailureDossier`]
//!   assembled at diagnosis time from one failed run's [`RunReport`],
//!   bundling the failing instruction, the decoded LBR/LCR ring contents
//!   (branch → source location, coherence event → MESI transition), the
//!   executed log calls and each thread's last-instruction context;
//! * [`report`] — the **explainable ranking report**: the top-K
//!   [`RankedEvent`]s of an LBRA/LCRA diagnosis rendered with their full
//!   evidence (precision/recall split, match counts, supporting run ids)
//!   as strict JSON and as markdown with a "why ranked here" section;
//! * [`chain`] — the **causal-chain reconstructor**: from the top-ranked
//!   predictor, a backward walk through the failing witnesses' decoded
//!   ring snapshots to an ordered root-cause → propagation → failure
//!   [`CausalChain`] whose every link carries typed evidence (witness
//!   positions, the branch edge or MESI transition it rides on, and a
//!   precision/recall support score against the passing population);
//! * [`diff`] — the **regression tracker**: structural comparison of two
//!   `results/BENCH_*.json` generations with configurable tolerance,
//!   behind the `bench_diff` binary the CI gate runs.
//!
//! Everything serializes through [`stm_telemetry::json`] — the build is
//! offline, so no serde.
//!
//! [`RunReport`]: stm_machine::report::RunReport
//! [`RankedEvent`]: stm_core::ranking::RankedEvent
//! [`FailureDossier`]: dossier::FailureDossier
//! [`CausalChain`]: chain::CausalChain

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chain;
pub mod diff;
pub mod dossier;
pub mod report;

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::chain::{CausalChain, ChainKind, ChainLink, LinkRole, WitnessMark};
    pub use crate::diff::{diff_benchmarks, BenchDiff, Delta, DiffOptions, Direction};
    pub use crate::dossier::{mesi_transition, FailureDossier, MesiTransition};
    pub use crate::report::{EvidenceRow, ForensicReport, RankingReport};
}

pub use prelude::*;
