//! The benchmark regression tracker: structural comparison of two
//! `results/BENCH_*.json` generations.
//!
//! Every harness emits `{harness, benchmarks: {id: {extras...,
//! counters: {...}}}, totals}` through
//! `stm_bench::MetricsEmitter`. This module diffs two such documents
//! metric by metric under a uniform **higher-is-worse** convention —
//! ranks, ring positions, overhead percentages and telemetry counters all
//! degrade upward — with a configurable relative tolerance. The
//! `bench_diff` binary wraps it as the CI regression gate.
//!
//! Two extensions to that convention:
//!
//! * metrics whose name ends in **`_floor`** are **lower-is-worse**: a
//!   drop beyond tolerance regresses, growth improves. This is how
//!   throughput numbers (`runs_per_sec_floor`) and parallel speedups
//!   (`speedup_t4_x1000_floor`) get a regression floor without inverting
//!   them into opaque reciprocals;
//! * numeric metrics at the **document top level** (outside `harness`,
//!   `benchmarks` and `totals`) are compared too, under the pseudo
//!   benchmark name `(top-level)` — that is where harnesses put
//!   whole-document headlines like `bench_scaling`'s best runs/sec.

use stm_telemetry::json::Json;

/// Tolerances for the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative tolerance, in percent of the baseline value: deltas within
    /// `±tolerance_pct` are reported as unchanged.
    pub tolerance_pct: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance_pct: 10.0,
        }
    }
}

/// Which way a metric moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The metric got worse (grew beyond tolerance, or a result was lost).
    Regression,
    /// The metric got better (shrank beyond tolerance, or a result
    /// appeared where the baseline had none).
    Improvement,
}

/// One metric that moved beyond tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// The benchmark the metric belongs to.
    pub benchmark: String,
    /// Metric name; counter metrics are prefixed `counters.`.
    pub metric: String,
    /// Baseline value (`None` = the baseline had no result, e.g. a `null`
    /// rank).
    pub before: Option<f64>,
    /// Candidate value (`None` = the candidate lost the result).
    pub after: Option<f64>,
    /// Relative change in percent, when both sides are numeric and the
    /// baseline is nonzero.
    pub change_pct: Option<f64>,
    /// Regression or improvement.
    pub direction: Direction,
}

impl Delta {
    fn render_value(v: Option<f64>) -> String {
        match v {
            Some(x) if x == x.trunc() && x.abs() < 9.0e15 => format!("{}", x as i64),
            Some(x) => format!("{x}"),
            None => "null".to_string(),
        }
    }

    /// One-line rendering for the gate's output.
    pub fn render(&self) -> String {
        let arrow = match self.direction {
            Direction::Regression => "REGRESSION",
            Direction::Improvement => "improvement",
        };
        let pct = match self.change_pct {
            Some(p) => format!(" ({p:+.1}%)"),
            None => String::new(),
        };
        format!(
            "{arrow}: {}/{}: {} -> {}{pct}",
            self.benchmark,
            self.metric,
            Delta::render_value(self.before),
            Delta::render_value(self.after),
        )
    }
}

/// The outcome of comparing two benchmark-result generations.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Harness name of the baseline document.
    pub harness: String,
    /// Numeric metrics compared (including unchanged ones).
    pub compared: usize,
    /// Metrics that moved beyond tolerance, regressions first.
    pub deltas: Vec<Delta>,
}

impl BenchDiff {
    /// The regressions only.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas
            .iter()
            .filter(|d| d.direction == Direction::Regression)
    }

    /// `true` when any metric regressed.
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Renders the full diff as the gate's report text.
    #[must_use = "rendering has no side effects; use the returned text"]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let regressions = self.regressions().count();
        let mut out = format!(
            "bench_diff: harness `{}`: {} metrics compared, {} regression(s), {} improvement(s)\n",
            self.harness,
            self.compared,
            regressions,
            self.deltas.len() - regressions,
        );
        for d in &self.deltas {
            let _ = writeln!(out, "  {}", d.render());
        }
        out
    }
}

/// A numeric-or-missing metric value. `Err(())` marks non-numeric values
/// (names, strings) that are excluded from comparison.
fn numeric(v: &Json) -> Result<Option<f64>, ()> {
    match v {
        Json::Num(n) => Ok(Some(*n)),
        Json::Null => Ok(None),
        _ => Err(()),
    }
}

/// Compares one metric, recording a delta when it moved beyond
/// tolerance. Metrics named `*_floor` are lower-is-worse; everything
/// else is higher-is-worse.
fn compare_metric(
    benchmark: &str,
    metric: &str,
    before: Option<f64>,
    after: Option<f64>,
    opts: &DiffOptions,
    deltas: &mut Vec<Delta>,
) {
    let lower_is_worse = metric.ends_with("_floor");
    let push = |deltas: &mut Vec<Delta>, direction, change_pct| {
        deltas.push(Delta {
            benchmark: benchmark.to_string(),
            metric: metric.to_string(),
            before,
            after,
            change_pct,
            direction,
        });
    };
    match (before, after) {
        (None, None) => {}
        // A result where the baseline had none (e.g. a rank for a
        // previously undiagnosed benchmark) is an improvement.
        (None, Some(_)) => push(deltas, Direction::Improvement, None),
        // A lost result (rank became null) is always a regression.
        (Some(_), None) => push(deltas, Direction::Regression, None),
        (Some(b), Some(a)) => {
            let within = if b == 0.0 {
                a == 0.0
            } else {
                ((a - b) / b.abs() * 100.0).abs() <= opts.tolerance_pct
            };
            if within {
                return;
            }
            let change_pct = (b != 0.0).then(|| (a - b) / b.abs() * 100.0);
            let worse = if lower_is_worse { a < b } else { a > b };
            if worse {
                push(deltas, Direction::Regression, change_pct);
            } else {
                push(deltas, Direction::Improvement, change_pct);
            }
        }
    }
}

/// Diffs two `BENCH_*.json` documents (baseline vs. candidate).
///
/// Every numeric (or `null`) metric of every baseline benchmark is
/// compared — per-benchmark extras (ranks, positions, overheads) and the
/// nested `counters` object alike — plus every numeric metric at the
/// baseline's document top level (whole-document headlines such as
/// `runs_per_sec_floor`), reported under the pseudo benchmark
/// `(top-level)`. Benchmarks missing from the candidate regress;
/// benchmarks new in the candidate are ignored (they have no baseline to
/// regress against). The `totals` object is skipped: it aggregates the
/// per-benchmark counters already compared.
pub fn diff_benchmarks(
    baseline: &Json,
    candidate: &Json,
    opts: &DiffOptions,
) -> Result<BenchDiff, String> {
    let harness = baseline
        .get("harness")
        .and_then(Json::as_str)
        .unwrap_or("<unknown>")
        .to_string();
    let base_benches = baseline
        .get("benchmarks")
        .and_then(Json::as_object)
        .ok_or("baseline has no `benchmarks` object")?;
    let cand_benches = candidate
        .get("benchmarks")
        .and_then(Json::as_object)
        .ok_or("candidate has no `benchmarks` object")?;

    let mut deltas = Vec::new();
    let mut compared = 0usize;
    for (id, base) in base_benches {
        let Some(cand) = cand_benches.get(id) else {
            deltas.push(Delta {
                benchmark: id.clone(),
                metric: "(benchmark)".to_string(),
                before: None,
                after: None,
                change_pct: None,
                direction: Direction::Regression,
            });
            continue;
        };
        let base_obj = base
            .as_object()
            .ok_or_else(|| format!("baseline benchmark `{id}` is not an object"))?;
        for (metric, bval) in base_obj {
            if metric == "counters" {
                let empty = std::collections::BTreeMap::new();
                let base_counters = bval.as_object().unwrap_or(&empty);
                let cand_counters = cand
                    .get("counters")
                    .and_then(Json::as_object)
                    .unwrap_or(&empty);
                for (name, cb) in base_counters {
                    let Ok(before) = numeric(cb) else { continue };
                    let after = match cand_counters.get(name) {
                        Some(v) => numeric(v).unwrap_or(None),
                        None => None,
                    };
                    compared += 1;
                    compare_metric(
                        id,
                        &format!("counters.{name}"),
                        before,
                        after,
                        opts,
                        &mut deltas,
                    );
                }
                continue;
            }
            let Ok(before) = numeric(bval) else { continue };
            let after = match cand.get(metric) {
                Some(v) => numeric(v).unwrap_or(None),
                None => None,
            };
            compared += 1;
            compare_metric(id, metric, before, after, opts, &mut deltas);
        }
    }
    if let Some(top) = baseline.as_object() {
        for (metric, bval) in top {
            if matches!(metric.as_str(), "harness" | "benchmarks" | "totals") {
                continue;
            }
            let Ok(before) = numeric(bval) else { continue };
            let after = match candidate.get(metric) {
                Some(v) => numeric(v).unwrap_or(None),
                None => None,
            };
            compared += 1;
            compare_metric("(top-level)", metric, before, after, opts, &mut deltas);
        }
    }
    deltas.sort_by_key(|d| d.direction == Direction::Improvement);
    Ok(BenchDiff {
        harness,
        compared,
        deltas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(body: &str) -> Json {
        Json::parse(body).expect("test doc parses")
    }

    fn baseline() -> Json {
        doc(r#"{"harness":"table4","benchmarks":{
                "sort":{"rank":2,"position":1,"name":"sort",
                        "counters":{"runner.class.success":10}},
                "apache4":{"rank":3,"position":null,
                        "counters":{"runner.class.success":8}}
            },"totals":{"runner.class.success":18}}"#)
    }

    #[test]
    fn identical_inputs_produce_no_deltas() {
        let b = baseline();
        let d = diff_benchmarks(&b, &b, &DiffOptions::default()).unwrap();
        assert!(!d.has_regressions());
        assert!(d.deltas.is_empty());
        assert_eq!(d.harness, "table4");
        assert!(d.compared >= 5);
    }

    #[test]
    fn rank_growth_beyond_tolerance_regresses() {
        let b = baseline();
        let c = doc(r#"{"harness":"table4","benchmarks":{
                "sort":{"rank":5,"position":1,"name":"sort",
                        "counters":{"runner.class.success":10}},
                "apache4":{"rank":3,"position":null,
                        "counters":{"runner.class.success":8}}
            },"totals":{}}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.has_regressions());
        let r = d.regressions().next().unwrap();
        assert_eq!(r.benchmark, "sort");
        assert_eq!(r.metric, "rank");
        assert_eq!(r.before, Some(2.0));
        assert_eq!(r.after, Some(5.0));
        assert_eq!(r.change_pct, Some(150.0));
        assert!(r.render().contains("REGRESSION"), "{}", r.render());
    }

    #[test]
    fn shrinking_metric_is_an_improvement_not_a_regression() {
        let b = baseline();
        let c = doc(r#"{"harness":"table4","benchmarks":{
                "sort":{"rank":1,"position":1,"name":"sort",
                        "counters":{"runner.class.success":10}},
                "apache4":{"rank":3,"position":null,
                        "counters":{"runner.class.success":8}}
            },"totals":{}}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(!d.has_regressions());
        assert_eq!(d.deltas.len(), 1);
        assert_eq!(d.deltas[0].direction, Direction::Improvement);
    }

    #[test]
    fn lost_result_regresses_and_gained_result_improves() {
        let b = baseline();
        let c = doc(r#"{"harness":"table4","benchmarks":{
                "sort":{"rank":null,"position":1,"name":"sort",
                        "counters":{"runner.class.success":10}},
                "apache4":{"rank":3,"position":4,
                        "counters":{"runner.class.success":8}}
            },"totals":{}}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        let lost = d
            .deltas
            .iter()
            .find(|x| x.benchmark == "sort" && x.metric == "rank")
            .unwrap();
        assert_eq!(lost.direction, Direction::Regression);
        assert_eq!(lost.after, None);
        let gained = d
            .deltas
            .iter()
            .find(|x| x.benchmark == "apache4" && x.metric == "position")
            .unwrap();
        assert_eq!(gained.direction, Direction::Improvement);
    }

    #[test]
    fn within_tolerance_counter_noise_is_ignored() {
        let b = baseline();
        let c = doc(r#"{"harness":"table4","benchmarks":{
                "sort":{"rank":2,"position":1,"name":"sort",
                        "counters":{"runner.class.success":11}},
                "apache4":{"rank":3,"position":null,
                        "counters":{"runner.class.success":8}}
            },"totals":{}}"#);
        // +10% on the counter: inside the default tolerance.
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.deltas.is_empty(), "{:?}", d.deltas);
        // A tighter gate flags it.
        let tight = DiffOptions { tolerance_pct: 1.0 };
        let d = diff_benchmarks(&b, &c, &tight).unwrap();
        assert!(d.has_regressions());
        assert_eq!(
            d.regressions().next().unwrap().metric,
            "counters.runner.class.success"
        );
    }

    #[test]
    fn missing_benchmark_regresses() {
        let b = baseline();
        let c = doc(r#"{"harness":"table4","benchmarks":{
            "sort":{"rank":2,"position":1,"name":"sort",
                    "counters":{"runner.class.success":10}}
        },"totals":{}}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.has_regressions());
        let r = d.regressions().next().unwrap();
        assert_eq!(r.benchmark, "apache4");
        assert_eq!(r.metric, "(benchmark)");
    }

    #[test]
    fn malformed_documents_error_out() {
        let b = baseline();
        let bad = doc(r#"{"harness":"x"}"#);
        assert!(diff_benchmarks(&bad, &b, &DiffOptions::default()).is_err());
        assert!(diff_benchmarks(&b, &bad, &DiffOptions::default()).is_err());
    }

    #[test]
    fn floor_metric_regresses_downward_and_improves_upward() {
        let b = doc(r#"{"harness":"scaling","benchmarks":{
                "apache4":{"speedup_t4_x1000_floor":1000,"counters":{}}
            }}"#);
        // A drop beyond tolerance is the regression direction for floors.
        let c = doc(r#"{"harness":"scaling","benchmarks":{
                "apache4":{"speedup_t4_x1000_floor":700,"counters":{}}
            }}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.has_regressions());
        let r = d.regressions().next().unwrap();
        assert_eq!(r.metric, "speedup_t4_x1000_floor");
        assert_eq!(r.change_pct, Some(-30.0));
        // Growth is an improvement, and within-tolerance drift is quiet.
        let c = doc(r#"{"harness":"scaling","benchmarks":{
                "apache4":{"speedup_t4_x1000_floor":1400,"counters":{}}
            }}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(!d.has_regressions());
        assert_eq!(d.deltas.len(), 1);
        let c = doc(r#"{"harness":"scaling","benchmarks":{
                "apache4":{"speedup_t4_x1000_floor":950,"counters":{}}
            }}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.deltas.is_empty(), "{:?}", d.deltas);
    }

    #[test]
    fn lost_floor_metric_is_a_regression() {
        let b = doc(r#"{"harness":"scaling","benchmarks":{
                "apache4":{"speedup_t4_x1000_floor":1000,"counters":{}}
            }}"#);
        let c = doc(r#"{"harness":"scaling","benchmarks":{
                "apache4":{"counters":{}}
            }}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.has_regressions());
        assert_eq!(d.regressions().next().unwrap().after, None);
    }

    #[test]
    fn top_level_metrics_are_gated() {
        let b = doc(r#"{"harness":"scaling","benchmarks":{},
                        "runs_per_sec_floor":100000}"#);
        // Falling through the floor regresses...
        let c = doc(r#"{"harness":"scaling","benchmarks":{},
                        "runs_per_sec_floor":50000}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.has_regressions());
        let r = d.regressions().next().unwrap();
        assert_eq!(r.benchmark, "(top-level)");
        assert_eq!(r.metric, "runs_per_sec_floor");
        // ... so does losing the headline entirely ...
        let c = doc(r#"{"harness":"scaling","benchmarks":{}}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.has_regressions());
        // ... while clearing it comfortably stays quiet or improves.
        let c = doc(r#"{"harness":"scaling","benchmarks":{},
                        "runs_per_sec_floor":180000}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(!d.has_regressions());
    }

    #[test]
    fn top_level_strings_and_candidate_extras_are_ignored() {
        // `harness` is a string, `totals` is structural, and candidate
        // keys absent from the baseline have nothing to regress against.
        let b = doc(r#"{"harness":"scaling","benchmarks":{},"totals":{"x":1}}"#);
        let c = doc(r#"{"harness":"scaling","benchmarks":{},
                        "runs_per_sec":123456,"totals":{"x":99}}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.deltas.is_empty(), "{:?}", d.deltas);
        assert_eq!(d.compared, 0);
    }

    #[test]
    fn regressions_sort_before_improvements() {
        let b = baseline();
        let c = doc(r#"{"harness":"table4","benchmarks":{
                "sort":{"rank":1,"position":1,"name":"sort",
                        "counters":{"runner.class.success":10}},
                "apache4":{"rank":9,"position":null,
                        "counters":{"runner.class.success":8}}
            },"totals":{}}"#);
        let d = diff_benchmarks(&b, &c, &DiffOptions::default()).unwrap();
        assert_eq!(d.deltas.len(), 2);
        assert_eq!(d.deltas[0].direction, Direction::Regression);
        assert_eq!(d.deltas[1].direction, Direction::Improvement);
    }
}
