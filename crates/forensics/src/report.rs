//! The explainable ranking report: the top-K predictors of a diagnosis
//! together with the evidence that produced each rank.
//!
//! A rank number alone is not actionable (a developer cannot tell a
//! confident rank #1 from a coin-flip rank #1); a [`RankingReport`] keeps
//! the precision/recall split, the match counts and the ids of the runs
//! that voted for — and against — every shown predictor, and renders them
//! as strict JSON and as markdown with a "why ranked here" section.

use stm_core::diagnose::{DiagnosisStats, LbraDiagnosis, LcraDiagnosis};
use stm_core::profile::{BranchOutcome, CoherenceEvent};
use stm_core::ranking::{Polarity, RankedEvent};
use stm_machine::ir::Program;
use stm_telemetry::json::Json;

use crate::chain::CausalChain;
use crate::dossier::FailureDossier;

/// One ranked predictor with its full evidence trail.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceRow {
    /// 1-based rank.
    pub rank: usize,
    /// Source-level label ("branch b1 at m.c:9 taken TRUE").
    pub label: String,
    /// `"present"` or `"absent"`.
    pub polarity: String,
    /// Prediction precision `|F∧e| / |e|`.
    pub precision: f64,
    /// Prediction recall `|F∧e| / |F|`.
    pub recall: f64,
    /// Harmonic mean of the two — the ranking key.
    pub score: f64,
    /// Failure runs matching the predictor.
    pub failure_matches: usize,
    /// Success runs matching the predictor.
    pub success_matches: usize,
    /// Ids of the failure runs that voted for the predictor.
    pub failure_witnesses: Vec<String>,
    /// Ids of the success runs that dilute its precision.
    pub success_witnesses: Vec<String>,
}

impl EvidenceRow {
    fn from_ranked<E>(rank: usize, label: String, r: &RankedEvent<E>) -> EvidenceRow {
        EvidenceRow {
            rank,
            label,
            polarity: match r.polarity {
                Polarity::Present => "present".to_string(),
                Polarity::Absent => "absent".to_string(),
            },
            precision: r.precision,
            recall: r.recall,
            score: r.score,
            failure_matches: r.failure_matches,
            success_matches: r.success_matches,
            failure_witnesses: r.failure_witnesses.clone(),
            success_witnesses: r.success_witnesses.clone(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("rank", Json::from(self.rank)),
            ("label", Json::Str(self.label.clone())),
            ("polarity", Json::Str(self.polarity.clone())),
            ("precision", Json::from(self.precision)),
            ("recall", Json::from(self.recall)),
            ("score", Json::from(self.score)),
            ("failure_matches", Json::from(self.failure_matches)),
            ("success_matches", Json::from(self.success_matches)),
            (
                "failure_witnesses",
                Json::Arr(
                    self.failure_witnesses
                        .iter()
                        .map(|w| Json::Str(w.clone()))
                        .collect(),
                ),
            ),
            (
                "success_witnesses",
                Json::Arr(
                    self.success_witnesses
                        .iter()
                        .map(|w| Json::Str(w.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// The "why ranked here" explanation, in prose.
    fn why(&self, failure_runs: usize) -> String {
        let presence = match self.polarity.as_str() {
            "absent" => "missing from",
            _ => "seen in",
        };
        let mut s = format!(
            "{} {} of {} failing runs (recall {:.2}); of the {} runs matching it, {} failed (precision {:.2}); harmonic mean {:.3}.",
            presence,
            self.failure_matches,
            failure_runs,
            self.recall,
            self.failure_matches + self.success_matches,
            self.failure_matches,
            self.precision,
            self.score,
        );
        if self.success_matches == 0 {
            s.push_str(" No successful run matches it.");
        }
        s
    }
}

/// The explainable report of one LBRA/LCRA diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingReport {
    /// `"LBRA"` or `"LCRA"`.
    pub system: String,
    /// The benchmark or program under diagnosis.
    pub benchmark: String,
    /// Failure runs the diagnosis consumed (its diagnosis latency).
    pub failure_runs: usize,
    /// Success runs consumed.
    pub success_runs: usize,
    /// Total runs executed, including excluded ones.
    pub total_runs: usize,
    /// Total predictors the diagnosis scored.
    pub total_events: usize,
    /// The tie-breaking order behind the rank numbers, most significant
    /// first.
    pub tie_break: Vec<String>,
    /// The top-K predictors with their evidence.
    pub rows: Vec<EvidenceRow>,
}

fn branch_label(program: &Program, e: &BranchOutcome) -> String {
    let loc = program
        .branches
        .iter()
        .find(|b| b.id == e.branch)
        .map(|b| program.render_loc(b.loc))
        .unwrap_or_else(|| "<unknown>".to_string());
    format!(
        "branch {} at {} taken {}",
        e.branch,
        loc,
        if e.outcome { "TRUE" } else { "FALSE" }
    )
}

fn coherence_label(program: &Program, e: &CoherenceEvent) -> String {
    format!(
        "{} at {} observed {}",
        e.access,
        program.render_loc(e.loc),
        e.state
    )
}

impl RankingReport {
    fn build<E>(
        system: &str,
        benchmark: &str,
        ranked: &[RankedEvent<E>],
        stats: DiagnosisStats,
        top_k: usize,
        label: impl Fn(&E) -> String,
    ) -> RankingReport {
        RankingReport {
            system: system.to_string(),
            benchmark: benchmark.to_string(),
            failure_runs: stats.failure_runs_used,
            success_runs: stats.success_runs_used,
            total_runs: stats.total_runs,
            total_events: ranked.len(),
            tie_break: LcraDiagnosis::tie_break_order()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows: ranked
                .iter()
                .take(top_k)
                .enumerate()
                .map(|(i, r)| EvidenceRow::from_ranked(i + 1, label(&r.event), r))
                .collect(),
        }
    }

    /// Builds the report from an LBRA diagnosis.
    pub fn from_lbra(
        program: &Program,
        benchmark: &str,
        d: &LbraDiagnosis,
        top_k: usize,
    ) -> RankingReport {
        RankingReport::build("LBRA", benchmark, &d.ranked, d.stats, top_k, |e| {
            branch_label(program, e)
        })
    }

    /// Builds the report from an LCRA diagnosis.
    pub fn from_lcra(
        program: &Program,
        benchmark: &str,
        d: &LcraDiagnosis,
        top_k: usize,
    ) -> RankingReport {
        RankingReport::build("LCRA", benchmark, &d.ranked, d.stats, top_k, |e| {
            coherence_label(program, e)
        })
    }

    /// Serializes the report as a strict-JSON value.
    #[must_use = "serialization has no side effects; use the returned value"]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("system", Json::Str(self.system.clone())),
            ("benchmark", Json::Str(self.benchmark.clone())),
            (
                "runs",
                Json::obj([
                    ("failure", Json::from(self.failure_runs)),
                    ("success", Json::from(self.success_runs)),
                    ("total", Json::from(self.total_runs)),
                ]),
            ),
            ("total_events", Json::from(self.total_events)),
            (
                "tie_break",
                Json::Arr(
                    self.tie_break
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "events",
                Json::Arr(self.rows.iter().map(EvidenceRow::to_json).collect()),
            ),
        ])
    }

    /// Renders the report as markdown with a "why ranked here" section
    /// per predictor.
    #[must_use = "rendering has no side effects; use the returned text"]
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## {} diagnosis report — `{}`",
            self.system, self.benchmark
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Consumed {} failing and {} passing runs ({} runs total); \
             {} predictors scored, top {} shown.",
            self.failure_runs,
            self.success_runs,
            self.total_runs,
            self.total_events,
            self.rows.len()
        );
        let _ = writeln!(out, "\nTie-breaking order behind equal scores:");
        for (i, t) in self.tie_break.iter().enumerate() {
            let _ = writeln!(out, "{}. {}", i + 1, t);
        }
        for row in &self.rows {
            let _ = writeln!(
                out,
                "\n### #{} · {} ({})\n",
                row.rank, row.label, row.polarity
            );
            let _ = writeln!(
                out,
                "| precision | recall | score | failure matches | success matches |"
            );
            let _ = writeln!(
                out,
                "|-----------|--------|-------|-----------------|-----------------|"
            );
            let _ = writeln!(
                out,
                "| {:.2} | {:.2} | {:.3} | {} | {} |",
                row.precision, row.recall, row.score, row.failure_matches, row.success_matches
            );
            let _ = writeln!(out, "\n**Why ranked here:** {}", row.why(self.failure_runs));
            if !row.failure_witnesses.is_empty() {
                let _ = writeln!(
                    out,
                    "\nSupporting failure runs: {}",
                    row.failure_witnesses
                        .iter()
                        .map(|w| format!("`{w}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            if !row.success_witnesses.is_empty() {
                let _ = writeln!(
                    out,
                    "\nContradicting success runs: {}",
                    row.success_witnesses
                        .iter()
                        .map(|w| format!("`{w}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
        out
    }
}

/// A complete forensic artifact for one diagnosed failure: the flight
/// recorder dossier of one failing run, the explainable ranking report
/// of the statistical diagnosis, and (when one reconstructs) the causal
/// chain linking the top-ranked predictor to the failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicReport {
    /// The flight-recorder dossier.
    pub dossier: FailureDossier,
    /// The ranking evidence.
    pub ranking: RankingReport,
    /// The evidence-linked root-cause → propagation → failure storyline;
    /// `None` when no chain reconstructs (empty ranking, or no failing
    /// trace contains the anchor predictor).
    pub chain: Option<CausalChain>,
}

impl ForensicReport {
    /// Serializes all sections as one strict-JSON document. The `chain`
    /// key is always present (`null` when no chain reconstructed).
    #[must_use = "serialization has no side effects; use the returned value"]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("dossier", self.dossier.to_json()),
            ("ranking", self.ranking.to_json()),
            (
                "chain",
                self.chain
                    .as_ref()
                    .map(CausalChain::to_json)
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    /// Renders all sections as one markdown document.
    #[must_use = "rendering has no side effects; use the returned text"]
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# Forensic report — `{}`\n\n{}\n{}",
            self.ranking.benchmark,
            self.dossier.to_markdown(),
            self.ranking.to_markdown()
        );
        if let Some(chain) = &self.chain {
            out.push('\n');
            out.push_str(&chain.to_markdown());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::diagnose::LbraDiagnosis;
    use stm_core::engine::{DiagnosisSession, ProfileKind};
    use stm_core::runner::{FailureSpec, Runner, Workload};
    use stm_core::transform::InstrumentOptions;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;

    fn diagnosed() -> (Program, LbraDiagnosis) {
        let mut pb = ProgramBuilder::new("report-demo");
        let main = pb.declare_function("main");
        let site;
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let ok = f.new_block();
            let x = f.read_input(0);
            let c = f.bin(BinOp::Lt, x, 0);
            f.at(9);
            f.br(c, err, ok);
            f.set_block(err);
            f.at(10);
            site = f.log_error("negative");
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.output(x);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let runner =
            Runner::instrumented(&p, &InstrumentOptions::lbra_reactive(vec![site], vec![]));
        let failing: Vec<Workload> = (0..4).map(|i| Workload::new(vec![-1 - i])).collect();
        let passing: Vec<Workload> = (0..4).map(|i| Workload::new(vec![1 + i])).collect();
        let d = DiagnosisSession::from_runner(&runner)
            .failure(FailureSpec::ErrorLogAt(site))
            .failing(failing)
            .passing(passing)
            .profile_kind(ProfileKind::Lbr)
            .failure_profiles(4)
            .success_profiles(4)
            .max_runs(50)
            .collect()
            .expect("collection")
            .lbra();
        (p, d)
    }

    #[test]
    fn report_carries_precision_recall_and_witnesses() {
        let (p, d) = diagnosed();
        let r = RankingReport::from_lbra(&p, "demo", &d, 5);
        assert_eq!(r.system, "LBRA");
        assert_eq!(r.failure_runs, 4);
        assert!(!r.rows.is_empty());
        let top = &r.rows[0];
        assert_eq!(top.rank, 1);
        assert!(top.score > 0.0);
        assert_eq!(top.failure_witnesses.len(), top.failure_matches);
    }

    #[test]
    fn top_k_truncates_but_total_counts_everything() {
        let (p, d) = diagnosed();
        let r = RankingReport::from_lbra(&p, "demo", &d, 1);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.total_events, d.ranked.len());
        assert!(r.total_events >= 1);
    }

    #[test]
    fn json_round_trips_and_names_the_evidence() {
        let (p, d) = diagnosed();
        let r = RankingReport::from_lbra(&p, "demo", &d, 3);
        let text = r.to_json().encode();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, r.to_json());
        let events = back.get("events").and_then(Json::as_array).unwrap();
        assert!(!events.is_empty());
        assert!(events[0].get("precision").and_then(Json::as_f64).is_some());
        assert!(events[0]
            .get("failure_witnesses")
            .and_then(Json::as_array)
            .is_some());
    }

    #[test]
    fn markdown_explains_every_shown_rank() {
        let (p, d) = diagnosed();
        let r = RankingReport::from_lbra(&p, "demo", &d, 3);
        let md = r.to_markdown();
        assert!(md.contains("Why ranked here"), "{md}");
        assert!(md.contains("precision"), "{md}");
        assert!(md.contains("branch"), "{md}");
        for row in &r.rows {
            assert!(md.contains(&format!("#{}", row.rank)), "{md}");
        }
    }
}
