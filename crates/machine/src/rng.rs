//! A tiny deterministic PRNG (SplitMix64).
//!
//! The scheduler, the sampling countdowns and the workload generators all
//! need reproducible pseudo-randomness: given the same seed, a run must
//! replay identically on every platform and in every future version of this
//! crate. External RNG crates make no such cross-version guarantee, so we
//! pin the generator to SplitMix64, whose output sequence is fully specified
//! by its reference implementation.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use stm_machine::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams; the same seed always gives the same stream.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds used by the scheduler (thread counts).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a geometric-like countdown with the given mean, always at
    /// least 1. Used to implement the CBI-style `1/rate` sampling.
    pub fn next_countdown(&mut self, mean: u32) -> u32 {
        if mean <= 1 {
            return 1;
        }
        // Sample from a geometric distribution with success probability
        // 1/mean using inverse-transform on a uniform double.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let p = 1.0 / mean as f64;
        let draw = (u.max(f64::MIN_POSITIVE).ln() / (1.0 - p).ln()).ceil();
        draw.max(1.0).min(u32::MAX as f64) as u32
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical SplitMix64.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn countdown_is_at_least_one() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(rng.next_countdown(100) >= 1);
        }
    }

    #[test]
    fn countdown_mean_is_roughly_rate() {
        let mut rng = SplitMix64::new(77);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| rng.next_countdown(100) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((80.0..120.0).contains(&mean), "mean countdown was {mean}");
    }

    #[test]
    fn streams_diverge_for_different_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
