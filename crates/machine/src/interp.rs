//! The deterministic multithreaded interpreter.
//!
//! [`Machine`] owns a validated [`Program`] plus its address [`Layout`] and
//! executes workloads under a [`RunConfig`], driving a [`Hardware`]
//! implementation with branch-retirement and cache-access events — exactly
//! the event streams LBR and LCR consume.
//!
//! Determinism: given the same `(program, inputs, config)` triple, a run
//! replays identically — the scheduler and the sampling countdowns use the
//! seeded [`SplitMix64`].
//!
//! ## The hot path
//!
//! Loading a program pre-lowers the block-structured IR into a flat
//! instruction stream (see [`crate::flat`]): per-step dispatch is a single
//! indexed fetch plus one `match` over pre-decoded operands, with branch
//! targets, call entry addresses and const-folded rvalues resolved at load
//! time. Hardware events are buffered and pushed in batches
//! ([`Hardware::on_batch`]) instead of one virtual call per event; the
//! buffer is always flushed before a [`Hardware::ctl`] call and at run end,
//! so the hardware observes exactly the per-event order. Per-run state
//! (memory tables, thread stacks, register arenas, the event buffer) lives
//! in a caller-owned [`RunScratch`] that [`Machine::run_reusing`] recycles
//! across runs, eliminating per-run allocation storms on the collection
//! path.

use crate::events::{
    AccessEvent, AccessKind, BranchEvent, BranchKind, CtlResponse, Hardware, HwCtlOp, HwEvent, Ring,
};
use crate::flat::{FlatProgram, Op, Val};
use crate::ids::{BlockId, CoreId, FuncId, ThreadId};
use crate::ir::{BinOp, Program, SourceLoc, UnOp, STACK_BASE, STACK_STRIDE};
use crate::layout::{Layout, SLOT};
use crate::memory::{MemFault, Memory, RegionKind};
use crate::report::{
    Failure, FailureKind, LockWaitEvent, LogEvent, ProfileData, ProfileEvent, RunOutcome,
    RunReport, SampleEvent, StackSample,
};
use crate::rng::SplitMix64;
use crate::sched::{SchedPolicy, Scheduler};

/// Configuration of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// Watchdog step budget; exceeding it reports a [`FailureKind::Hang`].
    pub max_steps: u64,
    /// Scheduling policy.
    pub scheduler: SchedPolicy,
    /// Number of simulated cores; threads map to cores round-robin.
    pub num_cores: u32,
    /// Mean period of the `Sample` countdown (the CBI `1/rate`).
    pub sample_mean: u32,
    /// Seed of the sampling countdown PRNG.
    pub sample_seed: u64,
    /// Maximum call depth before a stack-overflow failure.
    pub max_call_depth: usize,
    /// Guest-profiler sampling period: every `profile_period` retired
    /// instructions the interpreter captures the scheduled thread's call
    /// stack into [`RunReport::stack_samples`] and tracks contended lock
    /// acquisitions into [`RunReport::lock_waits`]. 0 (the default)
    /// disables profiling entirely — the hot loop then pays exactly one
    /// integer compare per step.
    pub profile_period: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 2_000_000,
            scheduler: SchedPolicy::default(),
            num_cores: 4,
            sample_mean: 100,
            sample_seed: 0,
            max_call_depth: 128,
            profile_period: 0,
        }
    }
}

impl RunConfig {
    /// Convenience: a config with a random scheduler seeded by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        RunConfig {
            scheduler: SchedPolicy::Random { seed },
            ..RunConfig::default()
        }
    }
}

/// A loaded program ready to execute workloads.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    layout: Layout,
    flat: FlatProgram,
}

impl Machine {
    /// Loads a program, computing its address layout and pre-lowering the
    /// IR into the flat dispatch stream.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation — construct programs through
    /// [`ProgramBuilder`](crate::builder::ProgramBuilder) to avoid this.
    pub fn new(program: Program) -> Self {
        program
            .validate()
            .expect("program failed validation; build with ProgramBuilder");
        let layout = Layout::build(&program);
        let flat = FlatProgram::lower(&program, &layout);
        Machine {
            program,
            layout,
            flat,
        }
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program's address layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Executes one run.
    pub fn run<H: Hardware>(&self, inputs: &[i64], config: &RunConfig, hw: &mut H) -> RunReport {
        let mut scratch = RunScratch::new();
        self.run_reusing(inputs, config, hw, &mut scratch)
    }

    /// Executes one run reusing a caller-owned [`RunScratch`].
    ///
    /// Behaviourally identical to [`Machine::run`] — the scratch only
    /// recycles allocations (memory tables, thread state, the hardware
    /// event buffer), never state: every run starts from the same freshly
    /// initialised memory image. One scratch may be reused across
    /// machines, workloads and configs in any order.
    pub fn run_reusing<H: Hardware>(
        &self,
        inputs: &[i64],
        config: &RunConfig,
        hw: &mut H,
        scratch: &mut RunScratch,
    ) -> RunReport {
        scratch.begin_run(&self.program);
        Exec::new(self, inputs, config, hw, scratch).run()
    }
}

/// Reusable per-run allocations for [`Machine::run_reusing`].
///
/// Holds the memory tables, thread states (call frames + register arena),
/// the scheduler's runnable buffer and the hardware event batch buffer of a
/// run. Reusing one scratch across many runs keeps the capacity those
/// structures grew to, so steady-state collection does not allocate per
/// run. A scratch carries no state between runs — only capacity.
#[derive(Debug)]
pub struct RunScratch {
    mem: Memory,
    threads: Vec<ThreadState>,
    /// Retired thread states kept for their frame/register capacity.
    spare: Vec<ThreadState>,
    runnable: Vec<ThreadId>,
    events: Vec<HwEvent>,
}

impl RunScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        RunScratch {
            mem: Memory::new(),
            threads: Vec::new(),
            spare: Vec::new(),
            runnable: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Resets the scratch to a fresh run over `program`: clears memory and
    /// re-maps the globals, recycles old thread states, empties buffers.
    fn begin_run(&mut self, program: &Program) {
        self.mem.reset();
        for g in &program.globals {
            self.mem.map_fixed(g.addr, g.words * 8, RegionKind::Global);
            for (i, v) in g.init.iter().enumerate() {
                self.mem.poke(g.addr + i as u64 * 8, *v);
            }
        }
        self.spare.append(&mut self.threads);
        self.runnable.clear();
        self.events.clear();
    }
}

impl Default for RunScratch {
    fn default() -> Self {
        RunScratch::new()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedLock(u64),
    BlockedJoin(ThreadId),
    Done,
}

/// One call frame. Locals live in the thread's flat register arena at
/// `vars_base ..`; `ip` indexes the function's flat instruction stream.
#[derive(Debug, Clone, Copy)]
struct Frame {
    func: u32,
    block: u32,
    ip: u32,
    vars_base: u32,
    stack_base: u64,
    ret_dst: Option<u32>,
    ret_pc: u64,
}

/// One in-progress contended lock acquisition, tracked per thread while
/// guest profiling is on: where the thread first blocked and on whom.
#[derive(Debug, Clone, Copy)]
struct PendingLock {
    addr: u64,
    since_step: u64,
    holder: Option<ThreadId>,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    frames: Vec<Frame>,
    /// Flat register arena: every live frame's locals, innermost last.
    regs: Vec<i64>,
    sp: u64,
    countdown: u32,
    /// Global step at which this thread last retired an instruction.
    last_step: u64,
    /// Contended acquisition in progress (guest profiling only).
    pending_lock: Option<PendingLock>,
}

impl Default for ThreadState {
    fn default() -> Self {
        ThreadState {
            status: Status::Runnable,
            frames: Vec::new(),
            regs: Vec::new(),
            sp: 0,
            countdown: 0,
            last_step: 0,
            pending_lock: None,
        }
    }
}

enum Flow {
    /// Advance to the next statement.
    Next,
    /// Control transferred (branch/call/ret handled positioning itself).
    Jumped,
    /// Re-execute the same statement later (blocked).
    Blocked,
    /// The whole program exits.
    Exit(i64),
    /// The run fails.
    Fault(FailureKind),
}

/// Hardware events are flushed whenever the buffer reaches this many
/// entries (and always before a `ctl` call and at run end).
const EVENT_BATCH: usize = 4096;

struct Exec<'m, 'h, 's, H> {
    m: &'m Machine,
    cfg: &'s RunConfig,
    inputs: &'s [i64],
    hw: &'h mut H,
    scratch: &'s mut RunScratch,
    sched: Scheduler,
    sample_rng: SplitMix64,
    report: RunReport,
    steps: u64,
    // Local telemetry accumulators, flushed once per run so the hot loop
    // never touches shared atomics.
    loads: u64,
    stores: u64,
    ctx_switches: u64,
    last_tid: Option<ThreadId>,
}

impl<'m, 'h, 's, H: Hardware> Exec<'m, 'h, 's, H> {
    fn new(
        m: &'m Machine,
        inputs: &'s [i64],
        cfg: &'s RunConfig,
        hw: &'h mut H,
        scratch: &'s mut RunScratch,
    ) -> Self {
        let report = RunReport {
            outcome: RunOutcome::Completed { exit_code: 0 },
            outputs: Vec::new(),
            logs: Vec::new(),
            profiles: Vec::new(),
            samples: Vec::new(),
            steps: 0,
            branches_retired: 0,
            accesses_retired: 0,
            threads_spawned: 0,
            thread_states: Vec::new(),
            stack_samples: Vec::new(),
            lock_waits: Vec::new(),
        };
        let mut exec = Exec {
            m,
            cfg,
            inputs,
            hw,
            scratch,
            sched: Scheduler::new(cfg.scheduler),
            sample_rng: SplitMix64::new(cfg.sample_seed),
            report,
            steps: 0,
            loads: 0,
            stores: 0,
            ctx_switches: 0,
            last_tid: None,
        };
        exec.spawn_thread(m.program.entry.raw());
        exec
    }

    fn core_of(&self, tid: ThreadId) -> CoreId {
        CoreId(tid.0 % self.cfg.num_cores.max(1))
    }

    /// Spawns a thread running `func` with zeroed arguments; the caller
    /// copies real argument values into the new thread's registers.
    fn spawn_thread(&mut self, func: u32) -> ThreadId {
        let tid = ThreadId(self.scratch.threads.len() as u32);
        let stack_region = STACK_BASE + tid.0 as u64 * STACK_STRIDE;
        self.scratch
            .mem
            .map_fixed(stack_region, STACK_STRIDE / 2, RegionKind::Stack);
        let f = &self.m.flat.funcs[func as usize];
        let mut t = self.scratch.spare.pop().unwrap_or_default();
        t.status = Status::Runnable;
        t.frames.clear();
        t.frames.push(Frame {
            func,
            block: 0,
            ip: 0,
            vars_base: 0,
            stack_base: stack_region,
            ret_dst: None,
            ret_pc: 0,
        });
        t.regs.clear();
        t.regs.resize(f.num_vars as usize, 0);
        t.sp = f.frame_slots as u64 * 8;
        t.countdown = self.sample_rng.next_countdown(self.cfg.sample_mean);
        t.last_step = 0;
        t.pending_lock = None;
        self.scratch.threads.push(t);
        self.report.threads_spawned += 1;
        tid
    }

    fn is_runnable(&self, tid: ThreadId) -> bool {
        match self.scratch.threads[tid.index()].status {
            Status::Runnable => true,
            Status::BlockedLock(addr) => matches!(self.scratch.mem.read(addr), Ok(0) | Err(_)),
            Status::BlockedJoin(t) => {
                self.scratch.threads.get(t.index()).map(|t| t.status) == Some(Status::Done)
            }
            Status::Done => false,
        }
    }

    fn run(mut self) -> RunReport {
        let _span = stm_telemetry::span_cat("machine.run", "machine");
        loop {
            if self.scratch.threads[0].status == Status::Done {
                break;
            }
            let mut runnable = std::mem::take(&mut self.scratch.runnable);
            runnable.clear();
            let n = self.scratch.threads.len() as u32;
            runnable.extend((0..n).map(ThreadId).filter(|t| self.is_runnable(*t)));
            if runnable.is_empty() {
                self.scratch.runnable = runnable;
                let victim = (0..n)
                    .map(ThreadId)
                    .find(|t| self.scratch.threads[t.index()].status != Status::Done)
                    .unwrap_or(ThreadId::MAIN);
                self.fail(victim, FailureKind::Deadlock);
                break;
            }
            let tid = self.sched.pick(&runnable);
            self.scratch.runnable = runnable;
            if self.last_tid.is_some_and(|last| last != tid) {
                self.ctx_switches += 1;
            }
            self.last_tid = Some(tid);
            self.steps += 1;
            if self.steps > self.cfg.max_steps {
                self.fail(tid, FailureKind::Hang);
                break;
            }
            // Unblock the thread; blocked statements re-execute.
            let t = &mut self.scratch.threads[tid.index()];
            t.status = Status::Runnable;
            t.last_step = self.steps;
            // The guest profiler's "sampling interrupt": driven by the
            // retired-instruction count, not wall-clock, so the sample
            // stream replays identically with the run.
            if self.cfg.profile_period != 0 && self.steps.is_multiple_of(self.cfg.profile_period) {
                self.record_stack_sample(tid);
            }
            match self.step(tid) {
                Flow::Next => {
                    self.scratch.threads[tid.index()]
                        .frames
                        .last_mut()
                        .expect("running thread has a frame")
                        .ip += 1;
                }
                Flow::Jumped | Flow::Blocked => {}
                Flow::Exit(code) => {
                    self.report.outcome = RunOutcome::Completed { exit_code: code };
                    break;
                }
                Flow::Fault(kind) => {
                    self.fail(tid, kind);
                    break;
                }
            }
        }
        self.report.steps = self.steps;
        // Deliver any buffered retirement events before the run report is
        // handed back — post-run hardware inspection must see everything.
        self.flush_events();
        self.record_thread_states();
        self.flush_telemetry();
        self.report
    }

    /// Captures every thread's final context into the report — the
    /// flight-recorder view of where each thread stood when the run ended.
    fn record_thread_states(&mut self) {
        use crate::report::{FinalStatus, ThreadFinalState};
        let mut states = Vec::with_capacity(self.scratch.threads.len());
        for (i, t) in self.scratch.threads.iter().enumerate() {
            let tid = ThreadId(i as u32);
            let status = match t.status {
                Status::Runnable => FinalStatus::Runnable,
                Status::BlockedLock(addr) => FinalStatus::BlockedLock(addr),
                Status::BlockedJoin(j) => FinalStatus::BlockedJoin(j),
                Status::Done => FinalStatus::Done,
            };
            let (func, loc, pc) = self.position(tid);
            states.push(ThreadFinalState {
                thread: tid,
                status,
                func,
                loc,
                pc,
                last_step: t.last_step,
            });
        }
        self.report.thread_states = states;
    }

    /// Captures the scheduled thread's call stack, outermost frame first —
    /// the guest profiler's sample. Only called while profiling is on.
    fn record_stack_sample(&mut self, tid: ThreadId) {
        let frames = self.scratch.threads[tid.index()]
            .frames
            .iter()
            .map(|f| (FuncId::new(f.func), BlockId::new(f.block)))
            .collect();
        self.report.stack_samples.push(StackSample {
            thread: tid,
            step: self.steps,
            frames,
        });
    }

    /// Guest profiling: a lock acquisition failed; remember when this
    /// thread first blocked on the lock and who held it then (the lock
    /// word stores `holder + 1`).
    fn record_lock_blocked(&mut self, tid: ThreadId, addr: u64, held: i64) {
        let holder = u32::try_from(held - 1)
            .ok()
            .map(ThreadId)
            .filter(|h| h.index() < self.scratch.threads.len());
        let t = &mut self.scratch.threads[tid.index()];
        let fresh = match t.pending_lock {
            Some(p) => p.addr != addr,
            None => true,
        };
        if fresh {
            t.pending_lock = Some(PendingLock {
                addr,
                since_step: self.steps,
                holder,
            });
        }
    }

    /// Guest profiling: a lock acquisition succeeded. When the thread had
    /// been blocked on this same lock, emit the wait record (uncontended
    /// acquisitions record nothing).
    fn record_lock_acquired(&mut self, tid: ThreadId, addr: u64, pc: u64) {
        let t = &mut self.scratch.threads[tid.index()];
        let Some(p) = t.pending_lock.take() else {
            return;
        };
        if p.addr != addr {
            t.pending_lock = Some(p);
            return;
        }
        self.report.lock_waits.push(LockWaitEvent {
            addr,
            waiter: tid,
            holder: p.holder,
            wait_steps: self.steps.saturating_sub(p.since_step),
            acquired_step: self.steps,
            pc,
        });
    }

    /// Flushes the run's telemetry accumulators into the global collector
    /// (one batch of atomic adds per run; free when collection is off).
    fn flush_telemetry(&self) {
        if !stm_telemetry::enabled() {
            return;
        }
        stm_telemetry::counter!("machine.runs").incr();
        stm_telemetry::counter!("machine.instructions").add(self.steps);
        stm_telemetry::counter!("machine.branches").add(self.report.branches_retired);
        stm_telemetry::counter!("machine.loads").add(self.loads);
        stm_telemetry::counter!("machine.stores").add(self.stores);
        stm_telemetry::counter!("machine.context_switches").add(self.ctx_switches);
        stm_telemetry::counter!("machine.threads_spawned").add(self.report.threads_spawned as u64);
        if self.report.outcome.is_completed() {
            stm_telemetry::counter!("machine.runs_completed").incr();
        } else {
            stm_telemetry::counter!("machine.runs_failed").incr();
        }
        stm_telemetry::histogram!("machine.run_steps").record(self.steps);
        if self.cfg.profile_period != 0 {
            stm_telemetry::counter!("machine.profile_samples")
                .add(self.report.stack_samples.len() as u64);
            stm_telemetry::counter!("machine.profile_lock_waits")
                .add(self.report.lock_waits.len() as u64);
        }
    }

    /// Records the failure and lets the registered fault handler profile
    /// the hardware short-term memory (transformer step 4 of §5.1).
    fn fail(&mut self, tid: ThreadId, kind: FailureKind) {
        let (func, loc, pc) = self.position(tid);
        self.report.outcome = RunOutcome::Failed(Failure {
            kind,
            thread: tid,
            func,
            loc,
            pc,
        });
        let core = self.core_of(tid);
        let fp = self.m.program.fault_profile;
        if fp.lbr {
            self.ctl(core, tid, HwCtlOp::DisableLbr);
            if let CtlResponse::Lbr(records) = self.ctl(core, tid, HwCtlOp::ProfileLbr) {
                self.report.profiles.push(ProfileEvent {
                    site: None,
                    role: crate::ir::ProfileRole::FailureSite,
                    thread: tid,
                    step: self.steps,
                    data: ProfileData::Lbr(records),
                });
            }
        }
        if fp.lcr {
            self.ctl(core, tid, HwCtlOp::DisableLcr);
            if let CtlResponse::Lcr(records) = self.ctl(core, tid, HwCtlOp::ProfileLcr) {
                self.report.profiles.push(ProfileEvent {
                    site: None,
                    role: crate::ir::ProfileRole::FailureSite,
                    thread: tid,
                    step: self.steps,
                    data: ProfileData::Lcr(records),
                });
            }
        }
    }

    /// Current (function, location, pc) of a thread, off the flat side
    /// tables (which cover statements and terminators uniformly).
    fn position(&self, tid: ThreadId) -> (FuncId, SourceLoc, u64) {
        let Some(frame) = self.scratch.threads[tid.index()].frames.last() else {
            return (self.m.program.entry, SourceLoc::UNKNOWN, 0);
        };
        let ff = &self.m.flat.funcs[frame.func as usize];
        let ip = frame.ip as usize;
        (FuncId::new(frame.func), ff.loc[ip], ff.pc[ip])
    }

    /// Reads register `r` of the frame whose arena base is `base`.
    #[inline]
    fn reg(&self, tid: ThreadId, base: usize, r: u32) -> i64 {
        self.scratch.threads[tid.index()].regs[base + r as usize]
    }

    /// Evaluates a pre-decoded operand against the current frame.
    #[inline]
    fn val(&self, tid: ThreadId, base: usize, v: Val) -> i64 {
        match v {
            Val::C(c) => c,
            Val::V(r) => self.reg(tid, base, r),
        }
    }

    #[inline]
    fn set_reg(&mut self, tid: ThreadId, base: usize, r: u32, value: i64) {
        self.scratch.threads[tid.index()].regs[base + r as usize] = value;
    }

    /// Buffers a retired-branch event (flushing at capacity).
    fn emit_branch(&mut self, tid: ThreadId, from: u64, to: u64, kind: BranchKind, ring: Ring) {
        let core = self.core_of(tid);
        self.scratch.events.push(HwEvent::Branch {
            core,
            ev: BranchEvent {
                from,
                to,
                kind,
                ring,
            },
        });
        self.report.branches_retired += 1;
        if self.scratch.events.len() >= EVENT_BATCH {
            self.flush_events();
        }
    }

    /// Delivers all buffered retirement events to the hardware, in order.
    fn flush_events(&mut self) {
        if !self.scratch.events.is_empty() {
            self.hw.on_batch(&self.scratch.events);
            self.scratch.events.clear();
        }
    }

    /// A hardware control call; buffered events are flushed first so the
    /// hardware observes them in exactly the per-event order.
    fn ctl(&mut self, core: CoreId, tid: ThreadId, op: HwCtlOp) -> CtlResponse {
        self.flush_events();
        self.hw.ctl(core, tid, op)
    }

    /// Emits the kernel-side branches of a syscall/ioctl at `pc`.
    fn emit_kernel_branches(&mut self, tid: ThreadId, pc: u64, conds: u8) {
        const KERNEL_BASE: u64 = 0xffff_8000_0000_0000;
        self.emit_branch(tid, pc, KERNEL_BASE, BranchKind::Far, Ring::Kernel);
        for i in 0..conds {
            self.emit_branch(
                tid,
                KERNEL_BASE + 8 * i as u64,
                KERNEL_BASE + 0x100 + 8 * i as u64,
                BranchKind::CondJump,
                Ring::Kernel,
            );
        }
        self.emit_branch(
            tid,
            KERNEL_BASE + 0x200,
            pc + SLOT,
            BranchKind::Far,
            Ring::Kernel,
        );
    }

    /// Performs a checked data access: fault check first (a faulting access
    /// never retires), then the cache/hardware notification, then the
    /// actual memory operation.
    fn access(
        &mut self,
        tid: ThreadId,
        pc: u64,
        addr: u64,
        kind: AccessKind,
        write_value: Option<i64>,
    ) -> Result<i64, FailureKind> {
        if !self.scratch.mem.is_mapped(addr) {
            return Err(FailureKind::Segfault { addr });
        }
        let core = self.core_of(tid);
        self.scratch.events.push(HwEvent::Access {
            core,
            thread: tid,
            ev: AccessEvent {
                pc,
                addr,
                kind,
                ring: Ring::User,
            },
        });
        if self.scratch.events.len() >= EVENT_BATCH {
            self.flush_events();
        }
        self.report.accesses_retired += 1;
        match kind {
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
        }
        match write_value {
            Some(v) => {
                self.scratch.mem.write(addr, v).map_err(fault_to_failure)?;
                Ok(v)
            }
            None => self.scratch.mem.read(addr).map_err(fault_to_failure),
        }
    }

    /// Pushes a call frame: depth check, branch event, argument copy into
    /// the register arena, stack accounting.
    #[allow(clippy::too_many_arguments)]
    fn do_call(
        &mut self,
        tid: ThreadId,
        base: usize,
        pc: u64,
        dst: Option<u32>,
        target: u32,
        entry: u64,
        args: &[Val],
        kind: BranchKind,
    ) -> Flow {
        if self.scratch.threads[tid.index()].frames.len() >= self.cfg.max_call_depth {
            return Flow::Fault(FailureKind::StackOverflow);
        }
        self.emit_branch(tid, pc, entry, kind, Ring::User);
        let f = &self.m.flat.funcs[target as usize];
        let (params, num_vars, frame_slots) =
            (f.params as usize, f.num_vars as usize, f.frame_slots as u64);
        let t = &mut self.scratch.threads[tid.index()];
        let nbase = t.regs.len();
        t.regs.resize(nbase + num_vars, 0);
        for (i, a) in args.iter().enumerate().take(params) {
            t.regs[nbase + i] = match *a {
                Val::C(c) => c,
                Val::V(r) => t.regs[base + r as usize],
            };
        }
        let stack_base = STACK_BASE + tid.0 as u64 * STACK_STRIDE + t.sp;
        t.sp += frame_slots * 8;
        if t.sp >= STACK_STRIDE / 2 {
            return Flow::Fault(FailureKind::StackOverflow);
        }
        t.frames.push(Frame {
            func: target,
            block: 0,
            ip: 0,
            vars_base: nbase as u32,
            stack_base,
            ret_dst: dst,
            ret_pc: pc + SLOT,
        });
        Flow::Jumped
    }

    fn step(&mut self, tid: ThreadId) -> Flow {
        // Borrow the flat code through the machine's own lifetime so the
        // instruction stays readable while execution state is mutated.
        let m: &'m Machine = self.m;
        let (fi, ip, base, sbase) = {
            let f = self.scratch.threads[tid.index()]
                .frames
                .last()
                .expect("running thread has a frame");
            (
                f.func as usize,
                f.ip as usize,
                f.vars_base as usize,
                f.stack_base,
            )
        };
        let ff = &m.flat.funcs[fi];
        let op = &ff.code[ip];
        let pc = ff.pc[ip];
        match op {
            Op::AssignConst { dst, value } => {
                self.set_reg(tid, base, *dst, *value);
                Flow::Next
            }
            Op::AssignVar { dst, src } => {
                let v = self.reg(tid, base, *src);
                self.set_reg(tid, base, *dst, v);
                Flow::Next
            }
            Op::BinVV { op, dst, lhs, rhs } => {
                let l = self.reg(tid, base, *lhs);
                let r = self.reg(tid, base, *rhs);
                match eval_bin(*op, l, r) {
                    Some(v) => {
                        self.set_reg(tid, base, *dst, v);
                        Flow::Next
                    }
                    None => Flow::Fault(FailureKind::DivByZero),
                }
            }
            Op::BinVC { op, dst, lhs, rhs } => {
                let l = self.reg(tid, base, *lhs);
                match eval_bin(*op, l, *rhs) {
                    Some(v) => {
                        self.set_reg(tid, base, *dst, v);
                        Flow::Next
                    }
                    None => Flow::Fault(FailureKind::DivByZero),
                }
            }
            Op::BinCV { op, dst, lhs, rhs } => {
                let r = self.reg(tid, base, *rhs);
                match eval_bin(*op, *lhs, r) {
                    Some(v) => {
                        self.set_reg(tid, base, *dst, v);
                        Flow::Next
                    }
                    None => Flow::Fault(FailureKind::DivByZero),
                }
            }
            Op::Unary { op, dst, operand } => {
                let v = self.reg(tid, base, *operand);
                let value = match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                    UnOp::BitNot => !v,
                };
                self.set_reg(tid, base, *dst, value);
                Flow::Next
            }
            Op::ReadInput { dst, index } => {
                let i = self.val(tid, base, *index);
                if i < 0 {
                    return Flow::Fault(FailureKind::NegativeInputIndex { index: i });
                }
                let value = usize::try_from(i)
                    .ok()
                    .and_then(|i| self.inputs.get(i).copied())
                    .unwrap_or(0);
                self.set_reg(tid, base, *dst, value);
                Flow::Next
            }
            Op::ConstDivByZero => Flow::Fault(FailureKind::DivByZero),
            Op::Load { dst, addr, disp } => {
                let a = self.val(tid, base, *addr).wrapping_add(*disp) as u64;
                match self.access(tid, pc, a, AccessKind::Load, None) {
                    Ok(v) => {
                        self.set_reg(tid, base, *dst, v);
                        Flow::Next
                    }
                    Err(k) => Flow::Fault(k),
                }
            }
            Op::Store { addr, disp, value } => {
                let a = self.val(tid, base, *addr).wrapping_add(*disp) as u64;
                let v = self.val(tid, base, *value);
                match self.access(tid, pc, a, AccessKind::Store, Some(v)) {
                    Ok(_) => Flow::Next,
                    Err(k) => Flow::Fault(k),
                }
            }
            Op::StackLoad { dst, slot } => {
                let a = sbase + *slot as u64 * 8;
                match self.access(tid, pc, a, AccessKind::Load, None) {
                    Ok(v) => {
                        self.set_reg(tid, base, *dst, v);
                        Flow::Next
                    }
                    Err(k) => Flow::Fault(k),
                }
            }
            Op::StackStore { slot, value } => {
                let a = sbase + *slot as u64 * 8;
                let v = self.val(tid, base, *value);
                match self.access(tid, pc, a, AccessKind::Store, Some(v)) {
                    Ok(_) => Flow::Next,
                    Err(k) => Flow::Fault(k),
                }
            }
            Op::Alloc { dst, words } => {
                let w = self.val(tid, base, *words).max(0) as u64;
                let heap_base = self.scratch.mem.alloc(w);
                self.set_reg(tid, base, *dst, heap_base as i64);
                Flow::Next
            }
            Op::Free { addr } => {
                let a = self.val(tid, base, *addr) as u64;
                match self.scratch.mem.free(a) {
                    Ok(()) => Flow::Next,
                    Err(MemFault::InvalidFree { addr }) => {
                        Flow::Fault(FailureKind::InvalidFree { addr })
                    }
                    Err(MemFault::Unmapped { addr }) => Flow::Fault(FailureKind::Segfault { addr }),
                }
            }
            Op::CallDirect {
                dst,
                target,
                entry,
                args,
            } => self.do_call(
                tid,
                base,
                pc,
                *dst,
                *target,
                *entry,
                args,
                BranchKind::NearRelCall,
            ),
            Op::CallIndirect {
                dst,
                targets,
                selector,
                args,
            } => {
                let s = self.val(tid, base, *selector);
                let idx = (s.rem_euclid(targets.len() as i64)) as usize;
                let (target, entry) = targets[idx];
                self.do_call(
                    tid,
                    base,
                    pc,
                    *dst,
                    target,
                    entry,
                    args,
                    BranchKind::NearIndCall,
                )
            }
            Op::Spawn { dst, func, args } => {
                let new_tid = self.spawn_thread(*func);
                let params = self.m.flat.funcs[*func as usize].params as usize;
                for (i, a) in args.iter().enumerate().take(params) {
                    let v = self.val(tid, base, *a);
                    self.scratch.threads[new_tid.index()].regs[i] = v;
                }
                self.set_reg(tid, base, *dst, new_tid.0 as i64);
                Flow::Next
            }
            Op::Join { thread } => {
                let t = self.val(tid, base, *thread);
                let target = ThreadId(t.max(0) as u32);
                if target.index() >= self.scratch.threads.len() {
                    return Flow::Next; // joining a never-spawned thread is a no-op
                }
                if self.scratch.threads[target.index()].status == Status::Done {
                    Flow::Next
                } else {
                    self.scratch.threads[tid.index()].status = Status::BlockedJoin(target);
                    Flow::Blocked
                }
            }
            Op::Lock { addr } => {
                let a = self.val(tid, base, *addr) as u64;
                if !self.scratch.mem.is_mapped(a) {
                    return Flow::Fault(FailureKind::Segfault { addr: a });
                }
                let held = self.scratch.mem.read(a).unwrap_or(0);
                if held == 0 {
                    match self.access(tid, pc, a, AccessKind::Store, Some(tid.0 as i64 + 1)) {
                        Ok(_) => {
                            if self.cfg.profile_period != 0 {
                                self.record_lock_acquired(tid, a, pc);
                            }
                            Flow::Next
                        }
                        Err(k) => Flow::Fault(k),
                    }
                } else {
                    // Failed acquisition: observe the lock word, then sleep.
                    if let Err(k) = self.access(tid, pc, a, AccessKind::Load, None) {
                        return Flow::Fault(k);
                    }
                    if self.cfg.profile_period != 0 {
                        self.record_lock_blocked(tid, a, held);
                    }
                    self.scratch.threads[tid.index()].status = Status::BlockedLock(a);
                    Flow::Blocked
                }
            }
            Op::Unlock { addr } => {
                let a = self.val(tid, base, *addr) as u64;
                match self.access(tid, pc, a, AccessKind::Store, Some(0)) {
                    Ok(_) => Flow::Next,
                    Err(k) => Flow::Fault(k),
                }
            }
            Op::Output { value } => {
                let v = self.val(tid, base, *value);
                self.report.outputs.push(v);
                Flow::Next
            }
            Op::Log { site, kind } => {
                self.report.logs.push(LogEvent {
                    site: *site,
                    kind: *kind,
                    thread: tid,
                    step: self.steps,
                });
                self.emit_kernel_branches(tid, pc, 2);
                Flow::Next
            }
            Op::HwCtl { op, site, role } => {
                let core = self.core_of(tid);
                match op {
                    HwCtlOp::ProfileLbr => {
                        // The access path executes no user-level branches;
                        // the ioctl's kernel branches happen after the read.
                        let resp = self.ctl(core, tid, *op);
                        if let CtlResponse::Lbr(records) = resp {
                            self.report.profiles.push(ProfileEvent {
                                site: *site,
                                role: *role,
                                thread: tid,
                                step: self.steps,
                                data: ProfileData::Lbr(records),
                            });
                        }
                        self.emit_kernel_branches(tid, pc, 1);
                    }
                    HwCtlOp::ProfileLcr => {
                        let resp = self.ctl(core, tid, *op);
                        if let CtlResponse::Lcr(records) = resp {
                            self.report.profiles.push(ProfileEvent {
                                site: *site,
                                role: *role,
                                thread: tid,
                                step: self.steps,
                                data: ProfileData::Lcr(records),
                            });
                        }
                        self.emit_kernel_branches(tid, pc, 1);
                    }
                    HwCtlOp::DisableLbr | HwCtlOp::DisableLcr => {
                        // Kernel entry happens first, then the facility is
                        // disabled inside the driver.
                        self.emit_kernel_branches(tid, pc, 1);
                        self.ctl(core, tid, *op);
                    }
                    _ => {
                        // Enable/clean/config: the facility switches state
                        // inside the driver; the return path branches are
                        // visible to an unfiltered LBR.
                        self.ctl(core, tid, *op);
                        self.emit_kernel_branches(tid, pc, 1);
                    }
                }
                Flow::Next
            }
            Op::Sample { id, value } => {
                let t = &mut self.scratch.threads[tid.index()];
                t.countdown = t.countdown.saturating_sub(1);
                if t.countdown == 0 {
                    t.countdown = self.sample_rng.next_countdown(self.cfg.sample_mean);
                    let v = self.val(tid, base, *value);
                    self.report.samples.push(SampleEvent {
                        id: *id,
                        value: v,
                        thread: tid,
                        step: self.steps,
                    });
                }
                Flow::Next
            }
            Op::Assert { cond, message } => {
                if self.val(tid, base, *cond) == 0 {
                    Flow::Fault(FailureKind::AssertFailed {
                        message: message.to_string(),
                    })
                } else {
                    Flow::Next
                }
            }
            Op::Syscall { kernel_branches } => {
                self.emit_kernel_branches(tid, pc, *kernel_branches);
                Flow::Next
            }
            Op::Exit { code } => Flow::Exit(self.val(tid, base, *code)),
            Op::Nop => Flow::Next,
            Op::Br {
                cond,
                then_blk,
                then_ip,
                then_to,
                else_blk,
                else_ip,
                else_to,
            } => {
                let taken_then = self.val(tid, base, *cond) != 0;
                let (blk, nip, from, to, kind) = if taken_then {
                    // Fall-through unconditional jump on the true edge.
                    (
                        *then_blk,
                        *then_ip,
                        pc + SLOT,
                        *then_to,
                        BranchKind::UncondRelative,
                    )
                } else {
                    // Taken conditional jump on the false edge.
                    (*else_blk, *else_ip, pc, *else_to, BranchKind::CondJump)
                };
                self.emit_branch(tid, from, to, kind, Ring::User);
                let f = self.scratch.threads[tid.index()]
                    .frames
                    .last_mut()
                    .expect("running thread has a frame");
                f.block = blk;
                f.ip = nip;
                Flow::Jumped
            }
            Op::Jmp {
                target_blk,
                target_ip,
                to,
                record,
            } => {
                if *record {
                    self.emit_branch(tid, pc, *to, BranchKind::UncondRelative, Ring::User);
                }
                let f = self.scratch.threads[tid.index()]
                    .frames
                    .last_mut()
                    .expect("running thread has a frame");
                f.block = *target_blk;
                f.ip = *target_ip;
                Flow::Jumped
            }
            Op::Ret { value } => {
                let v = value.map(|val| self.val(tid, base, val)).unwrap_or(0);
                let t = &mut self.scratch.threads[tid.index()];
                let done_frame = t.frames.pop().expect("running thread has a frame");
                t.regs.truncate(done_frame.vars_base as usize);
                let slots = m.flat.funcs[done_frame.func as usize].frame_slots;
                t.sp = t.sp.saturating_sub(slots as u64 * 8);
                self.emit_branch(
                    tid,
                    pc,
                    done_frame.ret_pc,
                    BranchKind::NearReturn,
                    Ring::User,
                );
                let t = &mut self.scratch.threads[tid.index()];
                if t.frames.is_empty() {
                    t.status = Status::Done;
                    return Flow::Jumped;
                }
                let (frames, regs) = (&mut t.frames, &mut t.regs);
                let caller = frames.last_mut().expect("caller frame");
                if let Some(dst) = done_frame.ret_dst {
                    regs[caller.vars_base as usize + dst as usize] = v;
                }
                caller.ip += 1; // move past the call
                Flow::Jumped
            }
        }
    }
}

pub(crate) fn eval_bin(op: BinOp, l: i64, r: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => {
            if r == 0 {
                return None;
            }
            l.wrapping_div(r)
        }
        BinOp::Rem => {
            if r == 0 {
                return None;
            }
            l.wrapping_rem(r)
        }
        BinOp::And => l & r,
        BinOp::Or => l | r,
        BinOp::Xor => l ^ r,
        BinOp::Shl => l.wrapping_shl(r as u32),
        BinOp::Shr => l.wrapping_shr(r as u32),
        BinOp::Eq => i64::from(l == r),
        BinOp::Ne => i64::from(l != r),
        BinOp::Lt => i64::from(l < r),
        BinOp::Le => i64::from(l <= r),
        BinOp::Gt => i64::from(l > r),
        BinOp::Ge => i64::from(l >= r),
    })
}

fn fault_to_failure(f: MemFault) -> FailureKind {
    match f {
        MemFault::Unmapped { addr } => FailureKind::Segfault { addr },
        MemFault::InvalidFree { addr } => FailureKind::InvalidFree { addr },
    }
}

// Send/Sync audit: the parallel collection engine (stm-core) clones a
// `Machine` per worker thread and moves run reports back over channels.
// These assertions fail to compile if anyone introduces interior
// mutability or thread-bound state (Rc, RefCell, raw pointers) into the
// interpreter's plain-data types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Machine>();
    assert_send_sync::<crate::ir::Program>();
    assert_send_sync::<RunConfig>();
    assert_send_sync::<crate::report::RunReport>();
    assert_send_sync::<RunScratch>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::events::NullHardware;
    use crate::ir::{LogKind, Operand};

    fn run(p: Program, inputs: &[i64]) -> RunReport {
        let m = Machine::new(p);
        m.run(inputs, &RunConfig::default(), &mut NullHardware)
    }

    #[test]
    fn arithmetic_and_output() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let x = f.read_input(0);
        let y = f.bin(BinOp::Mul, x, 3);
        let z = f.bin(BinOp::Add, y, 1);
        f.output(z);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[7]);
        assert!(r.outcome.is_completed());
        assert_eq!(r.outputs, vec![22]);
    }

    #[test]
    fn branching_selects_the_right_path() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let t = f.new_block();
        let e = f.new_block();
        let x = f.read_input(0);
        f.br(x, t, e);
        f.set_block(t);
        f.output(1);
        f.ret(None);
        f.set_block(e);
        f.output(2);
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let m = Machine::new(p);
        let cfg = RunConfig::default();
        let r1 = m.run(&[5], &cfg, &mut NullHardware);
        assert_eq!(r1.outputs, vec![1]);
        let r0 = m.run(&[0], &cfg, &mut NullHardware);
        assert_eq!(r0.outputs, vec![2]);
    }

    #[test]
    fn loop_sums_inputs() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let n = f.read_input(0);
        let i = f.var();
        let sum = f.var();
        f.assign(i, 0);
        f.assign(sum, 0);
        f.jmp(header);
        f.set_block(header);
        let c = f.bin(BinOp::Lt, i, n);
        f.br(c, body, exit);
        f.set_block(body);
        let i1 = f.bin(BinOp::Add, i, 1);
        let v = f.read_input(i1);
        f.assign_bin(sum, BinOp::Add, sum, v);
        f.assign(i, i1);
        f.jmp(header);
        f.set_block(exit);
        f.output(sum);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[3, 10, 20, 30]);
        assert_eq!(r.outputs, vec![60]);
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let add = pb.declare_function("add");
        {
            let mut f = pb.build_function(add, "lib.c");
            let ps = f.params(2);
            let s = f.bin(BinOp::Add, ps[0], ps[1]);
            f.ret(Some(s.into()));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let r = f.call(add, &[Operand::Const(4), Operand::Const(5)]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        let r = run(pb.finish(main), &[]);
        assert_eq!(r.outputs, vec![9]);
    }

    #[test]
    fn recursion_works_and_overflow_is_detected() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let rec = pb.declare_function("rec");
        {
            let mut f = pb.build_function(rec, "lib.c");
            let ps = f.params(1);
            let base = f.new_block();
            let step = f.new_block();
            let c = f.bin(BinOp::Le, ps[0], 0);
            f.br(c, base, step);
            f.set_block(base);
            f.ret(Some(Operand::Const(0)));
            f.set_block(step);
            let n1 = f.bin(BinOp::Sub, ps[0], 1);
            let sub = f.call(rec, &[n1.into()]);
            let s = f.bin(BinOp::Add, sub, ps[0]);
            f.ret(Some(s.into()));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let n = f.read_input(0);
            let r = f.call(rec, &[n.into()]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        let cfg = RunConfig::default();
        let ok = m.run(&[10], &cfg, &mut NullHardware);
        assert_eq!(ok.outputs, vec![55]);
        let deep = m.run(&[100_000], &cfg, &mut NullHardware);
        assert_eq!(
            deep.outcome.failure().map(|f| &f.kind),
            Some(&FailureKind::StackOverflow)
        );
    }

    #[test]
    fn globals_heap_and_segfault() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global_init("g", 2, vec![11, 22]);
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let v = f.load(g as i64, 8);
        f.output(v);
        let buf = f.alloc(4);
        f.store(buf, 0, 99);
        let w = f.load(buf, 0);
        f.output(w);
        let _crash = f.load(0i64, 0);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[]);
        assert_eq!(r.outputs, vec![22, 99]);
        match r.outcome.failure() {
            Some(Failure {
                kind: FailureKind::Segfault { addr: 0 },
                ..
            }) => {}
            other => panic!("expected segfault, got {other:?}"),
        }
    }

    #[test]
    fn div_by_zero_faults() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let x = f.read_input(0);
        let _ = f.bin(BinOp::Div, 10, x);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[0]);
        assert_eq!(
            r.outcome.failure().map(|f| &f.kind),
            Some(&FailureKind::DivByZero)
        );
    }

    #[test]
    fn negative_read_input_index_faults() {
        // inputs[0] = -3 feeds back in as an index: a typed guest fault,
        // not a silent zero (bad ground truth must not mask itself).
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let x = f.read_input(0);
        let _ = f.read_input(x);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[-3]);
        match r.outcome.failure() {
            Some(Failure {
                kind: FailureKind::NegativeInputIndex { index: -3 },
                ..
            }) => {}
            other => panic!("expected negative-input-index fault, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_read_input_reads_zero() {
        // Reading past the end of the input vector stays the documented
        // zero sentinel (workloads are logically zero-padded).
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let v = f.read_input(5);
        f.output(v);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[1]);
        assert!(r.outcome.is_completed());
        assert_eq!(r.outputs, vec![0]);
    }

    #[test]
    fn assert_failure_reports_message() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let x = f.read_input(0);
        f.assert(x, "input must be non-zero");
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[0]);
        match r.outcome.failure() {
            Some(Failure {
                kind: FailureKind::AssertFailed { message },
                ..
            }) => assert_eq!(message, "input must be non-zero"),
            other => panic!("expected assert failure, got {other:?}"),
        }
    }

    #[test]
    fn spawn_join_and_shared_memory() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("shared", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            let ps = f.params(1);
            f.store(g as i64, 0, ps[0]);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let t = f.spawn(worker, &[Operand::Const(77)]);
            f.join(t);
            let v = f.load(g as i64, 0);
            f.output(v);
            f.ret(None);
            f.finish();
        }
        let r = run(pb.finish(main), &[]);
        assert!(r.outcome.is_completed());
        assert_eq!(r.outputs, vec![77]);
        assert_eq!(r.threads_spawned, 2);
        // The flight-recorder context covers both threads in spawn order;
        // the worker finished (joined), so it reads as done.
        assert_eq!(r.thread_states.len(), 2);
        assert_eq!(r.thread_states[0].thread, ThreadId::MAIN);
        assert_eq!(r.thread_states[1].thread, ThreadId(1));
        assert_eq!(r.thread_states[1].status, crate::report::FinalStatus::Done);
        assert!(r.thread_states[0].last_step >= r.thread_states[1].last_step);
    }

    #[test]
    fn deadlock_records_blocked_thread_states() {
        // Main locks the mutex and joins a worker that also wants it:
        // a guaranteed deadlock whose final states name the lock address.
        let mut pb = ProgramBuilder::new("p");
        let mutex = pb.global("mutex", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            f.lock(mutex as i64);
            f.unlock(mutex as i64);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            f.lock(mutex as i64);
            let t = f.spawn(worker, &[]);
            f.join(t);
            f.unlock(mutex as i64);
            f.ret(None);
            f.finish();
        }
        let r = run(pb.finish(main), &[]);
        assert!(matches!(
            r.outcome.failure().map(|f| &f.kind),
            Some(FailureKind::Deadlock)
        ));
        use crate::report::FinalStatus;
        assert_eq!(r.thread_states.len(), 2);
        assert_eq!(
            r.thread_states[0].status,
            FinalStatus::BlockedJoin(ThreadId(1))
        );
        assert_eq!(r.thread_states[1].status, FinalStatus::BlockedLock(mutex));
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        // Two threads increment a shared counter 100 times each under a
        // lock; with mutual exclusion the result is exactly 200.
        let mut pb = ProgramBuilder::new("p");
        let mutex = pb.global("mutex", 1);
        let counter = pb.global("counter", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            let header = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            let i = f.var();
            f.assign(i, 0);
            f.jmp(header);
            f.set_block(header);
            let c = f.bin(BinOp::Lt, i, 100);
            f.br(c, body, done);
            f.set_block(body);
            f.lock(mutex as i64);
            let v = f.load(counter as i64, 0);
            let v1 = f.bin(BinOp::Add, v, 1);
            f.store(counter as i64, 0, v1);
            f.unlock(mutex as i64);
            f.assign_bin(i, BinOp::Add, i, 1);
            f.jmp(header);
            f.set_block(done);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let t1 = f.spawn(worker, &[]);
            let t2 = f.spawn(worker, &[]);
            f.join(t1);
            f.join(t2);
            let v = f.load(counter as i64, 0);
            f.output(v);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        for seed in 0..5 {
            let r = m.run(&[], &RunConfig::with_seed(seed), &mut NullHardware);
            assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
            assert_eq!(r.outputs, vec![200], "seed {seed}");
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let mut pb = ProgramBuilder::new("p");
        let m1 = pb.global("m1", 1);
        let m2 = pb.global("m2", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            f.lock(m2 as i64);
            f.yield_now();
            f.lock(m1 as i64);
            f.unlock(m1 as i64);
            f.unlock(m2 as i64);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            f.lock(m1 as i64);
            let t = f.spawn(worker, &[]);
            // Give the worker a chance to grab m2 before we try it.
            for _ in 0..32 {
                f.yield_now();
            }
            f.lock(m2 as i64);
            f.unlock(m2 as i64);
            f.unlock(m1 as i64);
            f.join(t);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        let deadlocked = (0..20).any(|seed| {
            let r = m.run(&[], &RunConfig::with_seed(seed), &mut NullHardware);
            matches!(
                r.outcome.failure().map(|f| &f.kind),
                Some(FailureKind::Deadlock)
            )
        });
        assert!(deadlocked, "no seed produced the deadlock");
    }

    #[test]
    fn hang_watchdog_fires() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let spin = f.new_block();
        f.jmp(spin);
        f.set_block(spin);
        f.jmp(spin);
        f.finish();
        let p = pb.finish(main);
        let m = Machine::new(p);
        let cfg = RunConfig {
            max_steps: 1000,
            ..RunConfig::default()
        };
        let r = m.run(&[], &cfg, &mut NullHardware);
        assert_eq!(
            r.outcome.failure().map(|f| &f.kind),
            Some(&FailureKind::Hang)
        );
    }

    #[test]
    fn exit_stops_everything() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.exit(3);
        f.output(9); // never reached
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[]);
        assert_eq!(r.outcome, RunOutcome::Completed { exit_code: 3 });
        assert!(r.outputs.is_empty());
    }

    #[test]
    fn logs_are_recorded_with_sites() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let s = f.log_error("bad config");
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let site = s;
        let r = run(p, &[]);
        assert!(r.logged_error());
        assert!(r.logged_site(site));
        assert_eq!(r.logs[0].kind, LogKind::Error);
    }

    #[test]
    fn use_after_free_segfaults() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let a = f.alloc(2);
        f.store(a, 0, 5);
        f.free(a);
        let _ = f.load(a, 0);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[]);
        assert!(matches!(
            r.outcome.failure().map(|f| &f.kind),
            Some(FailureKind::Segfault { .. })
        ));
    }

    /// The seeded two-spawn race used by the determinism tests.
    fn racy_program() -> Program {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("g", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            let ps = f.params(1);
            f.store(g as i64, 0, ps[0]);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let t1 = f.spawn(worker, &[Operand::Const(1)]);
            let t2 = f.spawn(worker, &[Operand::Const(2)]);
            f.join(t1);
            f.join(t2);
            let v = f.load(g as i64, 0);
            f.output(v);
            f.ret(None);
            f.finish();
        }
        pb.finish(main)
    }

    #[test]
    fn runs_are_deterministic_for_fixed_seed() {
        let m = Machine::new(racy_program());
        let r1 = m.run(&[], &RunConfig::with_seed(9), &mut NullHardware);
        let r2 = m.run(&[], &RunConfig::with_seed(9), &mut NullHardware);
        assert_eq!(r1.outputs, r2.outputs);
        assert_eq!(r1.steps, r2.steps);
    }

    #[test]
    fn scratch_reuse_replays_identically() {
        // One scratch, reused across repeated runs, a multithreaded
        // program (thread-state recycling) and a different machine: every
        // run must be byte-identical to a fresh-scratch run.
        let racy = Machine::new(racy_program());
        let cfg = RunConfig::with_seed(9);
        let mut scratch = RunScratch::new();
        let fresh = racy.run(&[], &cfg, &mut NullHardware);
        let r1 = racy.run_reusing(&[], &cfg, &mut NullHardware, &mut scratch);
        let r2 = racy.run_reusing(&[], &cfg, &mut NullHardware, &mut scratch);
        assert_eq!(fresh, r1);
        assert_eq!(fresh, r2);

        // Same scratch against a different program and workload.
        let m2 = Machine::new(looping_program());
        let cfg2 = RunConfig {
            profile_period: 10,
            ..RunConfig::with_seed(3)
        };
        let fresh2 = m2.run(&[50], &cfg2, &mut NullHardware);
        let r3 = m2.run_reusing(&[50], &cfg2, &mut NullHardware, &mut scratch);
        assert_eq!(fresh2, r3);
    }

    #[test]
    fn indirect_calls_dispatch_by_selector() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let f1 = pb.declare_function("one");
        let f2 = pb.declare_function("two");
        for (fid, v) in [(f1, 1i64), (f2, 2)] {
            let mut f = pb.build_function(fid, "lib.c");
            f.ret(Some(Operand::Const(v)));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let sel = f.read_input(0);
            let r = f.call_indirect(vec![f1, f2], sel, &[]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        let cfg = RunConfig::default();
        assert_eq!(m.run(&[0], &cfg, &mut NullHardware).outputs, vec![1]);
        assert_eq!(m.run(&[1], &cfg, &mut NullHardware).outputs, vec![2]);
    }

    /// main calls `work`, which loops `n` times — deep enough stacks and
    /// enough steps for the sampling countdown to fire repeatedly.
    fn looping_program() -> Program {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let work = pb.declare_function("work");
        {
            let mut f = pb.build_function(work, "lib.c");
            let ps = f.params(1);
            let header = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            let i = f.var();
            f.assign(i, 0);
            f.jmp(header);
            f.set_block(header);
            let c = f.bin(BinOp::Lt, i, ps[0]);
            f.br(c, body, done);
            f.set_block(body);
            f.assign_bin(i, BinOp::Add, i, 1);
            f.jmp(header);
            f.set_block(done);
            f.ret(Some(i.into()));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let n = f.read_input(0);
            let r = f.call(work, &[n.into()]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        pb.finish(main)
    }

    #[test]
    fn guest_sampling_fires_on_period_and_replays_identically() {
        let m = Machine::new(looping_program());
        let cfg = RunConfig {
            profile_period: 10,
            ..RunConfig::with_seed(3)
        };
        let r1 = m.run(&[50], &cfg, &mut NullHardware);
        let r2 = m.run(&[50], &cfg, &mut NullHardware);
        // One sample per full period, at exact period multiples.
        assert_eq!(r1.stack_samples.len() as u64, r1.steps / 10);
        assert!(!r1.stack_samples.is_empty());
        for s in &r1.stack_samples {
            assert_eq!(s.step % 10, 0);
            assert!(!s.frames.is_empty());
            assert_eq!(s.frames[0].0, FuncId::new(0), "outermost frame is main");
        }
        // Most of the run sits inside work(): some sample must see the
        // two-deep main -> work stack.
        assert!(r1.stack_samples.iter().any(|s| s.frames.len() == 2));
        // The sample stream is as deterministic as the run.
        assert_eq!(r1.stack_samples, r2.stack_samples);
        assert_eq!(r1.steps, r2.steps);
    }

    #[test]
    fn guest_sampling_disabled_records_nothing_and_changes_nothing() {
        let m = Machine::new(looping_program());
        let plain = RunConfig::with_seed(3);
        let profiled = RunConfig {
            profile_period: 7,
            ..RunConfig::with_seed(3)
        };
        let r_plain = m.run(&[50], &plain, &mut NullHardware);
        let r_prof = m.run(&[50], &profiled, &mut NullHardware);
        assert!(r_plain.stack_samples.is_empty());
        assert!(r_plain.lock_waits.is_empty());
        // Profiling observes the run without perturbing it.
        assert_eq!(r_plain.outputs, r_prof.outputs);
        assert_eq!(r_plain.steps, r_prof.steps);
        assert_eq!(r_plain.outcome, r_prof.outcome);
    }

    #[test]
    fn guest_lock_profile_attributes_holder_and_wait() {
        // Main grabs the mutex, spawns a worker that wants it, and holds
        // on through a pile of yields: the worker's acquisition must be
        // recorded with main as the holder and a nonzero wait.
        let mut pb = ProgramBuilder::new("p");
        let mutex = pb.global("mutex", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            f.lock(mutex as i64);
            f.unlock(mutex as i64);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            f.lock(mutex as i64);
            let t = f.spawn(worker, &[]);
            for _ in 0..64 {
                f.yield_now();
            }
            f.unlock(mutex as i64);
            f.join(t);
            f.ret(None);
            f.finish();
        }
        let m = Machine::new(pb.finish(main));
        let contended = (0..10).find_map(|seed| {
            let cfg = RunConfig {
                profile_period: 1,
                ..RunConfig::with_seed(seed)
            };
            let r = m.run(&[], &cfg, &mut NullHardware);
            assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
            r.lock_waits.first().copied().map(|w| (seed, r.clone(), w))
        });
        let (seed, r, w) = contended.expect("some seed contends the lock");
        assert_eq!(w.addr, mutex);
        assert_eq!(w.waiter, ThreadId(1));
        assert_eq!(w.holder, Some(ThreadId::MAIN));
        assert!(w.wait_steps >= 1, "blocked at least one step");
        assert!(w.acquired_step > 0);
        // Replays identically.
        let cfg = RunConfig {
            profile_period: 1,
            ..RunConfig::with_seed(seed)
        };
        assert_eq!(m.run(&[], &cfg, &mut NullHardware).lock_waits, r.lock_waits);
    }
}
