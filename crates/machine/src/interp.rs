//! The deterministic multithreaded interpreter.
//!
//! [`Machine`] owns a validated [`Program`] plus its address [`Layout`] and
//! executes workloads under a [`RunConfig`], driving a [`Hardware`]
//! implementation with branch-retirement and cache-access events — exactly
//! the event streams LBR and LCR consume.
//!
//! Determinism: given the same `(program, inputs, config)` triple, a run
//! replays identically — the scheduler and the sampling countdowns use the
//! seeded [`SplitMix64`].

use crate::events::{
    AccessEvent, AccessKind, BranchEvent, BranchKind, CtlResponse, Hardware, HwCtlOp, Ring,
};
use crate::ids::{BlockId, CoreId, FuncId, ThreadId, VarId};
use crate::ir::{
    BinOp, Callee, Instr, Operand, Program, Rvalue, SourceLoc, Terminator, UnOp, STACK_BASE,
    STACK_STRIDE,
};
use crate::layout::{Layout, SLOT};
use crate::memory::{MemFault, Memory, RegionKind};
use crate::report::{
    Failure, FailureKind, LockWaitEvent, LogEvent, ProfileData, ProfileEvent, RunOutcome,
    RunReport, SampleEvent, StackSample,
};
use crate::rng::SplitMix64;
use crate::sched::{SchedPolicy, Scheduler};

/// Configuration of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// Watchdog step budget; exceeding it reports a [`FailureKind::Hang`].
    pub max_steps: u64,
    /// Scheduling policy.
    pub scheduler: SchedPolicy,
    /// Number of simulated cores; threads map to cores round-robin.
    pub num_cores: u32,
    /// Mean period of the [`Instr::Sample`] countdown (the CBI `1/rate`).
    pub sample_mean: u32,
    /// Seed of the sampling countdown PRNG.
    pub sample_seed: u64,
    /// Maximum call depth before a stack-overflow failure.
    pub max_call_depth: usize,
    /// Guest-profiler sampling period: every `profile_period` retired
    /// instructions the interpreter captures the scheduled thread's call
    /// stack into [`RunReport::stack_samples`] and tracks contended lock
    /// acquisitions into [`RunReport::lock_waits`]. 0 (the default)
    /// disables profiling entirely — the hot loop then pays exactly one
    /// integer compare per step.
    pub profile_period: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 2_000_000,
            scheduler: SchedPolicy::default(),
            num_cores: 4,
            sample_mean: 100,
            sample_seed: 0,
            max_call_depth: 128,
            profile_period: 0,
        }
    }
}

impl RunConfig {
    /// Convenience: a config with a random scheduler seeded by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        RunConfig {
            scheduler: SchedPolicy::Random { seed },
            ..RunConfig::default()
        }
    }
}

/// A loaded program ready to execute workloads.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    layout: Layout,
}

impl Machine {
    /// Loads a program, computing its address layout.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation — construct programs through
    /// [`ProgramBuilder`](crate::builder::ProgramBuilder) to avoid this.
    pub fn new(program: Program) -> Self {
        program
            .validate()
            .expect("program failed validation; build with ProgramBuilder");
        let layout = Layout::build(&program);
        Machine { program, layout }
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program's address layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Executes one run.
    pub fn run<H: Hardware>(&self, inputs: &[i64], config: &RunConfig, hw: &mut H) -> RunReport {
        Exec::new(self, inputs, config, hw).run()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedLock(u64),
    BlockedJoin(ThreadId),
    Done,
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    vars: Vec<i64>,
    stack_base: u64,
    ret_dst: Option<VarId>,
    ret_pc: u64,
}

/// One in-progress contended lock acquisition, tracked per thread while
/// guest profiling is on: where the thread first blocked and on whom.
#[derive(Debug, Clone, Copy)]
struct PendingLock {
    addr: u64,
    since_step: u64,
    holder: Option<ThreadId>,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    frames: Vec<Frame>,
    sp: u64,
    countdown: u32,
    /// Global step at which this thread last retired an instruction.
    last_step: u64,
    /// Contended acquisition in progress (guest profiling only).
    pending_lock: Option<PendingLock>,
}

enum Flow {
    /// Advance to the next statement.
    Next,
    /// Control transferred (branch/call/ret handled positioning itself).
    Jumped,
    /// Re-execute the same statement later (blocked).
    Blocked,
    /// The whole program exits.
    Exit(i64),
    /// The run fails.
    Fault(FailureKind),
}

struct Exec<'m, 'h, H> {
    m: &'m Machine,
    cfg: &'m RunConfig,
    hw: &'h mut H,
    inputs: Vec<i64>,
    mem: Memory,
    threads: Vec<ThreadState>,
    sched: Scheduler,
    sample_rng: SplitMix64,
    report: RunReport,
    steps: u64,
    // Local telemetry accumulators, flushed once per run so the hot loop
    // never touches shared atomics.
    loads: u64,
    stores: u64,
    ctx_switches: u64,
    last_tid: Option<ThreadId>,
}

impl<'m, 'h, H: Hardware> Exec<'m, 'h, H> {
    fn new(m: &'m Machine, inputs: &[i64], cfg: &'m RunConfig, hw: &'h mut H) -> Self {
        let mut mem = Memory::new();
        for g in &m.program.globals {
            mem.map_fixed(g.addr, g.words * 8, RegionKind::Global);
            for (i, v) in g.init.iter().enumerate() {
                mem.poke(g.addr + i as u64 * 8, *v);
            }
        }
        let report = RunReport {
            outcome: RunOutcome::Completed { exit_code: 0 },
            outputs: Vec::new(),
            logs: Vec::new(),
            profiles: Vec::new(),
            samples: Vec::new(),
            steps: 0,
            branches_retired: 0,
            accesses_retired: 0,
            threads_spawned: 0,
            thread_states: Vec::new(),
            stack_samples: Vec::new(),
            lock_waits: Vec::new(),
        };
        let mut exec = Exec {
            m,
            cfg,
            hw,
            inputs: inputs.to_vec(),
            mem,
            threads: Vec::new(),
            sched: Scheduler::new(cfg.scheduler),
            sample_rng: SplitMix64::new(cfg.sample_seed),
            report,
            steps: 0,
            loads: 0,
            stores: 0,
            ctx_switches: 0,
            last_tid: None,
        };
        exec.spawn_thread(m.program.entry, &[]);
        exec
    }

    fn core_of(&self, tid: ThreadId) -> CoreId {
        CoreId(tid.0 % self.cfg.num_cores.max(1))
    }

    fn spawn_thread(&mut self, func: FuncId, args: &[i64]) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        let stack_region = STACK_BASE + tid.0 as u64 * STACK_STRIDE;
        self.mem
            .map_fixed(stack_region, STACK_STRIDE / 2, RegionKind::Stack);
        let f = self.m.program.function(func);
        let mut vars = vec![0i64; f.num_vars as usize];
        for (i, a) in args.iter().enumerate().take(f.params as usize) {
            vars[i] = *a;
        }
        let frame = Frame {
            func,
            block: BlockId::new(0),
            ip: 0,
            vars,
            stack_base: stack_region,
            ret_dst: None,
            ret_pc: 0,
        };
        let sp = f.frame_slots as u64 * 8;
        self.threads.push(ThreadState {
            status: Status::Runnable,
            frames: vec![frame],
            sp,
            countdown: self.sample_rng.next_countdown(self.cfg.sample_mean),
            last_step: 0,
            pending_lock: None,
        });
        self.report.threads_spawned += 1;
        tid
    }

    fn is_runnable(&self, tid: ThreadId) -> bool {
        match self.threads[tid.index()].status {
            Status::Runnable => true,
            Status::BlockedLock(addr) => matches!(self.mem.read(addr), Ok(0) | Err(_)),
            Status::BlockedJoin(t) => {
                self.threads.get(t.index()).map(|t| t.status) == Some(Status::Done)
            }
            Status::Done => false,
        }
    }

    fn run(mut self) -> RunReport {
        let _span = stm_telemetry::span_cat("machine.run", "machine");
        loop {
            if self.threads[0].status == Status::Done {
                break;
            }
            let runnable: Vec<ThreadId> = (0..self.threads.len() as u32)
                .map(ThreadId)
                .filter(|t| self.is_runnable(*t))
                .collect();
            if runnable.is_empty() {
                let victim = (0..self.threads.len() as u32)
                    .map(ThreadId)
                    .find(|t| self.threads[t.index()].status != Status::Done)
                    .unwrap_or(ThreadId::MAIN);
                self.fail(victim, FailureKind::Deadlock);
                break;
            }
            let tid = self.sched.pick(&runnable);
            if self.last_tid.is_some_and(|last| last != tid) {
                self.ctx_switches += 1;
            }
            self.last_tid = Some(tid);
            self.steps += 1;
            if self.steps > self.cfg.max_steps {
                self.fail(tid, FailureKind::Hang);
                break;
            }
            // Unblock the thread; blocked statements re-execute.
            self.threads[tid.index()].status = Status::Runnable;
            self.threads[tid.index()].last_step = self.steps;
            // The guest profiler's "sampling interrupt": driven by the
            // retired-instruction count, not wall-clock, so the sample
            // stream replays identically with the run.
            if self.cfg.profile_period != 0 && self.steps.is_multiple_of(self.cfg.profile_period) {
                self.record_stack_sample(tid);
            }
            match self.step(tid) {
                Flow::Next => {
                    self.threads[tid.index()]
                        .frames
                        .last_mut()
                        .expect("running thread has a frame")
                        .ip += 1;
                }
                Flow::Jumped | Flow::Blocked => {}
                Flow::Exit(code) => {
                    self.report.outcome = RunOutcome::Completed { exit_code: code };
                    break;
                }
                Flow::Fault(kind) => {
                    self.fail(tid, kind);
                    break;
                }
            }
        }
        self.report.steps = self.steps;
        self.record_thread_states();
        self.flush_telemetry();
        self.report
    }

    /// Captures every thread's final context into the report — the
    /// flight-recorder view of where each thread stood when the run ended.
    fn record_thread_states(&mut self) {
        use crate::report::{FinalStatus, ThreadFinalState};
        let mut states = Vec::with_capacity(self.threads.len());
        for (i, t) in self.threads.iter().enumerate() {
            let tid = ThreadId(i as u32);
            let status = match t.status {
                Status::Runnable => FinalStatus::Runnable,
                Status::BlockedLock(addr) => FinalStatus::BlockedLock(addr),
                Status::BlockedJoin(j) => FinalStatus::BlockedJoin(j),
                Status::Done => FinalStatus::Done,
            };
            let (func, loc, pc) = self.position(tid);
            states.push(ThreadFinalState {
                thread: tid,
                status,
                func,
                loc,
                pc,
                last_step: t.last_step,
            });
        }
        self.report.thread_states = states;
    }

    /// Captures the scheduled thread's call stack, outermost frame first —
    /// the guest profiler's sample. Only called while profiling is on.
    fn record_stack_sample(&mut self, tid: ThreadId) {
        let frames = self.threads[tid.index()]
            .frames
            .iter()
            .map(|f| (f.func, f.block))
            .collect();
        self.report.stack_samples.push(StackSample {
            thread: tid,
            step: self.steps,
            frames,
        });
    }

    /// Guest profiling: a lock acquisition failed; remember when this
    /// thread first blocked on the lock and who held it then (the lock
    /// word stores `holder + 1`).
    fn record_lock_blocked(&mut self, tid: ThreadId, addr: u64, held: i64) {
        let holder = u32::try_from(held - 1)
            .ok()
            .map(ThreadId)
            .filter(|h| h.index() < self.threads.len());
        let t = &mut self.threads[tid.index()];
        let fresh = match t.pending_lock {
            Some(p) => p.addr != addr,
            None => true,
        };
        if fresh {
            t.pending_lock = Some(PendingLock {
                addr,
                since_step: self.steps,
                holder,
            });
        }
    }

    /// Guest profiling: a lock acquisition succeeded. When the thread had
    /// been blocked on this same lock, emit the wait record (uncontended
    /// acquisitions record nothing).
    fn record_lock_acquired(&mut self, tid: ThreadId, addr: u64, pc: u64) {
        let t = &mut self.threads[tid.index()];
        let Some(p) = t.pending_lock.take() else {
            return;
        };
        if p.addr != addr {
            t.pending_lock = Some(p);
            return;
        }
        self.report.lock_waits.push(LockWaitEvent {
            addr,
            waiter: tid,
            holder: p.holder,
            wait_steps: self.steps.saturating_sub(p.since_step),
            acquired_step: self.steps,
            pc,
        });
    }

    /// Flushes the run's telemetry accumulators into the global collector
    /// (one batch of atomic adds per run; free when collection is off).
    fn flush_telemetry(&self) {
        if !stm_telemetry::enabled() {
            return;
        }
        stm_telemetry::counter!("machine.runs").incr();
        stm_telemetry::counter!("machine.instructions").add(self.steps);
        stm_telemetry::counter!("machine.branches").add(self.report.branches_retired);
        stm_telemetry::counter!("machine.loads").add(self.loads);
        stm_telemetry::counter!("machine.stores").add(self.stores);
        stm_telemetry::counter!("machine.context_switches").add(self.ctx_switches);
        stm_telemetry::counter!("machine.threads_spawned").add(self.report.threads_spawned as u64);
        if self.report.outcome.is_completed() {
            stm_telemetry::counter!("machine.runs_completed").incr();
        } else {
            stm_telemetry::counter!("machine.runs_failed").incr();
        }
        stm_telemetry::histogram!("machine.run_steps").record(self.steps);
        if self.cfg.profile_period != 0 {
            stm_telemetry::counter!("machine.profile_samples")
                .add(self.report.stack_samples.len() as u64);
            stm_telemetry::counter!("machine.profile_lock_waits")
                .add(self.report.lock_waits.len() as u64);
        }
    }

    /// Records the failure and lets the registered fault handler profile
    /// the hardware short-term memory (transformer step 4 of §5.1).
    fn fail(&mut self, tid: ThreadId, kind: FailureKind) {
        let (func, loc, pc) = self.position(tid);
        self.report.outcome = RunOutcome::Failed(Failure {
            kind,
            thread: tid,
            func,
            loc,
            pc,
        });
        let core = self.core_of(tid);
        let fp = self.m.program.fault_profile;
        if fp.lbr {
            self.hw.ctl(core, tid, HwCtlOp::DisableLbr);
            if let CtlResponse::Lbr(records) = self.hw.ctl(core, tid, HwCtlOp::ProfileLbr) {
                self.report.profiles.push(ProfileEvent {
                    site: None,
                    role: crate::ir::ProfileRole::FailureSite,
                    thread: tid,
                    step: self.steps,
                    data: ProfileData::Lbr(records),
                });
            }
        }
        if fp.lcr {
            self.hw.ctl(core, tid, HwCtlOp::DisableLcr);
            if let CtlResponse::Lcr(records) = self.hw.ctl(core, tid, HwCtlOp::ProfileLcr) {
                self.report.profiles.push(ProfileEvent {
                    site: None,
                    role: crate::ir::ProfileRole::FailureSite,
                    thread: tid,
                    step: self.steps,
                    data: ProfileData::Lcr(records),
                });
            }
        }
    }

    /// Current (function, location, pc) of a thread.
    fn position(&self, tid: ThreadId) -> (FuncId, SourceLoc, u64) {
        let Some(frame) = self.threads[tid.index()].frames.last() else {
            return (self.m.program.entry, SourceLoc::UNKNOWN, 0);
        };
        let block = self.m.program.function(frame.func).block(frame.block);
        if frame.ip < block.stmts.len() {
            (
                frame.func,
                block.stmts[frame.ip].loc,
                self.m
                    .layout
                    .stmt_addr(frame.func, frame.block, frame.ip as u32),
            )
        } else {
            (
                frame.func,
                block.term_loc,
                self.m.layout.term_addr(frame.func, frame.block),
            )
        }
    }

    fn eval(&self, tid: ThreadId, op: Operand) -> i64 {
        match op {
            Operand::Const(c) => c,
            Operand::Var(v) => {
                let frame = self.threads[tid.index()]
                    .frames
                    .last()
                    .expect("running thread has a frame");
                frame.vars[v.index()]
            }
        }
    }

    fn set_var(&mut self, tid: ThreadId, v: VarId, value: i64) {
        let frame = self.threads[tid.index()]
            .frames
            .last_mut()
            .expect("running thread has a frame");
        frame.vars[v.index()] = value;
    }

    fn emit_branch(&mut self, tid: ThreadId, from: u64, to: u64, kind: BranchKind, ring: Ring) {
        let core = self.core_of(tid);
        self.hw.on_branch(
            core,
            BranchEvent {
                from,
                to,
                kind,
                ring,
            },
        );
        self.report.branches_retired += 1;
    }

    /// Emits the kernel-side branches of a syscall/ioctl.
    fn emit_kernel_branches(&mut self, tid: ThreadId, conds: u8) {
        let (_, _, pc) = self.position(tid);
        const KERNEL_BASE: u64 = 0xffff_8000_0000_0000;
        self.emit_branch(tid, pc, KERNEL_BASE, BranchKind::Far, Ring::Kernel);
        for i in 0..conds {
            self.emit_branch(
                tid,
                KERNEL_BASE + 8 * i as u64,
                KERNEL_BASE + 0x100 + 8 * i as u64,
                BranchKind::CondJump,
                Ring::Kernel,
            );
        }
        self.emit_branch(
            tid,
            KERNEL_BASE + 0x200,
            pc + SLOT,
            BranchKind::Far,
            Ring::Kernel,
        );
    }

    /// Performs a checked data access: fault check first (a faulting access
    /// never retires), then the cache/hardware notification, then the
    /// actual memory operation.
    fn access(
        &mut self,
        tid: ThreadId,
        pc: u64,
        addr: u64,
        kind: AccessKind,
        write_value: Option<i64>,
    ) -> Result<i64, FailureKind> {
        if !self.mem.is_mapped(addr) {
            return Err(FailureKind::Segfault { addr });
        }
        let core = self.core_of(tid);
        self.hw.on_access(
            core,
            tid,
            AccessEvent {
                pc,
                addr,
                kind,
                ring: Ring::User,
            },
        );
        self.report.accesses_retired += 1;
        match kind {
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
        }
        match write_value {
            Some(v) => {
                self.mem.write(addr, v).map_err(fault_to_failure)?;
                Ok(v)
            }
            None => self.mem.read(addr).map_err(fault_to_failure),
        }
    }

    fn step(&mut self, tid: ThreadId) -> Flow {
        let frame = self.threads[tid.index()]
            .frames
            .last()
            .expect("running thread has a frame");
        let (func, block, ip) = (frame.func, frame.block, frame.ip);
        // Borrow the program through the machine's own lifetime so the
        // instruction stays readable while execution state is mutated.
        let m: &'m Machine = self.m;
        let blk = m.program.function(func).block(block);
        if ip < blk.stmts.len() {
            let instr = &blk.stmts[ip].instr;
            let pc = m.layout.stmt_addr(func, block, ip as u32);
            self.exec_instr(tid, pc, instr)
        } else {
            let term = blk.term;
            self.exec_term(tid, func, block, term)
        }
    }

    fn exec_instr(&mut self, tid: ThreadId, pc: u64, instr: &Instr) -> Flow {
        match instr {
            Instr::Assign { dst, rv } => {
                let value = match rv {
                    Rvalue::Use(op) => self.eval(tid, *op),
                    Rvalue::Binary { op, lhs, rhs } => {
                        let l = self.eval(tid, *lhs);
                        let r = self.eval(tid, *rhs);
                        match eval_bin(*op, l, r) {
                            Some(v) => v,
                            None => return Flow::Fault(FailureKind::DivByZero),
                        }
                    }
                    Rvalue::Unary { op, operand } => {
                        let v = self.eval(tid, *operand);
                        match op {
                            UnOp::Neg => v.wrapping_neg(),
                            UnOp::Not => i64::from(v == 0),
                            UnOp::BitNot => !v,
                        }
                    }
                    Rvalue::ReadInput { index } => {
                        let i = self.eval(tid, *index);
                        usize::try_from(i)
                            .ok()
                            .and_then(|i| self.inputs.get(i).copied())
                            .unwrap_or(0)
                    }
                };
                self.set_var(tid, *dst, value);
                Flow::Next
            }
            Instr::Load { dst, addr, disp } => {
                let a = (self.eval(tid, *addr)).wrapping_add(*disp) as u64;
                match self.access(tid, pc, a, AccessKind::Load, None) {
                    Ok(v) => {
                        self.set_var(tid, *dst, v);
                        Flow::Next
                    }
                    Err(k) => Flow::Fault(k),
                }
            }
            Instr::Store { addr, disp, value } => {
                let a = (self.eval(tid, *addr)).wrapping_add(*disp) as u64;
                let v = self.eval(tid, *value);
                match self.access(tid, pc, a, AccessKind::Store, Some(v)) {
                    Ok(_) => Flow::Next,
                    Err(k) => Flow::Fault(k),
                }
            }
            Instr::StackLoad { dst, slot } => {
                let base = self.threads[tid.index()]
                    .frames
                    .last()
                    .expect("running thread has a frame")
                    .stack_base;
                let a = base + *slot as u64 * 8;
                match self.access(tid, pc, a, AccessKind::Load, None) {
                    Ok(v) => {
                        self.set_var(tid, *dst, v);
                        Flow::Next
                    }
                    Err(k) => Flow::Fault(k),
                }
            }
            Instr::StackStore { slot, value } => {
                let base = self.threads[tid.index()]
                    .frames
                    .last()
                    .expect("running thread has a frame")
                    .stack_base;
                let a = base + *slot as u64 * 8;
                let v = self.eval(tid, *value);
                match self.access(tid, pc, a, AccessKind::Store, Some(v)) {
                    Ok(_) => Flow::Next,
                    Err(k) => Flow::Fault(k),
                }
            }
            Instr::Alloc { dst, words } => {
                let w = self.eval(tid, *words).max(0) as u64;
                let base = self.mem.alloc(w);
                self.set_var(tid, *dst, base as i64);
                Flow::Next
            }
            Instr::Free { addr } => {
                let a = self.eval(tid, *addr) as u64;
                match self.mem.free(a) {
                    Ok(()) => Flow::Next,
                    Err(MemFault::InvalidFree { addr }) => {
                        Flow::Fault(FailureKind::InvalidFree { addr })
                    }
                    Err(MemFault::Unmapped { addr }) => Flow::Fault(FailureKind::Segfault { addr }),
                }
            }
            Instr::Call { dst, callee, args } => {
                let (target, kind) = match callee {
                    Callee::Direct(f) => (*f, BranchKind::NearRelCall),
                    Callee::Indirect { targets, selector } => {
                        let s = self.eval(tid, *selector);
                        let idx = (s.rem_euclid(targets.len() as i64)) as usize;
                        (targets[idx], BranchKind::NearIndCall)
                    }
                };
                if self.threads[tid.index()].frames.len() >= self.cfg.max_call_depth {
                    return Flow::Fault(FailureKind::StackOverflow);
                }
                let arg_vals: Vec<i64> = args.iter().map(|a| self.eval(tid, *a)).collect();
                let entry = self.m.layout.func_entry(target);
                self.emit_branch(tid, pc, entry, kind, Ring::User);
                let f = self.m.program.function(target);
                let mut vars = vec![0i64; f.num_vars as usize];
                for (i, v) in arg_vals.iter().enumerate().take(f.params as usize) {
                    vars[i] = *v;
                }
                let t = &mut self.threads[tid.index()];
                let stack_base = STACK_BASE + tid.0 as u64 * STACK_STRIDE + t.sp;
                t.sp += f.frame_slots as u64 * 8;
                if t.sp >= STACK_STRIDE / 2 {
                    return Flow::Fault(FailureKind::StackOverflow);
                }
                t.frames.push(Frame {
                    func: target,
                    block: BlockId::new(0),
                    ip: 0,
                    vars,
                    stack_base,
                    ret_dst: *dst,
                    ret_pc: pc + SLOT,
                });
                Flow::Jumped
            }
            Instr::Spawn { dst, func, args } => {
                let arg_vals: Vec<i64> = args.iter().map(|a| self.eval(tid, *a)).collect();
                let new_tid = self.spawn_thread(*func, &arg_vals);
                self.set_var(tid, *dst, new_tid.0 as i64);
                Flow::Next
            }
            Instr::Join { thread } => {
                let t = self.eval(tid, *thread);
                let target = ThreadId(t.max(0) as u32);
                if target.index() >= self.threads.len() {
                    return Flow::Next; // joining a never-spawned thread is a no-op
                }
                if self.threads[target.index()].status == Status::Done {
                    Flow::Next
                } else {
                    self.threads[tid.index()].status = Status::BlockedJoin(target);
                    Flow::Blocked
                }
            }
            Instr::Lock { addr } => {
                let a = self.eval(tid, *addr) as u64;
                if !self.mem.is_mapped(a) {
                    return Flow::Fault(FailureKind::Segfault { addr: a });
                }
                let held = self.mem.read(a).unwrap_or(0);
                if held == 0 {
                    match self.access(tid, pc, a, AccessKind::Store, Some(tid.0 as i64 + 1)) {
                        Ok(_) => {
                            if self.cfg.profile_period != 0 {
                                self.record_lock_acquired(tid, a, pc);
                            }
                            Flow::Next
                        }
                        Err(k) => Flow::Fault(k),
                    }
                } else {
                    // Failed acquisition: observe the lock word, then sleep.
                    if let Err(k) = self.access(tid, pc, a, AccessKind::Load, None) {
                        return Flow::Fault(k);
                    }
                    if self.cfg.profile_period != 0 {
                        self.record_lock_blocked(tid, a, held);
                    }
                    self.threads[tid.index()].status = Status::BlockedLock(a);
                    Flow::Blocked
                }
            }
            Instr::Unlock { addr } => {
                let a = self.eval(tid, *addr) as u64;
                match self.access(tid, pc, a, AccessKind::Store, Some(0)) {
                    Ok(_) => Flow::Next,
                    Err(k) => Flow::Fault(k),
                }
            }
            Instr::Output { value } => {
                let v = self.eval(tid, *value);
                self.report.outputs.push(v);
                Flow::Next
            }
            Instr::Log { site, kind, .. } => {
                self.report.logs.push(LogEvent {
                    site: *site,
                    kind: *kind,
                    thread: tid,
                    step: self.steps,
                });
                self.emit_kernel_branches(tid, 2);
                Flow::Next
            }
            Instr::HwCtl { op, site, role } => {
                let core = self.core_of(tid);
                match op {
                    HwCtlOp::ProfileLbr => {
                        // The access path executes no user-level branches;
                        // the ioctl's kernel branches happen after the read.
                        let resp = self.hw.ctl(core, tid, *op);
                        if let CtlResponse::Lbr(records) = resp {
                            self.report.profiles.push(ProfileEvent {
                                site: *site,
                                role: *role,
                                thread: tid,
                                step: self.steps,
                                data: ProfileData::Lbr(records),
                            });
                        }
                        self.emit_kernel_branches(tid, 1);
                    }
                    HwCtlOp::ProfileLcr => {
                        let resp = self.hw.ctl(core, tid, *op);
                        if let CtlResponse::Lcr(records) = resp {
                            self.report.profiles.push(ProfileEvent {
                                site: *site,
                                role: *role,
                                thread: tid,
                                step: self.steps,
                                data: ProfileData::Lcr(records),
                            });
                        }
                        self.emit_kernel_branches(tid, 1);
                    }
                    HwCtlOp::DisableLbr | HwCtlOp::DisableLcr => {
                        // Kernel entry happens first, then the facility is
                        // disabled inside the driver.
                        self.emit_kernel_branches(tid, 1);
                        self.hw.ctl(core, tid, *op);
                    }
                    _ => {
                        // Enable/clean/config: the facility switches state
                        // inside the driver; the return path branches are
                        // visible to an unfiltered LBR.
                        self.hw.ctl(core, tid, *op);
                        self.emit_kernel_branches(tid, 1);
                    }
                }
                Flow::Next
            }
            Instr::Sample { id, value } => {
                let t = &mut self.threads[tid.index()];
                t.countdown = t.countdown.saturating_sub(1);
                if t.countdown == 0 {
                    t.countdown = self.sample_rng.next_countdown(self.cfg.sample_mean);
                    let v = self.eval(tid, *value);
                    self.report.samples.push(SampleEvent {
                        id: *id,
                        value: v,
                        thread: tid,
                        step: self.steps,
                    });
                }
                Flow::Next
            }
            Instr::Assert { cond, message } => {
                if self.eval(tid, *cond) == 0 {
                    Flow::Fault(FailureKind::AssertFailed {
                        message: message.clone(),
                    })
                } else {
                    Flow::Next
                }
            }
            Instr::Syscall { kernel_branches } => {
                self.emit_kernel_branches(tid, *kernel_branches);
                Flow::Next
            }
            Instr::Exit { code } => Flow::Exit(self.eval(tid, *code)),
            Instr::Yield | Instr::Nop => Flow::Next,
        }
    }

    fn exec_term(&mut self, tid: ThreadId, func: FuncId, block: BlockId, term: Terminator) -> Flow {
        let taddr = self.m.layout.term_addr(func, block);
        match term {
            Terminator::Br {
                cond,
                then_blk,
                else_blk,
            } => {
                let taken_then = self.eval(tid, cond) != 0;
                let (target, from, kind) = if taken_then {
                    // Fall-through unconditional jump on the true edge.
                    (then_blk, taddr + SLOT, BranchKind::UncondRelative)
                } else {
                    // Taken conditional jump on the false edge.
                    (else_blk, taddr, BranchKind::CondJump)
                };
                let to = self.m.layout.block_addr(func, target);
                self.emit_branch(tid, from, to, kind, Ring::User);
                self.goto(tid, target);
                Flow::Jumped
            }
            Terminator::Jmp(target) => {
                if !self.m.layout.jmp_is_fallthrough(func, block) {
                    let to = self.m.layout.block_addr(func, target);
                    self.emit_branch(tid, taddr, to, BranchKind::UncondRelative, Ring::User);
                }
                self.goto(tid, target);
                Flow::Jumped
            }
            Terminator::Ret(value) => {
                let v = value.map(|op| self.eval(tid, op)).unwrap_or(0);
                let t = &mut self.threads[tid.index()];
                let done_frame = t.frames.pop().expect("running thread has a frame");
                let slots = self.m.program.function(done_frame.func).frame_slots;
                t.sp = t.sp.saturating_sub(slots as u64 * 8);
                let ret_pc = done_frame.ret_pc;
                self.emit_branch(tid, taddr, ret_pc, BranchKind::NearReturn, Ring::User);
                let t = &mut self.threads[tid.index()];
                if let Some(caller) = t.frames.last_mut() {
                    if let Some(dst) = done_frame.ret_dst {
                        caller.vars[dst.index()] = v;
                    }
                    caller.ip += 1; // move past the call
                    Flow::Jumped
                } else {
                    t.status = Status::Done;
                    Flow::Jumped
                }
            }
        }
    }

    fn goto(&mut self, tid: ThreadId, target: BlockId) {
        let frame = self.threads[tid.index()]
            .frames
            .last_mut()
            .expect("running thread has a frame");
        frame.block = target;
        frame.ip = 0;
    }
}

fn eval_bin(op: BinOp, l: i64, r: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => {
            if r == 0 {
                return None;
            }
            l.wrapping_div(r)
        }
        BinOp::Rem => {
            if r == 0 {
                return None;
            }
            l.wrapping_rem(r)
        }
        BinOp::And => l & r,
        BinOp::Or => l | r,
        BinOp::Xor => l ^ r,
        BinOp::Shl => l.wrapping_shl(r as u32),
        BinOp::Shr => l.wrapping_shr(r as u32),
        BinOp::Eq => i64::from(l == r),
        BinOp::Ne => i64::from(l != r),
        BinOp::Lt => i64::from(l < r),
        BinOp::Le => i64::from(l <= r),
        BinOp::Gt => i64::from(l > r),
        BinOp::Ge => i64::from(l >= r),
    })
}

fn fault_to_failure(f: MemFault) -> FailureKind {
    match f {
        MemFault::Unmapped { addr } => FailureKind::Segfault { addr },
        MemFault::InvalidFree { addr } => FailureKind::InvalidFree { addr },
    }
}

// Send/Sync audit: the parallel collection engine (stm-core) clones a
// `Machine` per worker thread and moves run reports back over channels.
// These assertions fail to compile if anyone introduces interior
// mutability or thread-bound state (Rc, RefCell, raw pointers) into the
// interpreter's plain-data types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Machine>();
    assert_send_sync::<crate::ir::Program>();
    assert_send_sync::<RunConfig>();
    assert_send_sync::<crate::report::RunReport>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::events::NullHardware;
    use crate::ir::LogKind;

    fn run(p: Program, inputs: &[i64]) -> RunReport {
        let m = Machine::new(p);
        m.run(inputs, &RunConfig::default(), &mut NullHardware)
    }

    #[test]
    fn arithmetic_and_output() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let x = f.read_input(0);
        let y = f.bin(BinOp::Mul, x, 3);
        let z = f.bin(BinOp::Add, y, 1);
        f.output(z);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[7]);
        assert!(r.outcome.is_completed());
        assert_eq!(r.outputs, vec![22]);
    }

    #[test]
    fn branching_selects_the_right_path() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let t = f.new_block();
        let e = f.new_block();
        let x = f.read_input(0);
        f.br(x, t, e);
        f.set_block(t);
        f.output(1);
        f.ret(None);
        f.set_block(e);
        f.output(2);
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let m = Machine::new(p);
        let cfg = RunConfig::default();
        let r1 = m.run(&[5], &cfg, &mut NullHardware);
        assert_eq!(r1.outputs, vec![1]);
        let r0 = m.run(&[0], &cfg, &mut NullHardware);
        assert_eq!(r0.outputs, vec![2]);
    }

    #[test]
    fn loop_sums_inputs() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let n = f.read_input(0);
        let i = f.var();
        let sum = f.var();
        f.assign(i, 0);
        f.assign(sum, 0);
        f.jmp(header);
        f.set_block(header);
        let c = f.bin(BinOp::Lt, i, n);
        f.br(c, body, exit);
        f.set_block(body);
        let i1 = f.bin(BinOp::Add, i, 1);
        let v = f.read_input(i1);
        f.assign_bin(sum, BinOp::Add, sum, v);
        f.assign(i, i1);
        f.jmp(header);
        f.set_block(exit);
        f.output(sum);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[3, 10, 20, 30]);
        assert_eq!(r.outputs, vec![60]);
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let add = pb.declare_function("add");
        {
            let mut f = pb.build_function(add, "lib.c");
            let ps = f.params(2);
            let s = f.bin(BinOp::Add, ps[0], ps[1]);
            f.ret(Some(s.into()));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let r = f.call(add, &[Operand::Const(4), Operand::Const(5)]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        let r = run(pb.finish(main), &[]);
        assert_eq!(r.outputs, vec![9]);
    }

    #[test]
    fn recursion_works_and_overflow_is_detected() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let rec = pb.declare_function("rec");
        {
            let mut f = pb.build_function(rec, "lib.c");
            let ps = f.params(1);
            let base = f.new_block();
            let step = f.new_block();
            let c = f.bin(BinOp::Le, ps[0], 0);
            f.br(c, base, step);
            f.set_block(base);
            f.ret(Some(Operand::Const(0)));
            f.set_block(step);
            let n1 = f.bin(BinOp::Sub, ps[0], 1);
            let sub = f.call(rec, &[n1.into()]);
            let s = f.bin(BinOp::Add, sub, ps[0]);
            f.ret(Some(s.into()));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let n = f.read_input(0);
            let r = f.call(rec, &[n.into()]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        let cfg = RunConfig::default();
        let ok = m.run(&[10], &cfg, &mut NullHardware);
        assert_eq!(ok.outputs, vec![55]);
        let deep = m.run(&[100_000], &cfg, &mut NullHardware);
        assert_eq!(
            deep.outcome.failure().map(|f| &f.kind),
            Some(&FailureKind::StackOverflow)
        );
    }

    #[test]
    fn globals_heap_and_segfault() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global_init("g", 2, vec![11, 22]);
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let v = f.load(g as i64, 8);
        f.output(v);
        let buf = f.alloc(4);
        f.store(buf, 0, 99);
        let w = f.load(buf, 0);
        f.output(w);
        let _crash = f.load(0i64, 0);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[]);
        assert_eq!(r.outputs, vec![22, 99]);
        match r.outcome.failure() {
            Some(Failure {
                kind: FailureKind::Segfault { addr: 0 },
                ..
            }) => {}
            other => panic!("expected segfault, got {other:?}"),
        }
    }

    #[test]
    fn div_by_zero_faults() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let x = f.read_input(0);
        let _ = f.bin(BinOp::Div, 10, x);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[0]);
        assert_eq!(
            r.outcome.failure().map(|f| &f.kind),
            Some(&FailureKind::DivByZero)
        );
    }

    #[test]
    fn assert_failure_reports_message() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let x = f.read_input(0);
        f.assert(x, "input must be non-zero");
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[0]);
        match r.outcome.failure() {
            Some(Failure {
                kind: FailureKind::AssertFailed { message },
                ..
            }) => assert_eq!(message, "input must be non-zero"),
            other => panic!("expected assert failure, got {other:?}"),
        }
    }

    #[test]
    fn spawn_join_and_shared_memory() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("shared", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            let ps = f.params(1);
            f.store(g as i64, 0, ps[0]);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let t = f.spawn(worker, &[Operand::Const(77)]);
            f.join(t);
            let v = f.load(g as i64, 0);
            f.output(v);
            f.ret(None);
            f.finish();
        }
        let r = run(pb.finish(main), &[]);
        assert!(r.outcome.is_completed());
        assert_eq!(r.outputs, vec![77]);
        assert_eq!(r.threads_spawned, 2);
        // The flight-recorder context covers both threads in spawn order;
        // the worker finished (joined), so it reads as done.
        assert_eq!(r.thread_states.len(), 2);
        assert_eq!(r.thread_states[0].thread, ThreadId::MAIN);
        assert_eq!(r.thread_states[1].thread, ThreadId(1));
        assert_eq!(r.thread_states[1].status, crate::report::FinalStatus::Done);
        assert!(r.thread_states[0].last_step >= r.thread_states[1].last_step);
    }

    #[test]
    fn deadlock_records_blocked_thread_states() {
        // Main locks the mutex and joins a worker that also wants it:
        // a guaranteed deadlock whose final states name the lock address.
        let mut pb = ProgramBuilder::new("p");
        let mutex = pb.global("mutex", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            f.lock(mutex as i64);
            f.unlock(mutex as i64);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            f.lock(mutex as i64);
            let t = f.spawn(worker, &[]);
            f.join(t);
            f.unlock(mutex as i64);
            f.ret(None);
            f.finish();
        }
        let r = run(pb.finish(main), &[]);
        assert!(matches!(
            r.outcome.failure().map(|f| &f.kind),
            Some(FailureKind::Deadlock)
        ));
        use crate::report::FinalStatus;
        assert_eq!(r.thread_states.len(), 2);
        assert_eq!(
            r.thread_states[0].status,
            FinalStatus::BlockedJoin(ThreadId(1))
        );
        assert_eq!(r.thread_states[1].status, FinalStatus::BlockedLock(mutex));
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        // Two threads increment a shared counter 100 times each under a
        // lock; with mutual exclusion the result is exactly 200.
        let mut pb = ProgramBuilder::new("p");
        let mutex = pb.global("mutex", 1);
        let counter = pb.global("counter", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            let header = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            let i = f.var();
            f.assign(i, 0);
            f.jmp(header);
            f.set_block(header);
            let c = f.bin(BinOp::Lt, i, 100);
            f.br(c, body, done);
            f.set_block(body);
            f.lock(mutex as i64);
            let v = f.load(counter as i64, 0);
            let v1 = f.bin(BinOp::Add, v, 1);
            f.store(counter as i64, 0, v1);
            f.unlock(mutex as i64);
            f.assign_bin(i, BinOp::Add, i, 1);
            f.jmp(header);
            f.set_block(done);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let t1 = f.spawn(worker, &[]);
            let t2 = f.spawn(worker, &[]);
            f.join(t1);
            f.join(t2);
            let v = f.load(counter as i64, 0);
            f.output(v);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        for seed in 0..5 {
            let r = m.run(&[], &RunConfig::with_seed(seed), &mut NullHardware);
            assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
            assert_eq!(r.outputs, vec![200], "seed {seed}");
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let mut pb = ProgramBuilder::new("p");
        let m1 = pb.global("m1", 1);
        let m2 = pb.global("m2", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            f.lock(m2 as i64);
            f.yield_now();
            f.lock(m1 as i64);
            f.unlock(m1 as i64);
            f.unlock(m2 as i64);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            f.lock(m1 as i64);
            let t = f.spawn(worker, &[]);
            // Give the worker a chance to grab m2 before we try it.
            for _ in 0..32 {
                f.yield_now();
            }
            f.lock(m2 as i64);
            f.unlock(m2 as i64);
            f.unlock(m1 as i64);
            f.join(t);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        let deadlocked = (0..20).any(|seed| {
            let r = m.run(&[], &RunConfig::with_seed(seed), &mut NullHardware);
            matches!(
                r.outcome.failure().map(|f| &f.kind),
                Some(FailureKind::Deadlock)
            )
        });
        assert!(deadlocked, "no seed produced the deadlock");
    }

    #[test]
    fn hang_watchdog_fires() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let spin = f.new_block();
        f.jmp(spin);
        f.set_block(spin);
        f.jmp(spin);
        f.finish();
        let p = pb.finish(main);
        let m = Machine::new(p);
        let cfg = RunConfig {
            max_steps: 1000,
            ..RunConfig::default()
        };
        let r = m.run(&[], &cfg, &mut NullHardware);
        assert_eq!(
            r.outcome.failure().map(|f| &f.kind),
            Some(&FailureKind::Hang)
        );
    }

    #[test]
    fn exit_stops_everything() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.exit(3);
        f.output(9); // never reached
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[]);
        assert_eq!(r.outcome, RunOutcome::Completed { exit_code: 3 });
        assert!(r.outputs.is_empty());
    }

    #[test]
    fn logs_are_recorded_with_sites() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let s = f.log_error("bad config");
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let site = s;
        let r = run(p, &[]);
        assert!(r.logged_error());
        assert!(r.logged_site(site));
        assert_eq!(r.logs[0].kind, LogKind::Error);
    }

    #[test]
    fn use_after_free_segfaults() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let a = f.alloc(2);
        f.store(a, 0, 5);
        f.free(a);
        let _ = f.load(a, 0);
        f.ret(None);
        f.finish();
        let r = run(pb.finish(main), &[]);
        assert!(matches!(
            r.outcome.failure().map(|f| &f.kind),
            Some(FailureKind::Segfault { .. })
        ));
    }

    #[test]
    fn runs_are_deterministic_for_fixed_seed() {
        let mut pb = ProgramBuilder::new("p");
        let g = pb.global("g", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            let ps = f.params(1);
            f.store(g as i64, 0, ps[0]);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let t1 = f.spawn(worker, &[Operand::Const(1)]);
            let t2 = f.spawn(worker, &[Operand::Const(2)]);
            f.join(t1);
            f.join(t2);
            let v = f.load(g as i64, 0);
            f.output(v);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        let r1 = m.run(&[], &RunConfig::with_seed(9), &mut NullHardware);
        let r2 = m.run(&[], &RunConfig::with_seed(9), &mut NullHardware);
        assert_eq!(r1.outputs, r2.outputs);
        assert_eq!(r1.steps, r2.steps);
    }

    #[test]
    fn indirect_calls_dispatch_by_selector() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let f1 = pb.declare_function("one");
        let f2 = pb.declare_function("two");
        for (fid, v) in [(f1, 1i64), (f2, 2)] {
            let mut f = pb.build_function(fid, "lib.c");
            f.ret(Some(Operand::Const(v)));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let sel = f.read_input(0);
            let r = f.call_indirect(vec![f1, f2], sel, &[]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let m = Machine::new(p);
        let cfg = RunConfig::default();
        assert_eq!(m.run(&[0], &cfg, &mut NullHardware).outputs, vec![1]);
        assert_eq!(m.run(&[1], &cfg, &mut NullHardware).outputs, vec![2]);
    }

    /// main calls `work`, which loops `n` times — deep enough stacks and
    /// enough steps for the sampling countdown to fire repeatedly.
    fn looping_program() -> Program {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let work = pb.declare_function("work");
        {
            let mut f = pb.build_function(work, "lib.c");
            let ps = f.params(1);
            let header = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            let i = f.var();
            f.assign(i, 0);
            f.jmp(header);
            f.set_block(header);
            let c = f.bin(BinOp::Lt, i, ps[0]);
            f.br(c, body, done);
            f.set_block(body);
            f.assign_bin(i, BinOp::Add, i, 1);
            f.jmp(header);
            f.set_block(done);
            f.ret(Some(i.into()));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            let n = f.read_input(0);
            let r = f.call(work, &[n.into()]);
            f.output(r);
            f.ret(None);
            f.finish();
        }
        pb.finish(main)
    }

    #[test]
    fn guest_sampling_fires_on_period_and_replays_identically() {
        let m = Machine::new(looping_program());
        let cfg = RunConfig {
            profile_period: 10,
            ..RunConfig::with_seed(3)
        };
        let r1 = m.run(&[50], &cfg, &mut NullHardware);
        let r2 = m.run(&[50], &cfg, &mut NullHardware);
        // One sample per full period, at exact period multiples.
        assert_eq!(r1.stack_samples.len() as u64, r1.steps / 10);
        assert!(!r1.stack_samples.is_empty());
        for s in &r1.stack_samples {
            assert_eq!(s.step % 10, 0);
            assert!(!s.frames.is_empty());
            assert_eq!(s.frames[0].0, FuncId::new(0), "outermost frame is main");
        }
        // Most of the run sits inside work(): some sample must see the
        // two-deep main -> work stack.
        assert!(r1.stack_samples.iter().any(|s| s.frames.len() == 2));
        // The sample stream is as deterministic as the run.
        assert_eq!(r1.stack_samples, r2.stack_samples);
        assert_eq!(r1.steps, r2.steps);
    }

    #[test]
    fn guest_sampling_disabled_records_nothing_and_changes_nothing() {
        let m = Machine::new(looping_program());
        let plain = RunConfig::with_seed(3);
        let profiled = RunConfig {
            profile_period: 7,
            ..RunConfig::with_seed(3)
        };
        let r_plain = m.run(&[50], &plain, &mut NullHardware);
        let r_prof = m.run(&[50], &profiled, &mut NullHardware);
        assert!(r_plain.stack_samples.is_empty());
        assert!(r_plain.lock_waits.is_empty());
        // Profiling observes the run without perturbing it.
        assert_eq!(r_plain.outputs, r_prof.outputs);
        assert_eq!(r_plain.steps, r_prof.steps);
        assert_eq!(r_plain.outcome, r_prof.outcome);
    }

    #[test]
    fn guest_lock_profile_attributes_holder_and_wait() {
        // Main grabs the mutex, spawns a worker that wants it, and holds
        // on through a pile of yields: the worker's acquisition must be
        // recorded with main as the holder and a nonzero wait.
        let mut pb = ProgramBuilder::new("p");
        let mutex = pb.global("mutex", 1);
        let main = pb.declare_function("main");
        let worker = pb.declare_function("worker");
        {
            let mut f = pb.build_function(worker, "w.c");
            f.lock(mutex as i64);
            f.unlock(mutex as i64);
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            f.lock(mutex as i64);
            let t = f.spawn(worker, &[]);
            for _ in 0..64 {
                f.yield_now();
            }
            f.unlock(mutex as i64);
            f.join(t);
            f.ret(None);
            f.finish();
        }
        let m = Machine::new(pb.finish(main));
        let contended = (0..10).find_map(|seed| {
            let cfg = RunConfig {
                profile_period: 1,
                ..RunConfig::with_seed(seed)
            };
            let r = m.run(&[], &cfg, &mut NullHardware);
            assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
            r.lock_waits.first().copied().map(|w| (seed, r.clone(), w))
        });
        let (seed, r, w) = contended.expect("some seed contends the lock");
        assert_eq!(w.addr, mutex);
        assert_eq!(w.waiter, ThreadId(1));
        assert_eq!(w.holder, Some(ThreadId::MAIN));
        assert!(w.wait_steps >= 1, "blocked at least one step");
        assert!(w.acquired_step > 0);
        // Replays identically.
        let cfg = RunConfig {
            profile_period: 1,
            ..RunConfig::with_seed(seed)
        };
        assert_eq!(m.run(&[], &cfg, &mut NullHardware).lock_waits, r.lock_waits);
    }
}
