//! Ergonomic construction of IR [`Program`]s.
//!
//! [`ProgramBuilder`] owns the program-wide registries (functions, globals,
//! files, log sites) and hands out [`FunctionBuilder`]s that append blocks
//! and statements with a cursor-style API:
//!
//! ```
//! use stm_machine::builder::ProgramBuilder;
//! use stm_machine::ir::BinOp;
//!
//! let mut pb = ProgramBuilder::new("demo");
//! let main = pb.declare_function("main");
//! let mut f = pb.build_function(main, "demo.c");
//! let x = f.read_input(0);
//! let doubled = f.bin(BinOp::Mul, x, 2);
//! f.output(doubled);
//! f.ret(None);
//! f.finish();
//! let program = pb.finish(main);
//! assert_eq!(program.functions.len(), 1);
//! ```

use crate::events::LcrConfig;
use crate::ids::{BlockId, FileId, FuncId, LogSiteId, VarId};
use crate::ir::{
    BasicBlock, BinOp, Callee, FaultProfile, Function, GlobalDef, Instr, LogKind, LogSiteInfo,
    Operand, Program, Rvalue, SourceLoc, Stmt, Terminator, UnOp, GLOBAL_BASE,
};

/// Builds a [`Program`] incrementally.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    files: Vec<String>,
    functions: Vec<Option<Function>>,
    func_names: Vec<String>,
    globals: Vec<GlobalDef>,
    next_global_addr: u64,
    log_sites: Vec<LogSiteInfo>,
    lcr_config: LcrConfig,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            files: Vec::new(),
            functions: Vec::new(),
            func_names: Vec::new(),
            globals: Vec::new(),
            next_global_addr: GLOBAL_BASE,
            log_sites: Vec::new(),
            lcr_config: LcrConfig::default(),
        }
    }

    /// Declares a function, reserving its id; the body is supplied later
    /// via [`ProgramBuilder::build_function`]. Forward declarations allow
    /// mutual recursion.
    ///
    /// # Panics
    ///
    /// Panics if the name was already declared.
    pub fn declare_function(&mut self, name: impl Into<String>) -> FuncId {
        let name = name.into();
        assert!(
            !self.func_names.contains(&name),
            "function `{name}` declared twice"
        );
        let id = FuncId::new(self.functions.len() as u32);
        self.functions.push(None);
        self.func_names.push(name);
        id
    }

    /// Looks up a declared function by name.
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.func_names
            .iter()
            .position(|n| n == name)
            .map(|i| FuncId::new(i as u32))
    }

    /// Defines a zero-initialized global of `words` 8-byte words and
    /// returns its base address.
    pub fn global(&mut self, name: impl Into<String>, words: u64) -> u64 {
        self.global_init(name, words, Vec::new())
    }

    /// Defines a global with explicit initial values and returns its base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `init` is longer than `words`.
    pub fn global_init(&mut self, name: impl Into<String>, words: u64, init: Vec<i64>) -> u64 {
        assert!(init.len() as u64 <= words, "init longer than global");
        // Start every global on its own 64-byte cache line: cross-global
        // false sharing would otherwise make coherence-event positions
        // depend on allocation order (intra-global sharing remains, which
        // is the realistic kind the paper's §5.3 discusses).
        let addr = self.next_global_addr.next_multiple_of(64);
        self.next_global_addr = addr + words.max(1) * 8;
        self.globals.push(GlobalDef {
            name: name.into(),
            addr,
            words: words.max(1),
            init,
        });
        addr
    }

    /// Interns a file name.
    pub fn file(&mut self, name: &str) -> FileId {
        if let Some(i) = self.files.iter().position(|f| f == name) {
            FileId::new(i as u32)
        } else {
            self.files.push(name.to_string());
            FileId::new(self.files.len() as u32 - 1)
        }
    }

    /// Sets the LCR configuration the program requests at startup.
    pub fn lcr_config(&mut self, config: LcrConfig) -> &mut Self {
        self.lcr_config = config;
        self
    }

    /// Starts building the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function id is unknown or already built.
    pub fn build_function(&mut self, id: FuncId, file: &str) -> FunctionBuilder<'_> {
        assert!(id.index() < self.functions.len(), "unknown function id");
        assert!(
            self.functions[id.index()].is_none(),
            "function `{}` built twice",
            self.func_names[id.index()]
        );
        let file = self.file(file);
        FunctionBuilder::new(self, id, file)
    }

    /// Finishes the program with the given entry function: installs the
    /// branch registry and validates.
    ///
    /// # Panics
    ///
    /// Panics if any declared function lacks a body, a block lacks a
    /// terminator, or validation fails — all builder-misuse bugs.
    pub fn finish(self, entry: FuncId) -> Program {
        self.try_finish(entry).expect("program failed validation")
    }

    /// Non-panicking variant of [`ProgramBuilder::finish`].
    ///
    /// # Errors
    ///
    /// Returns the validation error message.
    pub fn try_finish(self, entry: FuncId) -> Result<Program, String> {
        let mut functions = Vec::with_capacity(self.functions.len());
        for (i, f) in self.functions.into_iter().enumerate() {
            match f {
                Some(f) => functions.push(f),
                None => {
                    return Err(format!(
                        "function `{}` declared but never built",
                        self.func_names[i]
                    ))
                }
            }
        }
        let mut program = Program {
            name: self.name,
            files: self.files,
            functions,
            globals: self.globals,
            entry,
            branches: Vec::new(),
            log_sites: self.log_sites,
            fault_profile: FaultProfile::default(),
            lcr_config: self.lcr_config,
        };
        program.finalize();
        program.validate().map_err(|e| e.to_string())?;
        Ok(program)
    }

    fn alloc_log_site(
        &mut self,
        func: FuncId,
        loc: SourceLoc,
        kind: LogKind,
        msg: &str,
    ) -> LogSiteId {
        let site = LogSiteId::new(self.log_sites.len() as u32);
        self.log_sites.push(LogSiteInfo {
            site,
            func,
            loc,
            kind,
            message: msg.to_string(),
        });
        site
    }
}

/// A partially built basic block.
#[derive(Debug, Default)]
struct PartialBlock {
    stmts: Vec<Stmt>,
    term: Option<(Terminator, SourceLoc)>,
}

/// Builds one function; obtained from [`ProgramBuilder::build_function`].
///
/// The builder keeps a *current block* cursor: statement-emitting methods
/// append to it, terminator methods close it. Create additional blocks with
/// [`FunctionBuilder::new_block`] and switch with
/// [`FunctionBuilder::set_block`]. Every block must be terminated before
/// [`FunctionBuilder::finish`].
#[derive(Debug)]
pub struct FunctionBuilder<'p> {
    program: &'p mut ProgramBuilder,
    id: FuncId,
    file: FileId,
    params: u32,
    num_vars: u32,
    frame_slots: u32,
    blocks: Vec<PartialBlock>,
    current: BlockId,
    line: u32,
    is_library: bool,
}

impl<'p> FunctionBuilder<'p> {
    fn new(program: &'p mut ProgramBuilder, id: FuncId, file: FileId) -> Self {
        FunctionBuilder {
            program,
            id,
            file,
            params: 0,
            num_vars: 0,
            frame_slots: 0,
            blocks: vec![PartialBlock::default()],
            current: BlockId::new(0),
            line: 1,
            is_library: false,
        }
    }

    /// The id of the function under construction.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Marks the function as a library function (eligible for toggling
    /// wrappers, excluded from application-level analyses).
    pub fn set_library(&mut self) -> &mut Self {
        self.is_library = true;
        self
    }

    /// Declares `n` parameters and returns their variables. Must be called
    /// before any other variable is created.
    ///
    /// # Panics
    ///
    /// Panics if variables already exist.
    pub fn params(&mut self, n: u32) -> Vec<VarId> {
        assert_eq!(self.num_vars, 0, "params must be declared first");
        self.params = n;
        self.num_vars = n;
        (0..n).map(VarId::new).collect()
    }

    /// Creates a fresh local variable.
    pub fn var(&mut self) -> VarId {
        let v = VarId::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Sets the source line for subsequently emitted statements.
    pub fn at(&mut self, line: u32) -> &mut Self {
        self.line = line;
        self
    }

    /// Advances the source line by one and returns it (convenient for
    /// "every statement on its own line" program bodies).
    pub fn next_line(&mut self) -> u32 {
        self.line += 1;
        self.line
    }

    fn loc(&self) -> SourceLoc {
        SourceLoc::new(self.file, self.line)
    }

    /// Creates a new (empty, unterminated) block and returns its id; the
    /// cursor does not move.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(PartialBlock::default());
        BlockId::new(self.blocks.len() as u32 - 1)
    }

    /// Moves the cursor to the given block.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn set_block(&mut self, block: BlockId) {
        assert!(
            self.blocks[block.index()].term.is_none(),
            "block {block} is already terminated"
        );
        self.current = block;
    }

    /// Appends a raw statement to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn push(&mut self, instr: Instr) {
        let loc = self.loc();
        let blk = &mut self.blocks[self.current.index()];
        assert!(blk.term.is_none(), "current block is already terminated");
        blk.stmts.push(Stmt { instr, loc });
    }

    // ---- statement helpers -------------------------------------------------

    /// `dst = operand`.
    pub fn assign(&mut self, dst: VarId, value: impl Into<Operand>) {
        self.push(Instr::Assign {
            dst,
            rv: Rvalue::Use(value.into()),
        });
    }

    /// Emits `dst = lhs op rhs` into an existing variable.
    pub fn assign_bin(
        &mut self,
        dst: VarId,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) {
        self.push(Instr::Assign {
            dst,
            rv: Rvalue::Binary {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
        });
    }

    /// Creates a fresh variable holding `lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> VarId {
        let dst = self.var();
        self.assign_bin(dst, op, lhs, rhs);
        dst
    }

    /// Creates a fresh variable holding `op operand`.
    pub fn un(&mut self, op: UnOp, operand: impl Into<Operand>) -> VarId {
        let dst = self.var();
        self.push(Instr::Assign {
            dst,
            rv: Rvalue::Unary {
                op,
                operand: operand.into(),
            },
        });
        dst
    }

    /// Creates a fresh variable holding workload input `index`.
    pub fn read_input(&mut self, index: impl Into<Operand>) -> VarId {
        let dst = self.var();
        self.push(Instr::Assign {
            dst,
            rv: Rvalue::ReadInput {
                index: index.into(),
            },
        });
        dst
    }

    /// Creates a fresh variable loaded from `addr + disp`.
    pub fn load(&mut self, addr: impl Into<Operand>, disp: i64) -> VarId {
        let dst = self.var();
        self.push(Instr::Load {
            dst,
            addr: addr.into(),
            disp,
        });
        dst
    }

    /// Stores `value` to `addr + disp`.
    pub fn store(&mut self, addr: impl Into<Operand>, disp: i64, value: impl Into<Operand>) {
        self.push(Instr::Store {
            addr: addr.into(),
            disp,
            value: value.into(),
        });
    }

    /// Creates a fresh variable loaded from stack slot `slot`, growing the
    /// frame as needed.
    pub fn stack_load(&mut self, slot: u32) -> VarId {
        self.frame_slots = self.frame_slots.max(slot + 1);
        let dst = self.var();
        self.push(Instr::StackLoad { dst, slot });
        dst
    }

    /// Stores `value` to stack slot `slot`, growing the frame as needed.
    pub fn stack_store(&mut self, slot: u32, value: impl Into<Operand>) {
        self.frame_slots = self.frame_slots.max(slot + 1);
        self.push(Instr::StackStore {
            slot,
            value: value.into(),
        });
    }

    /// Allocates `words` heap words; returns the variable holding the base
    /// address.
    pub fn alloc(&mut self, words: impl Into<Operand>) -> VarId {
        let dst = self.var();
        self.push(Instr::Alloc {
            dst,
            words: words.into(),
        });
        dst
    }

    /// Frees the allocation at `addr`.
    pub fn free(&mut self, addr: impl Into<Operand>) {
        self.push(Instr::Free { addr: addr.into() });
    }

    /// Calls `callee` discarding any return value.
    pub fn call_void(&mut self, callee: FuncId, args: &[Operand]) {
        self.push(Instr::Call {
            dst: None,
            callee: Callee::Direct(callee),
            args: args.to_vec(),
        });
    }

    /// Calls `callee`; returns the variable holding the return value.
    pub fn call(&mut self, callee: FuncId, args: &[Operand]) -> VarId {
        let dst = self.var();
        self.push(Instr::Call {
            dst: Some(dst),
            callee: Callee::Direct(callee),
            args: args.to_vec(),
        });
        dst
    }

    /// Calls indirectly through a table; returns the return-value variable.
    pub fn call_indirect(
        &mut self,
        targets: Vec<FuncId>,
        selector: impl Into<Operand>,
        args: &[Operand],
    ) -> VarId {
        let dst = self.var();
        self.push(Instr::Call {
            dst: Some(dst),
            callee: Callee::Indirect {
                targets,
                selector: selector.into(),
            },
            args: args.to_vec(),
        });
        dst
    }

    /// Spawns a thread; returns the variable holding the thread id.
    pub fn spawn(&mut self, func: FuncId, args: &[Operand]) -> VarId {
        let dst = self.var();
        self.push(Instr::Spawn {
            dst,
            func,
            args: args.to_vec(),
        });
        dst
    }

    /// Joins the thread named by `thread`.
    pub fn join(&mut self, thread: impl Into<Operand>) {
        self.push(Instr::Join {
            thread: thread.into(),
        });
    }

    /// Acquires the mutex at `addr`.
    pub fn lock(&mut self, addr: impl Into<Operand>) {
        self.push(Instr::Lock { addr: addr.into() });
    }

    /// Releases the mutex at `addr`.
    pub fn unlock(&mut self, addr: impl Into<Operand>) {
        self.push(Instr::Unlock { addr: addr.into() });
    }

    /// Emits `value` to the program output.
    pub fn output(&mut self, value: impl Into<Operand>) {
        self.push(Instr::Output {
            value: value.into(),
        });
    }

    /// Emits a failure-logging call and returns its site id.
    pub fn log_error(&mut self, message: &str) -> LogSiteId {
        self.log(LogKind::Error, message)
    }

    /// Emits a logging call of the given kind and returns its site id.
    pub fn log(&mut self, kind: LogKind, message: &str) -> LogSiteId {
        let loc = self.loc();
        let site = self.program.alloc_log_site(self.id, loc, kind, message);
        self.push(Instr::Log {
            site,
            kind,
            message: message.to_string(),
        });
        site
    }

    /// Emits an assertion on `cond`.
    pub fn assert(&mut self, cond: impl Into<Operand>, message: &str) {
        self.push(Instr::Assert {
            cond: cond.into(),
            message: message.to_string(),
        });
    }

    /// Emits a syscall retiring `kernel_branches` ring-0 branches.
    pub fn syscall(&mut self, kernel_branches: u8) {
        self.push(Instr::Syscall { kernel_branches });
    }

    /// Terminates the whole program with `code`.
    pub fn exit(&mut self, code: impl Into<Operand>) {
        self.push(Instr::Exit { code: code.into() });
    }

    /// Emits a scheduling hint.
    pub fn yield_now(&mut self) {
        self.push(Instr::Yield);
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.push(Instr::Nop);
    }

    // ---- terminators -------------------------------------------------------

    fn terminate(&mut self, term: Terminator) {
        let loc = self.loc();
        let blk = &mut self.blocks[self.current.index()];
        assert!(blk.term.is_none(), "current block is already terminated");
        blk.term = Some((term, loc));
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: impl Into<Operand>, then_blk: BlockId, else_blk: BlockId) {
        self.terminate(Terminator::Br {
            cond: cond.into(),
            then_blk,
            else_blk,
        });
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Terminator::Jmp(target));
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Convenience: creates a new block, jumps to it from the current one,
    /// and moves the cursor there. Handy for sequential program text.
    pub fn fallthrough(&mut self) -> BlockId {
        let next = self.new_block();
        self.jmp(next);
        self.set_block(next);
        next
    }

    /// Finishes the function and installs it into the program builder.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    pub fn finish(self) {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, blk) in self.blocks.into_iter().enumerate() {
            let (term, term_loc) = blk.term.unwrap_or_else(|| {
                panic!(
                    "function `{}`: block bb{} lacks a terminator",
                    self.program.func_names[self.id.index()],
                    i
                )
            });
            blocks.push(BasicBlock {
                stmts: blk.stmts,
                term,
                term_loc,
                branch: None,
            });
        }
        self.program.functions[self.id.index()] = Some(Function {
            name: self.program.func_names[self.id.index()].clone(),
            file: self.file,
            params: self.params,
            num_vars: self.num_vars,
            frame_slots: self.frame_slots,
            blocks,
            is_library: self.is_library,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;

    #[test]
    fn builds_a_two_function_program() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let helper = pb.declare_function("helper");
        {
            let mut f = pb.build_function(helper, "lib.c");
            let ps = f.params(1);
            let doubled = f.bin(BinOp::Mul, ps[0], 2);
            f.ret(Some(doubled.into()));
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "main.c");
            let x = f.read_input(0);
            let y = f.call(helper, &[x.into()]);
            f.output(y);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.function(helper).params, 1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn globals_are_disjoint_and_word_sized() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.global("a", 4);
        let b = pb.global("b", 2);
        // Each global starts on its own 64-byte line.
        assert_eq!(a % 64, 0);
        assert_eq!(b - a, 64);
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn log_sites_are_registered() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.at(10);
        let s1 = f.log_error("boom");
        f.at(20);
        let s2 = f.log(LogKind::Warning, "careful");
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        assert_eq!(p.log_sites.len(), 2);
        assert_eq!(p.log_site_info(s1).loc.line, 10);
        assert_eq!(p.log_site_info(s2).kind, LogKind::Warning);
        assert_eq!(p.error_log_sites().count(), 1);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.nop();
        f.finish();
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_function_panics() {
        let mut pb = ProgramBuilder::new("p");
        pb.declare_function("main");
        pb.declare_function("main");
    }

    #[test]
    fn fallthrough_chains_blocks() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.nop();
        f.fallthrough();
        f.nop();
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        assert_eq!(p.function(main).blocks.len(), 2);
    }

    #[test]
    fn stack_accesses_grow_frame() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.stack_store(5, 3);
        let _ = f.stack_load(5);
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        assert_eq!(p.function(main).frame_slots, 6);
        let has_stack_load = p.function(main).blocks[0]
            .stmts
            .iter()
            .any(|s| matches!(s.instr, Instr::StackLoad { .. }));
        assert!(has_stack_load);
    }
}
