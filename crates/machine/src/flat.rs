//! Pre-lowered flat instruction stream for the hot interpreter path.
//!
//! [`Machine::new`](crate::interp::Machine::new) lowers the block-structured
//! IR once into one contiguous [`Op`] vector per function, so the per-step
//! dispatch never walks `Program → Function → BasicBlock → Stmt` again:
//!
//! * every op carries its operands pre-decoded ([`Val`]), with const-const
//!   binary/unary rvalues folded at lowering time (a constant division by
//!   zero becomes the dedicated [`Op::ConstDivByZero`] superinstruction so
//!   the fault survives folding);
//! * control flow is pre-resolved: `Br`/`Jmp` ops carry the target block id,
//!   the target's flat instruction index and the target's machine address,
//!   and calls carry the callee's entry address, so taking an edge is a pair
//!   of stores instead of two map lookups;
//! * the parallel `pc`/`loc` side tables assign every op (statements *and*
//!   terminators) its machine address and source location, preserving the
//!   Fig. 2 layout contract byte-for-byte — a fall-through `Jmp` still owns
//!   the address [`Layout::term_addr`] reports even though it retires no
//!   branch.
//!
//! The flat stream is an internal execution detail: decoding recorded
//! addresses back to source stays the job of [`Layout`].

use crate::events::HwCtlOp;
use crate::ids::{LogSiteId, SampleId};
use crate::interp::eval_bin;
use crate::ir::{
    BinOp, Callee, Instr, LogKind, Operand, ProfileRole, Program, Rvalue, SourceLoc, Terminator,
    UnOp,
};
use crate::layout::Layout;

/// A pre-decoded operand: immediate constant or frame-relative register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Val {
    /// An immediate constant.
    C(i64),
    /// A local variable, as a raw frame-relative register index.
    V(u32),
}

impl Val {
    fn of(op: Operand) -> Val {
        match op {
            Operand::Const(c) => Val::C(c),
            Operand::Var(v) => Val::V(v.raw()),
        }
    }
}

/// One pre-lowered instruction of the flat stream.
///
/// Statements and terminators share one vector; a block's ops are laid out
/// contiguously (statements in order, then the terminator), so `ip + 1` is
/// always "the next thing this block executes".
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// `dst = const` (also the folded form of const-const rvalues).
    AssignConst { dst: u32, value: i64 },
    /// `dst = src`.
    AssignVar { dst: u32, src: u32 },
    /// `dst = lhs <op> rhs`, both operands registers.
    BinVV {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// `dst = lhs <op> const`.
    BinVC {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: i64,
    },
    /// `dst = const <op> rhs`.
    BinCV {
        op: BinOp,
        dst: u32,
        lhs: i64,
        rhs: u32,
    },
    /// `dst = <op> operand` (non-foldable: register operand).
    Unary { op: UnOp, dst: u32, operand: u32 },
    /// `dst = inputs[index]`.
    ReadInput { dst: u32, index: Val },
    /// A constant division/remainder by zero, pre-folded to its fault.
    ConstDivByZero,
    /// Memory load.
    Load { dst: u32, addr: Val, disp: i64 },
    /// Memory store.
    Store { addr: Val, disp: i64, value: Val },
    /// Stack-slot load.
    StackLoad { dst: u32, slot: u32 },
    /// Stack-slot store.
    StackStore { slot: u32, value: Val },
    /// Heap allocation.
    Alloc { dst: u32, words: Val },
    /// Heap free.
    Free { addr: Val },
    /// Direct call with pre-resolved callee entry address.
    CallDirect {
        dst: Option<u32>,
        target: u32,
        entry: u64,
        args: Box<[Val]>,
    },
    /// Indirect call; `targets` pairs each candidate with its entry address.
    CallIndirect {
        dst: Option<u32>,
        targets: Box<[(u32, u64)]>,
        selector: Val,
        args: Box<[Val]>,
    },
    /// Thread spawn.
    Spawn {
        dst: u32,
        func: u32,
        args: Box<[Val]>,
    },
    /// Thread join.
    Join { thread: Val },
    /// Mutex acquire.
    Lock { addr: Val },
    /// Mutex release.
    Unlock { addr: Val },
    /// Output append.
    Output { value: Val },
    /// Logging call (static message dropped: reports only carry site+kind).
    Log { site: LogSiteId, kind: LogKind },
    /// Hardware control operation.
    HwCtl {
        op: HwCtlOp,
        site: Option<LogSiteId>,
        role: ProfileRole,
    },
    /// Sampled instrumentation probe.
    Sample { id: SampleId, value: Val },
    /// Assertion.
    Assert { cond: Val, message: Box<str> },
    /// Syscall with `kernel_branches` ring-0 branches.
    Syscall { kernel_branches: u8 },
    /// Program exit.
    Exit { code: Val },
    /// No-op (`Nop` and the scheduling-hint `Yield`).
    Nop,
    /// Conditional branch terminator with both edges pre-resolved.
    Br {
        cond: Val,
        /// Target block / flat ip / block address of the true edge.
        then_blk: u32,
        then_ip: u32,
        then_to: u64,
        /// Target block / flat ip / block address of the false edge.
        else_blk: u32,
        else_ip: u32,
        else_to: u64,
    },
    /// Unconditional jump terminator; `record` is false for the
    /// fall-through lowering (adjacent target, no retired branch).
    Jmp {
        target_blk: u32,
        target_ip: u32,
        to: u64,
        record: bool,
    },
    /// Return terminator.
    Ret { value: Option<Val> },
}

/// One function's flat code plus the per-op address/location side tables.
#[derive(Debug, Clone)]
pub(crate) struct FlatFunc {
    /// The flat instruction stream (statements and terminators).
    pub code: Vec<Op>,
    /// Machine address of each op (`pc[i]` is `code[i]`'s address).
    pub pc: Vec<u64>,
    /// Source location of each op.
    pub loc: Vec<SourceLoc>,
    /// Number of parameters.
    pub params: u32,
    /// Total number of local variables (registers) of a frame.
    pub num_vars: u32,
    /// Number of stack slots of a frame.
    pub frame_slots: u32,
}

/// The whole program, pre-lowered.
#[derive(Debug, Clone)]
pub(crate) struct FlatProgram {
    /// Per-function flat code, indexed by raw function id.
    pub funcs: Vec<FlatFunc>,
}

impl FlatProgram {
    /// Lowers a validated program over its layout.
    pub fn lower(program: &Program, layout: &Layout) -> FlatProgram {
        let mut funcs = Vec::with_capacity(program.functions.len());
        for (fi, func) in program.functions.iter().enumerate() {
            let fid = crate::ids::FuncId::new(fi as u32);
            // Pass 1: flat start index of every block (stmts + 1 term op).
            let mut starts = Vec::with_capacity(func.blocks.len());
            let mut cursor = 0u32;
            for block in &func.blocks {
                starts.push(cursor);
                cursor += block.stmts.len() as u32 + 1;
            }
            // Pass 2: emit ops with all targets resolved.
            let mut code = Vec::with_capacity(cursor as usize);
            let mut pc = Vec::with_capacity(cursor as usize);
            let mut loc = Vec::with_capacity(cursor as usize);
            for (bi, block) in func.blocks.iter().enumerate() {
                let bid = crate::ids::BlockId::new(bi as u32);
                for (si, stmt) in block.stmts.iter().enumerate() {
                    code.push(lower_instr(&stmt.instr, program, layout));
                    pc.push(layout.stmt_addr(fid, bid, si as u32));
                    loc.push(stmt.loc);
                }
                let resolve = |b: crate::ids::BlockId| {
                    (b.raw(), starts[b.index()], layout.block_addr(fid, b))
                };
                code.push(match block.term {
                    Terminator::Br {
                        cond,
                        then_blk,
                        else_blk,
                    } => {
                        let (tb, ti, tt) = resolve(then_blk);
                        let (eb, ei, et) = resolve(else_blk);
                        Op::Br {
                            cond: Val::of(cond),
                            then_blk: tb,
                            then_ip: ti,
                            then_to: tt,
                            else_blk: eb,
                            else_ip: ei,
                            else_to: et,
                        }
                    }
                    Terminator::Jmp(target) => {
                        let (tb, ti, to) = resolve(target);
                        Op::Jmp {
                            target_blk: tb,
                            target_ip: ti,
                            to,
                            record: !layout.jmp_is_fallthrough(fid, bid),
                        }
                    }
                    Terminator::Ret(value) => Op::Ret {
                        value: value.map(Val::of),
                    },
                });
                pc.push(layout.term_addr(fid, bid));
                loc.push(block.term_loc);
            }
            funcs.push(FlatFunc {
                code,
                pc,
                loc,
                params: func.params,
                num_vars: func.num_vars,
                frame_slots: func.frame_slots,
            });
        }
        FlatProgram { funcs }
    }
}

fn lower_instr(instr: &Instr, _program: &Program, layout: &Layout) -> Op {
    match instr {
        Instr::Assign { dst, rv } => {
            let d = dst.raw();
            match *rv {
                Rvalue::Use(Operand::Const(c)) => Op::AssignConst { dst: d, value: c },
                Rvalue::Use(Operand::Var(v)) => Op::AssignVar {
                    dst: d,
                    src: v.raw(),
                },
                Rvalue::Binary { op, lhs, rhs } => match (lhs, rhs) {
                    (Operand::Var(l), Operand::Var(r)) => Op::BinVV {
                        op,
                        dst: d,
                        lhs: l.raw(),
                        rhs: r.raw(),
                    },
                    (Operand::Var(l), Operand::Const(r)) => Op::BinVC {
                        op,
                        dst: d,
                        lhs: l.raw(),
                        rhs: r,
                    },
                    (Operand::Const(l), Operand::Var(r)) => Op::BinCV {
                        op,
                        dst: d,
                        lhs: l,
                        rhs: r.raw(),
                    },
                    (Operand::Const(l), Operand::Const(r)) => match eval_bin(op, l, r) {
                        Some(v) => Op::AssignConst { dst: d, value: v },
                        None => Op::ConstDivByZero,
                    },
                },
                Rvalue::Unary { op, operand } => match operand {
                    Operand::Const(c) => Op::AssignConst {
                        dst: d,
                        value: match op {
                            UnOp::Neg => c.wrapping_neg(),
                            UnOp::Not => i64::from(c == 0),
                            UnOp::BitNot => !c,
                        },
                    },
                    Operand::Var(v) => Op::Unary {
                        op,
                        dst: d,
                        operand: v.raw(),
                    },
                },
                Rvalue::ReadInput { index } => Op::ReadInput {
                    dst: d,
                    index: Val::of(index),
                },
            }
        }
        Instr::Load { dst, addr, disp } => Op::Load {
            dst: dst.raw(),
            addr: Val::of(*addr),
            disp: *disp,
        },
        Instr::Store { addr, disp, value } => Op::Store {
            addr: Val::of(*addr),
            disp: *disp,
            value: Val::of(*value),
        },
        Instr::StackLoad { dst, slot } => Op::StackLoad {
            dst: dst.raw(),
            slot: *slot,
        },
        Instr::StackStore { slot, value } => Op::StackStore {
            slot: *slot,
            value: Val::of(*value),
        },
        Instr::Alloc { dst, words } => Op::Alloc {
            dst: dst.raw(),
            words: Val::of(*words),
        },
        Instr::Free { addr } => Op::Free {
            addr: Val::of(*addr),
        },
        Instr::Call { dst, callee, args } => {
            let d = dst.map(|v| v.raw());
            let a: Box<[Val]> = args.iter().map(|o| Val::of(*o)).collect();
            match callee {
                Callee::Direct(f) => Op::CallDirect {
                    dst: d,
                    target: f.raw(),
                    entry: layout.func_entry(*f),
                    args: a,
                },
                Callee::Indirect { targets, selector } => Op::CallIndirect {
                    dst: d,
                    targets: targets
                        .iter()
                        .map(|f| (f.raw(), layout.func_entry(*f)))
                        .collect(),
                    selector: Val::of(*selector),
                    args: a,
                },
            }
        }
        Instr::Spawn { dst, func, args } => Op::Spawn {
            dst: dst.raw(),
            func: func.raw(),
            args: args.iter().map(|o| Val::of(*o)).collect(),
        },
        Instr::Join { thread } => Op::Join {
            thread: Val::of(*thread),
        },
        Instr::Lock { addr } => Op::Lock {
            addr: Val::of(*addr),
        },
        Instr::Unlock { addr } => Op::Unlock {
            addr: Val::of(*addr),
        },
        Instr::Output { value } => Op::Output {
            value: Val::of(*value),
        },
        Instr::Log { site, kind, .. } => Op::Log {
            site: *site,
            kind: *kind,
        },
        Instr::HwCtl { op, site, role } => Op::HwCtl {
            op: *op,
            site: *site,
            role: *role,
        },
        Instr::Sample { id, value } => Op::Sample {
            id: *id,
            value: Val::of(*value),
        },
        Instr::Assert { cond, message } => Op::Assert {
            cond: Val::of(*cond),
            message: message.clone().into_boxed_str(),
        },
        Instr::Syscall { kernel_branches } => Op::Syscall {
            kernel_branches: *kernel_branches,
        },
        Instr::Exit { code } => Op::Exit {
            code: Val::of(*code),
        },
        Instr::Yield | Instr::Nop => Op::Nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::{BlockId, FuncId};
    use crate::ir::BinOp;

    #[test]
    fn lowering_assigns_layout_addresses_to_every_op() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let x = f.read_input(0);
        let _ = f.bin(BinOp::Add, x, 1);
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let layout = Layout::build(&p);
        let flat = FlatProgram::lower(&p, &layout);
        let ff = &flat.funcs[main.index()];
        assert_eq!(ff.code.len(), ff.pc.len());
        assert_eq!(ff.code.len(), ff.loc.len());
        let b0 = BlockId::new(0);
        assert_eq!(ff.pc[0], layout.stmt_addr(main, b0, 0));
        assert_eq!(ff.pc[1], layout.stmt_addr(main, b0, 1));
        // The terminator op owns the layout's term address.
        assert_eq!(*ff.pc.last().unwrap(), layout.term_addr(main, b0));
        assert!(matches!(ff.code.last(), Some(Op::Ret { value: None })));
    }

    #[test]
    fn const_binaries_fold_and_const_div_by_zero_survives_as_fault_op() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let _folded = f.bin(BinOp::Mul, 6, 7);
        let _bad = f.bin(BinOp::Div, 1, 0);
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let layout = Layout::build(&p);
        let flat = FlatProgram::lower(&p, &layout);
        let code = &flat.funcs[0].code;
        assert!(matches!(code[0], Op::AssignConst { value: 42, .. }));
        assert!(matches!(code[1], Op::ConstDivByZero));
    }

    #[test]
    fn branch_targets_resolve_to_flat_indices_and_addresses() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let t = f.new_block();
        let e = f.new_block();
        let x = f.read_input(0);
        f.br(x, t, e);
        f.set_block(t);
        f.ret(None);
        f.set_block(e);
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let layout = Layout::build(&p);
        let flat = FlatProgram::lower(&p, &layout);
        let ff = &flat.funcs[0];
        let Op::Br {
            then_blk,
            then_ip,
            then_to,
            else_blk,
            else_ip,
            else_to,
            ..
        } = ff.code[1]
        else {
            panic!("expected Br, got {:?}", ff.code[1]);
        };
        let fid = FuncId::new(0);
        assert_eq!(then_blk, 1);
        assert_eq!(else_blk, 2);
        // Block 0 holds one stmt + the Br = 2 ops; block 1 holds one Ret.
        assert_eq!(then_ip, 2);
        assert_eq!(else_ip, 3);
        assert_eq!(then_to, layout.block_addr(fid, BlockId::new(1)));
        assert_eq!(else_to, layout.block_addr(fid, BlockId::new(2)));
        assert!(matches!(ff.code[then_ip as usize], Op::Ret { .. }));
    }

    #[test]
    fn adjacent_jmp_lowered_as_non_recording_fallthrough() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let next = f.new_block();
        f.jmp(next);
        f.set_block(next);
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let layout = Layout::build(&p);
        let flat = FlatProgram::lower(&p, &layout);
        assert!(matches!(
            flat.funcs[0].code[0],
            Op::Jmp { record: false, .. }
        ));
    }
}
