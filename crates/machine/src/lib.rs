//! # stm-machine — the execution substrate
//!
//! A deterministic, multithreaded, compiler-style IR machine that stands in
//! for the real x86 binaries the ASPLOS'14 paper *"Leveraging the
//! Short-Term Memory of Hardware to Diagnose Production-Run Software
//! Failures"* evaluates on. The machine produces exactly the event streams
//! the paper's hardware facilities consume:
//!
//! * **branch retirement events** for every taken conditional jump,
//!   fall-through unconditional jump (the Fig. 2 lowering), call, return
//!   and kernel branch — feeding the LBR model of `stm-hardware`;
//! * **L1 data-cache access events** for every load/store, including stack
//!   traffic — feeding the MESI cache + LCR model;
//! * **control operations** mirroring the paper's `ioctl` kernel-module
//!   interface (Fig. 7).
//!
//! ## Layering
//!
//! This crate defines the *vocabulary* ([`events`]) and the *machine*; the
//! `stm-hardware` crate implements the monitoring hardware behind the
//! [`events::Hardware`] trait; `stm-core` builds the diagnosis system on
//! both.
//!
//! ## Example
//!
//! ```
//! use stm_machine::builder::ProgramBuilder;
//! use stm_machine::events::NullHardware;
//! use stm_machine::interp::{Machine, RunConfig};
//! use stm_machine::ir::BinOp;
//!
//! let mut pb = ProgramBuilder::new("square");
//! let main = pb.declare_function("main");
//! let mut f = pb.build_function(main, "square.c");
//! let x = f.read_input(0);
//! let sq = f.bin(BinOp::Mul, x, x);
//! f.output(sq);
//! f.ret(None);
//! f.finish();
//!
//! let machine = Machine::new(pb.finish(main));
//! let report = machine.run(&[12], &RunConfig::default(), &mut NullHardware);
//! assert_eq!(report.outputs, vec![144]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod events;
mod flat;
pub mod ids;
pub mod interp;
pub mod ir;
pub mod layout;
pub mod memory;
pub mod report;
pub mod ring;
pub mod rng;
pub mod sched;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use events::{
    AccessEvent, AccessKind, BranchEvent, BranchKind, BranchRecord, CoherenceRecord,
    CoherenceState, CtlResponse, Hardware, HwCtlOp, HwEvent, LcrConfig, NullHardware, Ring,
};
pub use ids::{
    BlockId, BranchId, CoreId, FileId, FuncId, GlobalId, LogSiteId, SampleId, ThreadId, VarId,
};
pub use interp::{Machine, RunConfig, RunScratch};
pub use ir::{
    BinOp, Instr, LogKind, Operand, ProfileRole, Program, Rvalue, SourceLoc, Terminator, UnOp,
};
pub use layout::{Decoded, Layout, StmtRef};
pub use report::{
    Failure, FailureKind, LogEvent, ProfileData, ProfileEvent, RunOutcome, RunReport, SampleEvent,
};
pub use sched::SchedPolicy;
