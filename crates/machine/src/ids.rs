//! Strongly-typed identifiers used across the IR, the interpreter and the
//! hardware event vocabulary.
//!
//! Every identifier is a newtype over a small integer ([C-NEWTYPE]): a
//! `FuncId` can never be confused with a `BlockId`, and all of them are
//! `Copy`, ordered and hashable so they can key maps and sort tables.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its raw index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index backing this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` backing this identifier.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`Program`](crate::ir::Program).
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a basic block within a function.
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a local variable (virtual register) within a function.
    VarId,
    "v"
);
id_type!(
    /// Identifies a source-level conditional branch, program wide.
    ///
    /// Branch identifiers are assigned by
    /// [`Program::finalize`](crate::ir::Program) in a deterministic order
    /// (function id, then block id), so they are stable across runs.
    BranchId,
    "br"
);
id_type!(
    /// Identifies a logging site (a call to a failure-logging function such
    /// as `error()` or `ap_log_error()`), program wide.
    LogSiteId,
    "log"
);
id_type!(
    /// Identifies a global variable.
    GlobalId,
    "g"
);
id_type!(
    /// Identifies a source file referenced by [`SourceLoc`](crate::ir::SourceLoc).
    FileId,
    "file"
);
id_type!(
    /// Identifies an instrumentation sampling probe (used by the CBI/CCI/PBI
    /// baselines).
    SampleId,
    "probe"
);

/// Identifies a simulated thread. Thread 0 is always the main thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main thread, which executes the program entry function.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Returns the raw index backing this identifier.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a simulated core. Threads are mapped onto cores round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Returns the raw index backing this identifier.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_index() {
        let f = FuncId::new(7);
        assert_eq!(f.index(), 7);
        assert_eq!(f.raw(), 7);
        assert_eq!(FuncId::from(7u32), f);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(FuncId::new(3).to_string(), "fn3");
        assert_eq!(BlockId::new(0).to_string(), "bb0");
        assert_eq!(BranchId::new(12).to_string(), "br12");
        assert_eq!(ThreadId(2).to_string(), "t2");
        assert_eq!(CoreId(1).to_string(), "core1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert!(ThreadId(0) < ThreadId(1));
    }

    #[test]
    fn main_thread_is_zero() {
        assert_eq!(ThreadId::MAIN.index(), 0);
    }
}
