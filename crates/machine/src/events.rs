//! The hardware event vocabulary shared between the machine and the
//! simulated performance-monitoring hardware.
//!
//! The interpreter (this crate) *produces* events — retired branches, L1
//! data-cache accesses, control operations on the monitoring unit — and the
//! `stm-hardware` crate *consumes* them through the [`Hardware`] trait to
//! maintain LBR rings, MESI caches, LCR rings and performance counters.
//!
//! The constants mirror the paper's Tables 1 and 2 (the Intel Nehalem
//! `LBR_SELECT` filter masks and the L1-D cache-coherence event masks).

use crate::ids::{CoreId, ThreadId};
use std::fmt;

/// Privilege level at which a branch retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ring {
    /// Kernel mode (ring 0): branches executed inside the simulated kernel,
    /// e.g. by `ioctl` calls into the LBR driver or by syscalls.
    Kernel,
    /// User mode: ordinary application and library branches.
    User,
}

/// The machine-level taxonomy of branch instructions, following the classes
/// that `LBR_SELECT` can filter (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// A taken conditional jump (`jcc`). Under the Fig. 2 lowering this is
    /// the *false* edge of a source conditional branch.
    CondJump,
    /// A near unconditional relative jump (`jmp rel`). The Fig. 2 lowering
    /// inserts one of these on every fall-through edge, so the *true* edge
    /// of a source branch is also recorded.
    UncondRelative,
    /// A near relative call.
    NearRelCall,
    /// A near indirect call (through a register or table).
    NearIndCall,
    /// A near return.
    NearReturn,
    /// A near unconditional indirect jump.
    UncondIndirect,
    /// A far branch (privilege transitions and the like).
    Far,
}

/// Filter masks for the LBR selection register, mirroring the paper's
/// Table 1: a **set** bit *filters out* (excludes) the corresponding branch
/// class from recording.
pub mod lbr_select {
    /// Filter branches occurring in ring 0.
    pub const CPL_EQ_0: u32 = 0x1;
    /// Filter branches occurring in other (user) privilege levels.
    pub const CPL_NEQ_0: u32 = 0x2;
    /// Filter conditional branches.
    pub const JCC: u32 = 0x4;
    /// Filter near relative calls.
    pub const NEAR_REL_CALL: u32 = 0x8;
    /// Filter near indirect calls.
    pub const NEAR_IND_CALL: u32 = 0x10;
    /// Filter near returns.
    pub const NEAR_RET: u32 = 0x20;
    /// Filter near unconditional indirect jumps.
    pub const NEAR_IND_JMP: u32 = 0x40;
    /// Filter near unconditional relative branches.
    pub const NEAR_REL_JMP: u32 = 0x80;
    /// Filter far branches.
    pub const FAR_BRANCH: u32 = 0x100;

    /// The mask used by the diagnosis system (the starred rows of Table 1):
    /// keep user-level conditional branches and near relative unconditional
    /// jumps; filter everything else.
    pub const DIAGNOSIS: u32 =
        CPL_EQ_0 | NEAR_REL_CALL | NEAR_IND_CALL | NEAR_RET | NEAR_IND_JMP | FAR_BRANCH;
}

/// A branch retirement event, as produced by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchEvent {
    /// Linear address of the branch instruction.
    pub from: u64,
    /// Linear address of the branch target.
    pub to: u64,
    /// Machine-level branch class.
    pub kind: BranchKind,
    /// Privilege level at which the branch retired.
    pub ring: Ring,
}

/// One entry of an LBR snapshot: the source and target addresses of a
/// recorded branch (`BRANCH_n_FROM_IP` / `BRANCH_n_TO_IP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Linear address of the recorded branch instruction.
    pub from: u64,
    /// Linear address of the branch target.
    pub to: u64,
    /// Machine-level branch class (carried for decoding convenience; real
    /// hardware encodes enough to recover this).
    pub kind: BranchKind,
}

impl From<BranchEvent> for BranchRecord {
    fn from(ev: BranchEvent) -> Self {
        BranchRecord {
            from: ev.from,
            to: ev.to,
            kind: ev.kind,
        }
    }
}

/// Whether a data-cache access was a load or a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A load (event code 0x40 in Table 2).
    Load,
    /// A store (event code 0x41 in Table 2).
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// MESI coherence state of a cache line *as observed by an access, right
/// before the access updates the cache* (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoherenceState {
    /// The line was absent or invalidated (unit mask 0x01).
    Invalid,
    /// The line was present and shared with other cores (unit mask 0x02).
    Shared,
    /// The line was present, clean and exclusive to this core (0x04).
    Exclusive,
    /// The line was present and locally modified (unit mask 0x08).
    Modified,
}

impl CoherenceState {
    /// The Table 2 unit mask bit for this state.
    pub const fn unit_mask(self) -> u8 {
        match self {
            CoherenceState::Invalid => 0x01,
            CoherenceState::Shared => 0x02,
            CoherenceState::Exclusive => 0x04,
            CoherenceState::Modified => 0x08,
        }
    }

    /// Short single-letter MESI name.
    pub const fn letter(self) -> char {
        match self {
            CoherenceState::Invalid => 'I',
            CoherenceState::Shared => 'S',
            CoherenceState::Exclusive => 'E',
            CoherenceState::Modified => 'M',
        }
    }
}

impl fmt::Display for CoherenceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// One entry of an LCR snapshot: the program counter of a retired L1-D
/// access and the coherence state it observed.
///
/// Memory addresses are deliberately **not** recorded (paper §4.2.1,
/// footnote 2) — this is part of the privacy story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoherenceRecord {
    /// Program counter of the access instruction.
    pub pc: u64,
    /// The coherence state the access observed.
    pub state: CoherenceState,
    /// Whether the access was a load or a store.
    pub access: AccessKind,
}

/// A retired L1 data-cache access, as produced by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessEvent {
    /// Program counter of the access instruction.
    pub pc: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Privilege level of the access.
    pub ring: Ring,
}

/// Configuration for the LCR facility: which (access kind, observed state)
/// pairs to record, mirroring the event-code/unit-mask scheme of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LcrConfig {
    /// Unit-mask of coherence states recorded for loads (bitwise OR of
    /// [`CoherenceState::unit_mask`] values).
    pub load_mask: u8,
    /// Unit-mask of coherence states recorded for stores.
    pub store_mask: u8,
    /// Exclude kernel-level accesses from recording.
    pub exclude_kernel: bool,
    /// Exclude user-level accesses from recording.
    pub exclude_user: bool,
}

impl LcrConfig {
    /// The space-saving configuration of §4.2.2 (called *Conf1* in
    /// Table 7): invalid loads, invalid stores and **shared** loads.
    pub const SPACE_SAVING: LcrConfig = LcrConfig {
        load_mask: 0x01 | 0x02,
        store_mask: 0x01,
        exclude_kernel: true,
        exclude_user: false,
    };

    /// The space-consuming configuration of §4.2.2 (called *Conf2* in
    /// Table 7): invalid loads, invalid stores and **exclusive** loads.
    pub const SPACE_CONSUMING: LcrConfig = LcrConfig {
        load_mask: 0x01 | 0x04,
        store_mask: 0x01,
        exclude_kernel: true,
        exclude_user: false,
    };

    /// Returns `true` if an access with the given properties should be
    /// recorded under this configuration.
    pub fn admits(&self, kind: AccessKind, state: CoherenceState, ring: Ring) -> bool {
        if self.exclude_kernel && ring == Ring::Kernel {
            return false;
        }
        if self.exclude_user && ring == Ring::User {
            return false;
        }
        let mask = match kind {
            AccessKind::Load => self.load_mask,
            AccessKind::Store => self.store_mask,
        };
        mask & state.unit_mask() != 0
    }
}

impl Default for LcrConfig {
    fn default() -> Self {
        LcrConfig::SPACE_CONSUMING
    }
}

/// Control operations on the monitoring hardware, mirroring the `ioctl`
/// interface of the paper's kernel module (Fig. 7) plus its LCR analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwCtlOp {
    /// `DRIVER_CLEAN_LBR`: reset all LBR entries.
    CleanLbr,
    /// `DRIVER_CONFIG_LBR`: program the `LBR_SELECT` filter mask.
    ConfigLbr(u32),
    /// `DRIVER_ENABLE_LBR`: start branch recording.
    EnableLbr,
    /// `DRIVER_DISABLE_LBR`: stop branch recording.
    DisableLbr,
    /// `DRIVER_PROFILE_LBR`: read the LBR stack (most recent first).
    ProfileLbr,
    /// Reset all LCR entries of the calling thread.
    CleanLcr,
    /// Program the LCR event selection.
    ConfigLcr(LcrConfig),
    /// Start coherence-event recording.
    EnableLcr,
    /// Stop coherence-event recording.
    DisableLcr,
    /// Read the calling thread's LCR ring (most recent first).
    ProfileLcr,
}

/// The response of the hardware to a control operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CtlResponse {
    /// The operation completed and produced no data.
    #[default]
    Done,
    /// An LBR snapshot, most recent branch first.
    Lbr(Vec<BranchRecord>),
    /// An LCR snapshot, most recent access first.
    Lcr(Vec<CoherenceRecord>),
    /// The operation should have produced data but the read failed — the
    /// driver sees nothing for this snapshot. Produced by fault-injecting
    /// hardware (`stm-hardware`'s perturbation layer); never by the real
    /// monitoring unit on the happy path.
    Lost,
}

/// One retirement event in a batched push, tagged with the core (and, for
/// accesses, the thread) it retired on. A single ordered `HwEvent` stream
/// is exactly the interleaved `on_branch`/`on_access` call sequence the
/// interpreter would otherwise have made, so consuming a batch in order is
/// observationally identical to the per-event path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwEvent {
    /// A retired branch (an `on_branch` call).
    Branch {
        /// Core the branch retired on.
        core: CoreId,
        /// The branch event.
        ev: BranchEvent,
    },
    /// A retired data access (an `on_access` call).
    Access {
        /// Core the access retired on.
        core: CoreId,
        /// Thread that performed the access.
        thread: ThreadId,
        /// The access event.
        ev: AccessEvent,
    },
}

/// The interface through which the interpreter drives the simulated
/// performance-monitoring hardware.
///
/// `stm-hardware` provides the full implementation (LBR rings, MESI caches,
/// LCR rings, counters); [`NullHardware`] is a no-op implementation for runs
/// that need no monitoring (e.g. baseline overhead measurements).
pub trait Hardware {
    /// Called for every retired branch.
    fn on_branch(&mut self, core: CoreId, ev: BranchEvent);

    /// Called for every retired data access.
    fn on_access(&mut self, core: CoreId, thread: ThreadId, ev: AccessEvent);

    /// Pushes a batch of retirement events, in retirement order.
    ///
    /// The interpreter buffers events and flushes them here at block/ctl
    /// boundaries instead of making one virtual call per event. The default
    /// implementation replays the batch through [`Hardware::on_branch`] /
    /// [`Hardware::on_access`] one event at a time — the reference
    /// semantics every override must preserve bit-for-bit. Implementations
    /// may override it to amortize per-event bookkeeping (telemetry,
    /// lookups), but the observable ring/cache/counter state after the call
    /// must equal the default's.
    fn on_batch(&mut self, events: &[HwEvent]) {
        for e in events {
            match *e {
                HwEvent::Branch { core, ev } => self.on_branch(core, ev),
                HwEvent::Access { core, thread, ev } => self.on_access(core, thread, ev),
            }
        }
    }

    /// Called when a thread executes a hardware control operation.
    fn ctl(&mut self, core: CoreId, thread: ThreadId, op: HwCtlOp) -> CtlResponse;
}

/// A [`Hardware`] implementation that ignores all events — the moral
/// equivalent of running with the performance-monitoring unit disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHardware;

impl Hardware for NullHardware {
    fn on_branch(&mut self, _core: CoreId, _ev: BranchEvent) {}

    fn on_access(&mut self, _core: CoreId, _thread: ThreadId, _ev: AccessEvent) {}

    fn ctl(&mut self, _core: CoreId, _thread: ThreadId, _op: HwCtlOp) -> CtlResponse {
        CtlResponse::Done
    }
}

impl<H: Hardware + ?Sized> Hardware for &mut H {
    fn on_branch(&mut self, core: CoreId, ev: BranchEvent) {
        (**self).on_branch(core, ev);
    }

    fn on_access(&mut self, core: CoreId, thread: ThreadId, ev: AccessEvent) {
        (**self).on_access(core, thread, ev);
    }

    fn on_batch(&mut self, events: &[HwEvent]) {
        (**self).on_batch(events);
    }

    fn ctl(&mut self, core: CoreId, thread: ThreadId, op: HwCtlOp) -> CtlResponse {
        (**self).ctl(core, thread, op)
    }
}

/// Returns `true` if a branch event passes (is **not** filtered by) the
/// given `LBR_SELECT` mask.
pub fn lbr_select_admits(mask: u32, ev: &BranchEvent) -> bool {
    use lbr_select as sel;
    let class_bit = match ev.kind {
        BranchKind::CondJump => sel::JCC,
        BranchKind::UncondRelative => sel::NEAR_REL_JMP,
        BranchKind::NearRelCall => sel::NEAR_REL_CALL,
        BranchKind::NearIndCall => sel::NEAR_IND_CALL,
        BranchKind::NearReturn => sel::NEAR_RET,
        BranchKind::UncondIndirect => sel::NEAR_IND_JMP,
        BranchKind::Far => sel::FAR_BRANCH,
    };
    if mask & class_bit != 0 {
        return false;
    }
    let ring_bit = match ev.ring {
        Ring::Kernel => sel::CPL_EQ_0,
        Ring::User => sel::CPL_NEQ_0,
    };
    mask & ring_bit == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: BranchKind, ring: Ring) -> BranchEvent {
        BranchEvent {
            from: 0x400000,
            to: 0x400010,
            kind,
            ring,
        }
    }

    #[test]
    fn diagnosis_mask_keeps_user_conditionals_and_rel_jumps() {
        let m = lbr_select::DIAGNOSIS;
        assert!(lbr_select_admits(m, &ev(BranchKind::CondJump, Ring::User)));
        assert!(lbr_select_admits(
            m,
            &ev(BranchKind::UncondRelative, Ring::User)
        ));
    }

    #[test]
    fn diagnosis_mask_filters_kernel_calls_returns_indirects_far() {
        let m = lbr_select::DIAGNOSIS;
        assert!(!lbr_select_admits(
            m,
            &ev(BranchKind::CondJump, Ring::Kernel)
        ));
        assert!(!lbr_select_admits(
            m,
            &ev(BranchKind::NearRelCall, Ring::User)
        ));
        assert!(!lbr_select_admits(
            m,
            &ev(BranchKind::NearIndCall, Ring::User)
        ));
        assert!(!lbr_select_admits(
            m,
            &ev(BranchKind::NearReturn, Ring::User)
        ));
        assert!(!lbr_select_admits(
            m,
            &ev(BranchKind::UncondIndirect, Ring::User)
        ));
        assert!(!lbr_select_admits(m, &ev(BranchKind::Far, Ring::User)));
    }

    #[test]
    fn zero_mask_admits_everything() {
        for kind in [
            BranchKind::CondJump,
            BranchKind::UncondRelative,
            BranchKind::NearRelCall,
            BranchKind::NearIndCall,
            BranchKind::NearReturn,
            BranchKind::UncondIndirect,
            BranchKind::Far,
        ] {
            assert!(lbr_select_admits(0, &ev(kind, Ring::User)));
            assert!(lbr_select_admits(0, &ev(kind, Ring::Kernel)));
        }
    }

    #[test]
    fn lcr_space_consuming_records_exclusive_loads_not_shared() {
        let c = LcrConfig::SPACE_CONSUMING;
        assert!(c.admits(AccessKind::Load, CoherenceState::Invalid, Ring::User));
        assert!(c.admits(AccessKind::Load, CoherenceState::Exclusive, Ring::User));
        assert!(!c.admits(AccessKind::Load, CoherenceState::Shared, Ring::User));
        assert!(c.admits(AccessKind::Store, CoherenceState::Invalid, Ring::User));
        assert!(!c.admits(AccessKind::Store, CoherenceState::Modified, Ring::User));
    }

    #[test]
    fn lcr_space_saving_swaps_exclusive_for_shared_loads() {
        let c = LcrConfig::SPACE_SAVING;
        assert!(c.admits(AccessKind::Load, CoherenceState::Shared, Ring::User));
        assert!(!c.admits(AccessKind::Load, CoherenceState::Exclusive, Ring::User));
    }

    #[test]
    fn lcr_kernel_filtering() {
        let c = LcrConfig::SPACE_CONSUMING;
        assert!(!c.admits(AccessKind::Load, CoherenceState::Invalid, Ring::Kernel));
        let open = LcrConfig {
            exclude_kernel: false,
            ..c
        };
        assert!(open.admits(AccessKind::Load, CoherenceState::Invalid, Ring::Kernel));
    }

    #[test]
    fn unit_masks_match_table2() {
        assert_eq!(CoherenceState::Invalid.unit_mask(), 0x01);
        assert_eq!(CoherenceState::Shared.unit_mask(), 0x02);
        assert_eq!(CoherenceState::Exclusive.unit_mask(), 0x04);
        assert_eq!(CoherenceState::Modified.unit_mask(), 0x08);
    }

    #[test]
    fn null_hardware_is_inert() {
        let mut hw = NullHardware;
        hw.on_branch(CoreId(0), ev(BranchKind::CondJump, Ring::User));
        assert_eq!(
            hw.ctl(CoreId(0), ThreadId::MAIN, HwCtlOp::ProfileLbr),
            CtlResponse::Done
        );
    }
}
