//! Machine-address layout: assigns every statement and terminator a linear
//! code address and decodes LBR/LCR record addresses back to source.
//!
//! The lowering of control flow follows Fig. 2 of the paper:
//!
//! * A source conditional branch occupies two slots: a conditional jump at
//!   `A` whose *taken* direction is the **false** edge, followed by an
//!   unconditional relative jump at `A + 4` for the **true** (fall-through)
//!   edge. Whichever way the source branch goes, exactly one machine branch
//!   retires, and its `from` address identifies both the branch and the
//!   outcome.
//! * An unconditional `Jmp` to the next block in layout order is a pure
//!   fall-through and retires no branch; any other `Jmp` is a near relative
//!   jump.
//! * `Call` retires a near (relative or indirect) call; `Ret` a near return.

use crate::ids::{BlockId, BranchId, FuncId};
use crate::ir::{Instr, Program, SourceLoc, Terminator, CODE_BASE, FUNC_STRIDE};
use std::collections::HashMap;

/// Width of one instruction slot in the simulated encoding.
pub const SLOT: u64 = 4;

/// What a recorded branch `from` address decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// One edge of a source-level conditional branch.
    SourceBranch {
        /// The source branch.
        branch: BranchId,
        /// The outcome this record proves: `true` = then-edge taken.
        outcome: bool,
        /// Location of the branch in the source.
        loc: SourceLoc,
        /// Enclosing function.
        func: FuncId,
    },
    /// A plain unconditional jump (loop back-edge, join, `goto`).
    PlainJump {
        /// Enclosing function.
        func: FuncId,
        /// Location of the jump.
        loc: SourceLoc,
    },
    /// A call instruction.
    Call {
        /// Enclosing (calling) function.
        func: FuncId,
        /// Location of the call.
        loc: SourceLoc,
    },
    /// A return instruction.
    Return {
        /// The returning function.
        func: FuncId,
        /// Location of the return.
        loc: SourceLoc,
    },
}

/// Reference from a code address back to the statement that owns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtRef {
    /// Enclosing function.
    pub func: FuncId,
    /// Enclosing block.
    pub block: BlockId,
    /// Statement index within the block.
    pub index: u32,
    /// Source location of the statement.
    pub loc: SourceLoc,
}

/// The address layout of a [`Program`].
#[derive(Debug, Clone)]
pub struct Layout {
    block_addr: Vec<Vec<u64>>,
    term_addr: Vec<Vec<u64>>,
    jmp_fallthrough: Vec<Vec<bool>>,
    branch_decode: HashMap<u64, Decoded>,
    stmt_decode: HashMap<u64, StmtRef>,
    func_entry: Vec<u64>,
}

impl Layout {
    /// Computes the layout of a program.
    pub fn build(program: &Program) -> Layout {
        let nf = program.functions.len();
        let mut block_addr = Vec::with_capacity(nf);
        let mut term_addr = Vec::with_capacity(nf);
        let mut jmp_fallthrough = Vec::with_capacity(nf);
        let mut branch_decode = HashMap::new();
        let mut stmt_decode = HashMap::new();
        let mut func_entry = Vec::with_capacity(nf);

        for (fi, func) in program.functions.iter().enumerate() {
            let base = CODE_BASE + fi as u64 * FUNC_STRIDE;
            func_entry.push(base);
            let nb = func.blocks.len();
            let mut baddrs = Vec::with_capacity(nb);
            let mut taddrs = Vec::with_capacity(nb);
            let mut falls = vec![false; nb];
            let mut cursor = base;
            // First pass: addresses.
            for (bi, block) in func.blocks.iter().enumerate() {
                baddrs.push(cursor);
                cursor += block.stmts.len() as u64 * SLOT;
                taddrs.push(cursor);
                cursor += match &block.term {
                    Terminator::Br { .. } => 2 * SLOT,
                    Terminator::Jmp(t) => {
                        if t.index() == bi + 1 {
                            falls[bi] = true;
                            0
                        } else {
                            SLOT
                        }
                    }
                    Terminator::Ret(_) => SLOT,
                };
            }
            debug_assert!(
                cursor - base < FUNC_STRIDE,
                "function `{}` overflows its code window",
                func.name
            );
            // Second pass: decode tables.
            let fid = FuncId::new(fi as u32);
            for (bi, block) in func.blocks.iter().enumerate() {
                for (si, stmt) in block.stmts.iter().enumerate() {
                    let addr = baddrs[bi] + si as u64 * SLOT;
                    stmt_decode.insert(
                        addr,
                        StmtRef {
                            func: fid,
                            block: BlockId::new(bi as u32),
                            index: si as u32,
                            loc: stmt.loc,
                        },
                    );
                    if let Instr::Call { callee, .. } = &stmt.instr {
                        let _ = callee; // kind recovered at runtime
                        branch_decode.insert(
                            addr,
                            Decoded::Call {
                                func: fid,
                                loc: stmt.loc,
                            },
                        );
                    }
                }
                let t = taddrs[bi];
                match &block.term {
                    Terminator::Br { .. } => {
                        let branch = block
                            .branch
                            .expect("finalize() must run before Layout::build");
                        branch_decode.insert(
                            t,
                            Decoded::SourceBranch {
                                branch,
                                outcome: false,
                                loc: block.term_loc,
                                func: fid,
                            },
                        );
                        branch_decode.insert(
                            t + SLOT,
                            Decoded::SourceBranch {
                                branch,
                                outcome: true,
                                loc: block.term_loc,
                                func: fid,
                            },
                        );
                    }
                    Terminator::Jmp(_) => {
                        if !falls[bi] {
                            branch_decode.insert(
                                t,
                                Decoded::PlainJump {
                                    func: fid,
                                    loc: block.term_loc,
                                },
                            );
                        }
                    }
                    Terminator::Ret(_) => {
                        branch_decode.insert(
                            t,
                            Decoded::Return {
                                func: fid,
                                loc: block.term_loc,
                            },
                        );
                    }
                }
            }
            block_addr.push(baddrs);
            term_addr.push(taddrs);
            jmp_fallthrough.push(falls);
        }

        Layout {
            block_addr,
            term_addr,
            jmp_fallthrough,
            branch_decode,
            stmt_decode,
            func_entry,
        }
    }

    /// Entry address of a function.
    pub fn func_entry(&self, func: FuncId) -> u64 {
        self.func_entry[func.index()]
    }

    /// Address of the first slot of a block.
    pub fn block_addr(&self, func: FuncId, block: BlockId) -> u64 {
        self.block_addr[func.index()][block.index()]
    }

    /// Address of a block's terminator.
    pub fn term_addr(&self, func: FuncId, block: BlockId) -> u64 {
        self.term_addr[func.index()][block.index()]
    }

    /// Address of statement `index` of a block.
    pub fn stmt_addr(&self, func: FuncId, block: BlockId, index: u32) -> u64 {
        self.block_addr(func, block) + index as u64 * SLOT
    }

    /// Whether the `Jmp` terminating this block lowers to a fall-through
    /// (no retired branch).
    pub fn jmp_is_fallthrough(&self, func: FuncId, block: BlockId) -> bool {
        self.jmp_fallthrough[func.index()][block.index()]
    }

    /// Decodes a recorded branch `from` address.
    pub fn decode_branch(&self, from: u64) -> Option<Decoded> {
        self.branch_decode.get(&from).copied()
    }

    /// Decodes a program counter back to its statement.
    pub fn decode_stmt(&self, pc: u64) -> Option<StmtRef> {
        self.stmt_decode.get(&pc).copied()
    }

    /// Decodes the (source branch, outcome) pair of a record, if the record
    /// is one edge of a source conditional.
    pub fn decode_source_branch(&self, from: u64) -> Option<(BranchId, bool)> {
        match self.decode_branch(from) {
            Some(Decoded::SourceBranch {
                branch, outcome, ..
            }) => Some((branch, outcome)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::BinOp;

    fn sample_program() -> (Program, FuncId) {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join_b = f.new_block();
        let x = f.read_input(0);
        let c = f.bin(BinOp::Gt, x, 0);
        f.br(c, then_b, else_b);
        f.set_block(then_b);
        f.output(1);
        f.jmp(join_b); // non-adjacent? then_b=1, join=3 → real jmp
        f.set_block(else_b);
        f.output(2);
        f.jmp(join_b); // else_b=2, join=3 → fallthrough
        f.set_block(join_b);
        f.ret(None);
        f.finish();
        (pb.finish(main), main)
    }

    #[test]
    fn addresses_are_function_relative_and_monotonic() {
        let (p, main) = sample_program();
        let l = Layout::build(&p);
        assert_eq!(l.func_entry(main), CODE_BASE);
        let b0 = BlockId::new(0);
        assert_eq!(l.block_addr(main, b0), CODE_BASE);
        assert_eq!(l.stmt_addr(main, b0, 1), CODE_BASE + SLOT);
        assert_eq!(l.term_addr(main, b0), CODE_BASE + 2 * SLOT);
    }

    #[test]
    fn conditional_branch_gets_two_decode_entries() {
        let (p, main) = sample_program();
        let l = Layout::build(&p);
        let t = l.term_addr(main, BlockId::new(0));
        let fals = l.decode_branch(t).unwrap();
        let tru = l.decode_branch(t + SLOT).unwrap();
        match (fals, tru) {
            (
                Decoded::SourceBranch {
                    branch: b1,
                    outcome: o1,
                    ..
                },
                Decoded::SourceBranch {
                    branch: b2,
                    outcome: o2,
                    ..
                },
            ) => {
                assert_eq!(b1, b2);
                assert!(!o1);
                assert!(o2);
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn adjacent_jmp_is_fallthrough_distant_is_not() {
        let (p, main) = sample_program();
        let l = Layout::build(&p);
        assert!(!l.jmp_is_fallthrough(main, BlockId::new(1)));
        assert!(l.jmp_is_fallthrough(main, BlockId::new(2)));
        // The fall-through jmp has no decode entry; the real one does.
        let t1 = l.term_addr(main, BlockId::new(1));
        assert!(matches!(
            l.decode_branch(t1),
            Some(Decoded::PlainJump { .. })
        ));
        // The fall-through jmp occupies no slot: its "address" belongs to
        // whatever comes next in the layout, never to a PlainJump entry.
        let t2 = l.term_addr(main, BlockId::new(2));
        assert!(!matches!(
            l.decode_branch(t2),
            Some(Decoded::PlainJump { .. })
        ));
    }

    #[test]
    fn stmt_decode_round_trips() {
        let (p, main) = sample_program();
        let l = Layout::build(&p);
        let addr = l.stmt_addr(main, BlockId::new(1), 0);
        let sref = l.decode_stmt(addr).unwrap();
        assert_eq!(sref.func, main);
        assert_eq!(sref.block, BlockId::new(1));
        assert_eq!(sref.index, 0);
    }

    #[test]
    fn functions_do_not_overlap() {
        let mut pb = ProgramBuilder::new("p");
        let a = pb.declare_function("a");
        let b = pb.declare_function("b");
        for fid in [a, b] {
            let mut f = pb.build_function(fid, "m.c");
            f.nop();
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(a);
        let l = Layout::build(&p);
        assert_eq!(l.func_entry(b) - l.func_entry(a), FUNC_STRIDE);
    }
}
