//! The simulated flat memory: globals, a guard-gapped heap and per-thread
//! stacks.
//!
//! Memory is byte-addressed; every load/store moves one 8-byte word at an
//! arbitrary address. Accesses outside a live mapped region fault, which is
//! how segmentation faults, use-after-free and wild pointers surface. Heap
//! allocations are separated by guard gaps so that *small* overflows stay
//! inside the same region (silent corruption, as in the `sort` bug of
//! Fig. 3) while *far* out-of-bounds accesses fault.

use std::collections::{BTreeMap, HashMap};

use crate::ir::HEAP_BASE;

/// Why a memory operation faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// Access to an address in no live region (includes null).
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// `free` of an address that is not the base of a live heap region.
    InvalidFree {
        /// The address passed to free.
        addr: u64,
    },
}

/// The kind of a mapped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Global data.
    Global,
    /// A heap allocation.
    Heap,
    /// A thread stack.
    Stack,
}

#[derive(Debug, Clone)]
struct Region {
    base: u64,
    bytes: u64,
    kind: RegionKind,
    live: bool,
}

/// Gap left between consecutive heap allocations so that far overflows
/// fault instead of silently landing in a neighbour.
pub const HEAP_GUARD: u64 = 64;

/// The simulated memory of one run.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    cells: HashMap<u64, i64>,
    regions: BTreeMap<u64, Region>,
    heap_next: u64,
    bytes_mapped: u64,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory {
            heap_next: HEAP_BASE,
            ..Memory::default()
        }
    }

    /// Resets to the empty state while keeping the table capacity — the
    /// allocation-free path for reusing one `Memory` across runs.
    pub fn reset(&mut self) {
        self.cells.clear();
        self.regions.clear();
        self.heap_next = HEAP_BASE;
        self.bytes_mapped = 0;
    }

    /// Maps a region at a fixed address (globals, stacks).
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing live region — a loader
    /// bug, not a program bug.
    pub fn map_fixed(&mut self, base: u64, bytes: u64, kind: RegionKind) {
        assert!(
            self.region_containing(base).is_none()
                && self.region_containing(base + bytes - 1).is_none(),
            "region overlap at {base:#x}"
        );
        self.regions.insert(
            base,
            Region {
                base,
                bytes,
                kind,
                live: true,
            },
        );
        self.bytes_mapped += bytes;
    }

    /// Allocates `words` 8-byte words on the heap, returning the base.
    pub fn alloc(&mut self, words: u64) -> u64 {
        let bytes = words.max(1) * 8;
        let base = self.heap_next;
        self.heap_next += bytes + HEAP_GUARD;
        self.regions.insert(
            base,
            Region {
                base,
                bytes,
                kind: RegionKind::Heap,
                live: true,
            },
        );
        self.bytes_mapped += bytes;
        base
    }

    /// Frees the heap allocation starting exactly at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::InvalidFree`] if `addr` is not the base of a
    /// live heap allocation (double free or wild free).
    pub fn free(&mut self, addr: u64) -> Result<(), MemFault> {
        match self.regions.get_mut(&addr) {
            Some(r) if r.live && r.kind == RegionKind::Heap => {
                r.live = false;
                self.bytes_mapped -= r.bytes;
                Ok(())
            }
            _ => Err(MemFault::InvalidFree { addr }),
        }
    }

    fn region_containing(&self, addr: u64) -> Option<&Region> {
        self.regions
            .range(..=addr)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.live && addr >= r.base && addr < r.base + r.bytes)
    }

    /// Returns `true` when `addr` lies in a live region.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.region_containing(addr).is_some()
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] for dead or never-mapped addresses.
    pub fn read(&self, addr: u64) -> Result<i64, MemFault> {
        if self.is_mapped(addr) {
            Ok(self.cells.get(&addr).copied().unwrap_or(0))
        } else {
            Err(MemFault::Unmapped { addr })
        }
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] for dead or never-mapped addresses.
    pub fn write(&mut self, addr: u64, value: i64) -> Result<(), MemFault> {
        if self.is_mapped(addr) {
            self.cells.insert(addr, value);
            Ok(())
        } else {
            Err(MemFault::Unmapped { addr })
        }
    }

    /// Writes without a mapping check (used by the loader for global
    /// initialisers).
    pub fn poke(&mut self, addr: u64, value: i64) {
        self.cells.insert(addr, value);
    }

    /// Total bytes currently mapped (the size a coredump would have to
    /// serialize).
    pub fn bytes_mapped(&self) -> u64 {
        self.bytes_mapped
    }

    /// Number of words ever touched (for coredump-cost simulation).
    pub fn words_touched(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_access_faults() {
        let m = Memory::new();
        assert_eq!(m.read(0), Err(MemFault::Unmapped { addr: 0 }));
    }

    #[test]
    fn alloc_read_write_round_trip() {
        let mut m = Memory::new();
        let a = m.alloc(4);
        assert_eq!(m.read(a).unwrap(), 0);
        m.write(a + 8, 42).unwrap();
        assert_eq!(m.read(a + 8).unwrap(), 42);
    }

    #[test]
    fn small_overflow_stays_in_region_far_overflow_faults() {
        let mut m = Memory::new();
        let a = m.alloc(2); // 16 bytes
        assert!(m.write(a + 15, 1).is_ok()); // still inside
        assert!(m.write(a + 16, 1).is_err()); // guard gap
        let b = m.alloc(2);
        assert_eq!(b - a, 16 + HEAP_GUARD);
    }

    #[test]
    fn use_after_free_faults() {
        let mut m = Memory::new();
        let a = m.alloc(1);
        m.write(a, 7).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.read(a), Err(MemFault::Unmapped { addr: a }));
    }

    #[test]
    fn double_free_is_invalid() {
        let mut m = Memory::new();
        let a = m.alloc(1);
        m.free(a).unwrap();
        assert_eq!(m.free(a), Err(MemFault::InvalidFree { addr: a }));
    }

    #[test]
    fn free_of_interior_pointer_is_invalid() {
        let mut m = Memory::new();
        let a = m.alloc(4);
        assert_eq!(m.free(a + 8), Err(MemFault::InvalidFree { addr: a + 8 }));
    }

    #[test]
    fn fixed_regions_work() {
        let mut m = Memory::new();
        m.map_fixed(0x1000, 64, RegionKind::Global);
        assert!(m.is_mapped(0x1000));
        assert!(m.is_mapped(0x103f));
        assert!(!m.is_mapped(0x1040));
        m.poke(0x1000, 9);
        assert_eq!(m.read(0x1000).unwrap(), 9);
    }

    #[test]
    fn bytes_mapped_tracks_alloc_and_free() {
        let mut m = Memory::new();
        let before = m.bytes_mapped();
        let a = m.alloc(4);
        assert_eq!(m.bytes_mapped(), before + 32);
        m.free(a).unwrap();
        assert_eq!(m.bytes_mapped(), before);
    }
}
