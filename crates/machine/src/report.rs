//! Run outcomes and reports.
//!
//! A [`RunReport`] is everything one execution of a program produced:
//! outcome, outputs, log events, hardware profiles (LBR/LCR snapshots
//! collected by instrumentation or the fault handler), sampling events of
//! the baselines and step statistics.

use crate::events::{BranchRecord, CoherenceRecord};
use crate::ids::{BlockId, FuncId, LogSiteId, SampleId, ThreadId};
use crate::ir::{LogKind, ProfileRole, SourceLoc};
use std::fmt;

/// The kind of a fail-stop failure.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Invalid memory access.
    Segfault {
        /// The faulting address.
        addr: u64,
    },
    /// `free` of a non-allocation (double free / wild free).
    InvalidFree {
        /// The address passed to free.
        addr: u64,
    },
    /// An [`Instr::Assert`](crate::ir::Instr::Assert) failed.
    AssertFailed {
        /// The assertion message.
        message: String,
    },
    /// Integer division by zero.
    DivByZero,
    /// All live threads were blocked.
    Deadlock,
    /// The step budget was exhausted (the watchdog fired).
    Hang,
    /// Call depth exceeded the configured maximum.
    StackOverflow,
    /// A workload input was read with a negative index.
    ///
    /// Reading *past the end* of the input vector yields the documented
    /// zero sentinel (workloads are logically zero-padded), but a negative
    /// index is always a guest bug and must not be maskable.
    NegativeInputIndex {
        /// The offending index value.
        index: i64,
    },
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Segfault { addr } => write!(f, "segmentation fault at {addr:#x}"),
            FailureKind::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            FailureKind::AssertFailed { message } => write!(f, "assertion failed: {message}"),
            FailureKind::DivByZero => write!(f, "division by zero"),
            FailureKind::Deadlock => write!(f, "deadlock"),
            FailureKind::Hang => write!(f, "hang (step budget exhausted)"),
            FailureKind::StackOverflow => write!(f, "stack overflow"),
            FailureKind::NegativeInputIndex { index } => {
                write!(f, "negative input index {index}")
            }
        }
    }
}

/// A fail-stop failure, attributed to the thread where it first occurred
/// (the *failure thread* of §4.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Failure {
    /// What happened.
    pub kind: FailureKind,
    /// The failure thread.
    pub thread: ThreadId,
    /// Function executing when the failure occurred.
    pub func: FuncId,
    /// Source location of the failing statement.
    pub loc: SourceLoc,
    /// Program counter of the failing statement.
    pub pc: u64,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The program ran to completion (main returned or `exit` executed).
    Completed {
        /// Exit code.
        exit_code: i64,
    },
    /// The program failed fail-stop.
    Failed(Failure),
}

impl RunOutcome {
    /// Returns the failure, if any.
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            RunOutcome::Failed(f) => Some(f),
            RunOutcome::Completed { .. } => None,
        }
    }

    /// `true` if the run completed without a fail-stop failure.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }
}

/// The scheduling state a thread ended the run in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalStatus {
    /// The thread ran to completion.
    Done,
    /// The thread was still runnable when the run ended.
    Runnable,
    /// The thread was blocked acquiring the lock at this address.
    BlockedLock(u64),
    /// The thread was blocked joining this thread.
    BlockedJoin(ThreadId),
}

impl fmt::Display for FinalStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinalStatus::Done => write!(f, "done"),
            FinalStatus::Runnable => write!(f, "runnable"),
            FinalStatus::BlockedLock(addr) => write!(f, "blocked on lock {addr:#x}"),
            FinalStatus::BlockedJoin(t) => write!(f, "blocked joining thread {}", t.0),
        }
    }
}

/// Where one thread stood when the run ended — the per-thread
/// last-instruction context a failure flight recorder preserves (which
/// instruction each thread was about to retire, and why it was not
/// running, at the moment of failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadFinalState {
    /// The thread.
    pub thread: ThreadId,
    /// Its final scheduling state.
    pub status: FinalStatus,
    /// Function of its last (or next pending) instruction.
    pub func: FuncId,
    /// Source location of that instruction.
    pub loc: SourceLoc,
    /// Program counter of that instruction.
    pub pc: u64,
    /// Global step at which the thread last retired an instruction
    /// (0 when it never ran).
    pub last_step: u64,
}

/// One executed logging call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// The static logging site.
    pub site: LogSiteId,
    /// Severity.
    pub kind: LogKind,
    /// Executing thread.
    pub thread: ThreadId,
    /// Global step at which the call retired.
    pub step: u64,
}

/// The payload of a profile event.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileData {
    /// An LBR snapshot, most recent branch first.
    Lbr(Vec<BranchRecord>),
    /// An LCR snapshot, most recent access first.
    Lcr(Vec<CoherenceRecord>),
}

/// One LBR/LCR profile collected during the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEvent {
    /// The logging site the profile belongs to (`None` when it was
    /// collected by the fault handler).
    pub site: Option<LogSiteId>,
    /// Failure- or success-site profile.
    pub role: ProfileRole,
    /// The profiling thread.
    pub thread: ThreadId,
    /// Global step of collection.
    pub step: u64,
    /// The snapshot.
    pub data: ProfileData,
}

/// One fired sampling probe (CBI/CCI/PBI baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleEvent {
    /// The probe.
    pub id: SampleId,
    /// The sampled value.
    pub value: i64,
    /// Executing thread.
    pub thread: ThreadId,
    /// Global step.
    pub step: u64,
}

/// One guest-profiler stack sample: where one thread stood when the
/// sampling countdown fired. Samples fire every
/// [`RunConfig::profile_period`](crate::interp::RunConfig::profile_period)
/// retired instructions and hit whichever thread the (seeded) scheduler
/// picked for that step — so the sample stream is exactly as
/// deterministic as the run itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackSample {
    /// The thread that retired the sampled instruction.
    pub thread: ThreadId,
    /// Global step at which the sample fired.
    pub step: u64,
    /// The thread's call stack, outermost frame first; each entry is a
    /// frame's function and the basic block it was executing.
    pub frames: Vec<(FuncId, BlockId)>,
}

/// One contended lock acquisition observed by the guest profiler: how
/// long the waiter stalled (in retired instructions, the machine's only
/// clock) and who held the lock when it first blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockWaitEvent {
    /// Address of the lock word.
    pub addr: u64,
    /// The thread that waited.
    pub waiter: ThreadId,
    /// The thread holding the lock when the waiter first blocked
    /// (`None` when the lock word held a value no live thread wrote).
    pub holder: Option<ThreadId>,
    /// Global steps between first blocking and acquiring.
    pub wait_steps: u64,
    /// Global step of the successful acquisition.
    pub acquired_step: u64,
    /// Program counter of the acquiring lock statement.
    pub pc: u64,
}

/// Everything one execution produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Values the program emitted via `Output`.
    pub outputs: Vec<i64>,
    /// Executed logging calls, in order.
    pub logs: Vec<LogEvent>,
    /// Collected hardware profiles, in order.
    pub profiles: Vec<ProfileEvent>,
    /// Fired sampling probes, in order.
    pub samples: Vec<SampleEvent>,
    /// Total interpreter steps retired.
    pub steps: u64,
    /// Total branch events retired (all classes, user and kernel).
    pub branches_retired: u64,
    /// Total data accesses retired.
    pub accesses_retired: u64,
    /// Number of threads ever spawned (including main).
    pub threads_spawned: u32,
    /// Final per-thread context, one entry per spawned thread in spawn
    /// order (the flight-recorder view of where every thread stood when
    /// the run ended).
    pub thread_states: Vec<ThreadFinalState>,
    /// Guest-profiler stack samples, in firing order (empty unless
    /// [`RunConfig::profile_period`](crate::interp::RunConfig::profile_period)
    /// is nonzero).
    pub stack_samples: Vec<StackSample>,
    /// Contended lock acquisitions, in acquisition order (empty unless
    /// guest profiling is on).
    pub lock_waits: Vec<LockWaitEvent>,
}

impl RunReport {
    /// `true` if any `Error`-severity log executed.
    pub fn logged_error(&self) -> bool {
        self.logs.iter().any(|l| l.kind == LogKind::Error)
    }

    /// `true` if the given site logged during the run.
    pub fn logged_site(&self, site: LogSiteId) -> bool {
        self.logs.iter().any(|l| l.site == site)
    }

    /// Iterates over profiles with the given role.
    pub fn profiles_with_role(&self, role: ProfileRole) -> impl Iterator<Item = &ProfileEvent> {
        self.profiles.iter().filter(move |p| p.role == role)
    }

    /// The last failure-site profile of the run, if any — the profile the
    /// diagnosis system ships home.
    pub fn failure_profile(&self) -> Option<&ProfileEvent> {
        self.profiles_with_role(ProfileRole::FailureSite).last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(outcome: RunOutcome) -> RunReport {
        RunReport {
            outcome,
            outputs: vec![],
            logs: vec![],
            profiles: vec![],
            samples: vec![],
            steps: 0,
            branches_retired: 0,
            accesses_retired: 0,
            threads_spawned: 1,
            thread_states: vec![],
            stack_samples: vec![],
            lock_waits: vec![],
        }
    }

    #[test]
    fn outcome_helpers() {
        let ok = RunOutcome::Completed { exit_code: 0 };
        assert!(ok.is_completed());
        assert!(ok.failure().is_none());
        let failed = RunOutcome::Failed(Failure {
            kind: FailureKind::DivByZero,
            thread: ThreadId::MAIN,
            func: FuncId::new(0),
            loc: SourceLoc::UNKNOWN,
            pc: 0,
        });
        assert!(!failed.is_completed());
        assert!(failed.failure().is_some());
    }

    #[test]
    fn failure_kind_display() {
        assert_eq!(
            FailureKind::Segfault { addr: 0 }.to_string(),
            "segmentation fault at 0x0"
        );
        assert_eq!(
            FailureKind::Hang.to_string(),
            "hang (step budget exhausted)"
        );
    }

    #[test]
    fn report_log_queries() {
        let mut r = blank(RunOutcome::Completed { exit_code: 0 });
        assert!(!r.logged_error());
        r.logs.push(LogEvent {
            site: LogSiteId::new(3),
            kind: LogKind::Error,
            thread: ThreadId::MAIN,
            step: 10,
        });
        assert!(r.logged_error());
        assert!(r.logged_site(LogSiteId::new(3)));
        assert!(!r.logged_site(LogSiteId::new(4)));
    }

    #[test]
    fn failure_profile_returns_last_failure_site_profile() {
        let mut r = blank(RunOutcome::Completed { exit_code: 0 });
        assert!(r.failure_profile().is_none());
        r.profiles.push(ProfileEvent {
            site: None,
            role: ProfileRole::SuccessSite,
            thread: ThreadId::MAIN,
            step: 1,
            data: ProfileData::Lbr(vec![]),
        });
        r.profiles.push(ProfileEvent {
            site: Some(LogSiteId::new(0)),
            role: ProfileRole::FailureSite,
            thread: ThreadId::MAIN,
            step: 2,
            data: ProfileData::Lbr(vec![]),
        });
        let p = r.failure_profile().unwrap();
        assert_eq!(p.step, 2);
    }
}
