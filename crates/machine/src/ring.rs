//! Position arithmetic for ring snapshots.
//!
//! Every hardware ring in this system (LBR, LCR) snapshots **most recent
//! first**: index 0 is the last record retired before the snapshot was
//! taken. Diagnosis layers speak in 1-based *positions* — position 1 is
//! the record closest to the failure, larger positions lie further back
//! in time (Table 6's "n-th latest entry"). This module is the single
//! home for that convention: decoding walks forward with [`walk`], and
//! causal reconstruction anchors with [`deepest_position_of`] and then
//! inspects the backward [`window`] between the anchor and the failure.

/// Iterates a snapshot with 1-based positions, position 1 = most recent.
pub fn walk<T>(snapshot: &[T]) -> impl DoubleEndedIterator<Item = (usize, &T)> + ExactSizeIterator {
    snapshot.iter().enumerate().map(|(i, r)| (i + 1, r))
}

/// Position (1 = most recent) of the first record matching `pred`.
pub fn position_of<T>(snapshot: &[T], pred: impl FnMut(&T) -> bool) -> Option<usize> {
    snapshot.iter().position(pred).map(|i| i + 1)
}

/// Position of the deepest (oldest) record matching `pred` — where a
/// backward causal walk anchors: everything at smaller positions happened
/// *after* the anchor and before the failure.
pub fn deepest_position_of<T>(snapshot: &[T], pred: impl FnMut(&T) -> bool) -> Option<usize> {
    snapshot.iter().rposition(pred).map(|i| i + 1)
}

/// The backward window from the failure (position 1) to `deepest`
/// inclusive — the slice a causal walk inspects once it has anchored at
/// position `deepest`. Clamped to the snapshot length, so a `deepest`
/// beyond the ring returns the whole snapshot.
pub fn window<T>(snapshot: &[T], deepest: usize) -> &[T] {
    &snapshot[..deepest.min(snapshot.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_yields_one_based_positions_most_recent_first() {
        let snap = vec!["newest", "middle", "oldest"];
        let walked: Vec<(usize, &&str)> = walk(&snap).collect();
        assert_eq!(walked[0], (1, &"newest"));
        assert_eq!(walked[2], (3, &"oldest"));
        assert_eq!(walk(&snap).len(), 3);
    }

    #[test]
    fn position_helpers_agree_on_singletons_and_differ_on_repeats() {
        let snap = vec![1, 2, 1, 3];
        assert_eq!(position_of(&snap, |&x| x == 2), Some(2));
        assert_eq!(position_of(&snap, |&x| x == 1), Some(1));
        assert_eq!(deepest_position_of(&snap, |&x| x == 1), Some(3));
        assert_eq!(deepest_position_of(&snap, |&x| x == 9), None);
    }

    #[test]
    fn window_spans_failure_to_anchor_and_clamps() {
        let snap = vec![10, 20, 30, 40];
        assert_eq!(window(&snap, 2), &[10, 20]);
        assert_eq!(window(&snap, 4), &snap[..]);
        assert_eq!(window(&snap, 99), &snap[..]);
        let empty: &[i32] = &[];
        assert_eq!(window(empty, 3), empty);
    }
}
