//! The intermediate representation executed by the [`Machine`](crate::interp::Machine).
//!
//! Programs are compiler-style: a set of functions made of basic blocks,
//! each holding straight-line statements and one terminator. The IR is
//! deliberately close to the machine model the paper cares about:
//!
//! * conditional branches lower to a conditional jump plus a fall-through
//!   unconditional jump (Fig. 2), so LBR always records *some* branch for
//!   either outcome of a source-level conditional;
//! * loads and stores are explicit and flow through the simulated MESI L1
//!   caches, producing the coherence events LCR records;
//! * failure-logging calls ([`Instr::Log`]) and hardware control calls
//!   ([`Instr::HwCtl`]) are first-class, because the diagnosis transformer
//!   of `stm-core` rewrites programs in terms of them.
//!
//! Construct programs with [`ProgramBuilder`](crate::builder::ProgramBuilder)
//! rather than by hand; the builder assigns identifiers and keeps the
//! registries (branches, log sites) consistent.

use crate::events::{HwCtlOp, LcrConfig};
use crate::ids::{BlockId, BranchId, FileId, FuncId, LogSiteId, SampleId, VarId};
use std::fmt;

/// Base linear address of the code segment; function `f` is laid out at
/// `CODE_BASE + f * FUNC_STRIDE`.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Address stride between consecutive functions.
pub const FUNC_STRIDE: u64 = 0x0001_0000;
/// Base address of the global data segment.
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Base address of the heap.
pub const HEAP_BASE: u64 = 0x2000_0000;
/// Base address of the per-thread stacks.
pub const STACK_BASE: u64 = 0x7000_0000;
/// Address stride between consecutive thread stacks.
pub const STACK_STRIDE: u64 = 0x0010_0000;

/// A position in the (synthetic) source code of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceLoc {
    /// The source file.
    pub file: FileId,
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
}

impl SourceLoc {
    /// A location in an unknown file/line.
    pub const UNKNOWN: SourceLoc = SourceLoc {
        file: FileId::new(u32::MAX),
        line: 0,
    };

    /// Creates a location.
    pub const fn new(file: FileId, line: u32) -> Self {
        SourceLoc { file, line }
    }

    /// Returns `true` when this is the unknown location.
    pub fn is_unknown(&self) -> bool {
        *self == SourceLoc::UNKNOWN
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.file, self.line)
        }
    }
}

/// An operand: either an immediate constant or a local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An immediate 64-bit constant. Addresses are plain integers.
    Const(i64),
    /// A local variable (virtual register) of the enclosing function.
    Var(VarId),
}

impl From<i64> for Operand {
    fn from(value: i64) -> Self {
        Operand::Const(value)
    }
}

impl From<VarId> for Operand {
    fn from(var: VarId) -> Self {
        Operand::Var(var)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Binary operators. Comparisons yield `1` (true) or `0` (false).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; dividing by zero raises a machine fault.
    Div,
    /// Signed remainder; dividing by zero raises a machine fault.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (modulo 64).
    Shl,
    /// Arithmetic right shift (modulo 64).
    Shr,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not: `0 → 1`, non-zero `→ 0`.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// The right-hand side of an assignment (three-address style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rvalue {
    /// Copies an operand.
    Use(Operand),
    /// Applies a binary operator.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Applies a unary operator.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Operand,
    },
    /// Reads the workload input at the given index.
    ///
    /// An index past the end of the input vector yields the documented
    /// zero sentinel (workloads are logically zero-padded); a *negative*
    /// index is a typed guest fault
    /// ([`FailureKind::NegativeInputIndex`](crate::report::FailureKind)).
    ReadInput {
        /// Index into the run's input vector.
        index: Operand,
    },
}

/// Severity of a logging call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogKind {
    /// A failure-logging call (`error()`, `ap_log_error()`...). These are
    /// the sites the diagnosis transformer instruments.
    Error,
    /// A warning.
    Warning,
    /// Informational output.
    Info,
}

/// Whether a profile instruction collects a failure-run or a success-run
/// profile (paper §5.2, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileRole {
    /// Collected at a failure logging site (or in the fault handler).
    FailureSite,
    /// Collected at the matching success logging site.
    SuccessSite,
}

/// Callee of a call instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A direct call; retires a near relative call branch.
    Direct(FuncId),
    /// An indirect call through a table; retires a near indirect call
    /// branch. The selector value indexes `targets` (modulo its length).
    Indirect {
        /// Candidate targets (the "function pointer table").
        targets: Vec<FuncId>,
        /// Runtime selector.
        selector: Operand,
    },
}

/// A straight-line instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = rvalue`.
    Assign {
        /// Destination variable.
        dst: VarId,
        /// Computed value.
        rv: Rvalue,
    },
    /// Loads the 8-byte word at `addr + disp` into `dst`; faults on
    /// unmapped addresses.
    Load {
        /// Destination variable.
        dst: VarId,
        /// Base address operand.
        addr: Operand,
        /// Constant byte displacement.
        disp: i64,
    },
    /// Stores `value` into the 8-byte word at `addr + disp`.
    Store {
        /// Base address operand.
        addr: Operand,
        /// Constant byte displacement.
        disp: i64,
        /// Value to store.
        value: Operand,
    },
    /// Loads stack slot `slot` of the current frame into `dst`. Stack
    /// accesses go through the cache like any other access (they are the
    /// dominant source of exclusive-load noise in LCR, §4.2.2).
    StackLoad {
        /// Destination variable.
        dst: VarId,
        /// Frame slot index.
        slot: u32,
    },
    /// Stores `value` into stack slot `slot` of the current frame.
    StackStore {
        /// Frame slot index.
        slot: u32,
        /// Value to store.
        value: Operand,
    },
    /// Allocates `words` 8-byte words on the heap; `dst` receives the base
    /// address.
    Alloc {
        /// Destination variable receiving the base address.
        dst: VarId,
        /// Number of 8-byte words to allocate.
        words: Operand,
    },
    /// Frees (unmaps) the allocation starting at `addr`; later accesses
    /// fault, modelling use-after-free.
    Free {
        /// Base address of a previous allocation.
        addr: Operand,
    },
    /// Calls a function; retires a call branch, and the callee's `ret`
    /// retires a return branch.
    Call {
        /// Destination for the return value, if used.
        dst: Option<VarId>,
        /// The callee.
        callee: Callee,
        /// Argument operands, bound to the callee's first variables.
        args: Vec<Operand>,
    },
    /// Spawns a thread running `func`; `dst` receives the thread id.
    Spawn {
        /// Destination variable receiving the spawned thread id.
        dst: VarId,
        /// Thread entry function.
        func: FuncId,
        /// Arguments to the entry function.
        args: Vec<Operand>,
    },
    /// Blocks until the thread named by `thread` exits.
    Join {
        /// A thread id produced by [`Instr::Spawn`].
        thread: Operand,
    },
    /// Acquires the mutex stored at address `addr` (blocking). The mutex
    /// word itself is written, producing a store coherence event; locking
    /// an unmapped address faults (modelling destroyed mutexes).
    Lock {
        /// Address of the mutex word.
        addr: Operand,
    },
    /// Releases the mutex at `addr`.
    Unlock {
        /// Address of the mutex word.
        addr: Operand,
    },
    /// Appends `value` to the run's output vector (the program's
    /// observable result; wrong-output failures are detected by comparing
    /// outputs against the workload's expectation).
    Output {
        /// Value emitted.
        value: Operand,
    },
    /// A logging call. `Error`-kind logs are the failure-logging sites the
    /// paper's transformer instruments; executing a log also performs a
    /// small amount of kernel work (ring-0 branches).
    Log {
        /// The program-wide identity of this logging site.
        site: LogSiteId,
        /// Severity.
        kind: LogKind,
        /// Static message template (no runtime values — privacy).
        message: String,
    },
    /// A hardware control operation (the `ioctl` interface of Fig. 7).
    /// Profile operations attach their snapshot to the run report.
    HwCtl {
        /// The control operation.
        op: HwCtlOp,
        /// For profile operations: the logging site this profile belongs to
        /// (`None` inside the fault handler).
        site: Option<LogSiteId>,
        /// For profile operations: failure- or success-site profile.
        role: ProfileRole,
    },
    /// A sampled instrumentation probe (CBI/CCI/PBI baselines): when the
    /// per-thread geometric countdown fires, records `(id, value)` in the
    /// run report. Costs work on every execution, which is exactly how the
    /// sampling overhead of the CBI approach arises.
    Sample {
        /// Probe identity.
        id: SampleId,
        /// Sampled value (e.g. a branch condition).
        value: Operand,
    },
    /// Asserts that `cond` is non-zero; a zero value raises an assertion
    /// failure (a fail-stop symptom).
    Assert {
        /// The condition.
        cond: Operand,
        /// Message reported on violation.
        message: String,
    },
    /// Performs `kernel_branches` ring-0 branches (a syscall), exercising
    /// the LBR privilege filter.
    Syscall {
        /// Number of kernel-level branches retired.
        kernel_branches: u8,
    },
    /// Terminates the whole program immediately with the given exit code.
    Exit {
        /// Process exit code.
        code: Operand,
    },
    /// A scheduling hint; semantically a no-op.
    Yield,
    /// Does nothing.
    Nop,
}

/// A statement: an instruction plus its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The instruction.
    pub instr: Instr,
    /// Source location, for patch-distance and report rendering.
    pub loc: SourceLoc,
}

/// A basic-block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// A source-level conditional branch (Fig. 2 lowering: taken
    /// conditional jump on the false edge, fall-through unconditional jump
    /// on the true edge).
    Br {
        /// Condition operand; non-zero takes the `then_blk` edge.
        cond: Operand,
        /// Successor on a true condition.
        then_blk: BlockId,
        /// Successor on a false condition.
        else_blk: BlockId,
    },
    /// An unconditional jump. Lowered to a fall-through (no branch record)
    /// when the target is the next block in layout order, otherwise to a
    /// near relative jump (recorded).
    Jmp(BlockId),
    /// Returns from the function; retires a near return branch.
    Ret(Option<Operand>),
}

impl Terminator {
    /// The successors of this terminator, in (then, else) order for `Br`.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Terminator::Jmp(b) => vec![*b],
            Terminator::Ret(_) => vec![],
        }
    }
}

/// A basic block: straight-line statements plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// The statements, executed in order.
    pub stmts: Vec<Stmt>,
    /// The terminator.
    pub term: Terminator,
    /// Source location of the terminator.
    pub term_loc: SourceLoc,
    /// For `Br` terminators: the program-wide branch identity, assigned by
    /// [`Program::finalize`].
    pub branch: Option<BranchId>,
}

/// A function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within a program).
    pub name: String,
    /// The file this function lives in.
    pub file: FileId,
    /// Number of parameters; bound to variables `v0..vparams`.
    pub params: u32,
    /// Total number of local variables (including parameters).
    pub num_vars: u32,
    /// Number of stack slots in the frame.
    pub frame_slots: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Library functions are candidates for LBR/LCR toggling wrappers and
    /// are skipped by the useful-branch analysis (they are not application
    /// logging sites).
    pub is_library: bool,
}

impl Function {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name (unique within a program).
    pub name: String,
    /// Assigned base address (within the global segment).
    pub addr: u64,
    /// Size in 8-byte words.
    pub words: u64,
    /// Initial values; missing trailing words are zero.
    pub init: Vec<i64>,
}

/// Registry entry describing a source-level conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// The branch id.
    pub id: BranchId,
    /// Enclosing function.
    pub func: FuncId,
    /// Block whose terminator is the branch.
    pub block: BlockId,
    /// Source location.
    pub loc: SourceLoc,
}

/// Registry entry describing a logging site.
#[derive(Debug, Clone, PartialEq)]
pub struct LogSiteInfo {
    /// The site id.
    pub site: LogSiteId,
    /// Enclosing function.
    pub func: FuncId,
    /// Source location of the logging call.
    pub loc: SourceLoc,
    /// Severity.
    pub kind: LogKind,
    /// Static message.
    pub message: String,
}

/// Configuration of the registered fault handler: which facilities it
/// profiles when the program crashes (transformer step 4 of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultProfile {
    /// Profile the LBR in the fault handler.
    pub lbr: bool,
    /// Profile the LCR in the fault handler.
    pub lcr: bool,
}

/// A complete program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (for reports).
    pub name: String,
    /// Source file table.
    pub files: Vec<String>,
    /// Functions; indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// Globals; indexed by [`GlobalId`](crate::ids::GlobalId).
    pub globals: Vec<GlobalDef>,
    /// The entry function (run on the main thread).
    pub entry: FuncId,
    /// Registry of source-level conditional branches (after
    /// [`Program::finalize`]).
    pub branches: Vec<BranchInfo>,
    /// Registry of logging sites.
    pub log_sites: Vec<LogSiteInfo>,
    /// Fault-handler profiling configuration.
    pub fault_profile: FaultProfile,
    /// The LCR configuration the instrumentation programs at startup.
    pub lcr_config: LcrConfig,
}

/// Errors reported by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// A block terminator targets a non-existent block.
    BadBlockTarget {
        /// Offending function.
        func: FuncId,
        /// Offending block.
        block: BlockId,
        /// The bad target.
        target: BlockId,
    },
    /// An instruction references a variable beyond `num_vars`.
    BadVar {
        /// Offending function.
        func: FuncId,
        /// The bad variable.
        var: VarId,
    },
    /// A call references a non-existent function.
    BadCallee {
        /// Offending function.
        func: FuncId,
        /// The bad callee.
        callee: FuncId,
    },
    /// The entry function does not exist.
    BadEntry(FuncId),
    /// A function has more parameters than variables.
    ParamsExceedVars(FuncId),
    /// A stack access references a slot beyond `frame_slots`.
    BadStackSlot {
        /// Offending function.
        func: FuncId,
        /// The bad slot.
        slot: u32,
    },
    /// Two globals overlap in the address space.
    OverlappingGlobals(String, String),
    /// The program was not finalized (branch registry missing).
    NotFinalized,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::BadBlockTarget {
                func,
                block,
                target,
            } => {
                write!(f, "{func} {block}: terminator targets missing {target}")
            }
            ValidateProgramError::BadVar { func, var } => {
                write!(f, "{func}: reference to undeclared variable {var}")
            }
            ValidateProgramError::BadCallee { func, callee } => {
                write!(f, "{func}: call to missing function {callee}")
            }
            ValidateProgramError::BadEntry(e) => write!(f, "entry function {e} does not exist"),
            ValidateProgramError::ParamsExceedVars(func) => {
                write!(f, "{func}: more parameters than variables")
            }
            ValidateProgramError::BadStackSlot { func, slot } => {
                write!(f, "{func}: stack slot {slot} out of range")
            }
            ValidateProgramError::OverlappingGlobals(a, b) => {
                write!(f, "globals `{a}` and `{b}` overlap")
            }
            ValidateProgramError::NotFinalized => {
                write!(f, "program was not finalized before use")
            }
        }
    }
}

impl std::error::Error for ValidateProgramError {}

impl Program {
    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId::new(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Returns the registry entry for a branch.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn branch_info(&self, id: BranchId) -> &BranchInfo {
        &self.branches[id.index()]
    }

    /// Returns the registry entry for a log site.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn log_site_info(&self, id: LogSiteId) -> &LogSiteInfo {
        &self.log_sites[id.index()]
    }

    /// The file name behind a [`FileId`], or `"<unknown>"`.
    pub fn file_name(&self, id: FileId) -> &str {
        self.files
            .get(id.index())
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Renders a [`SourceLoc`] with the real file name.
    pub fn render_loc(&self, loc: SourceLoc) -> String {
        if loc.is_unknown() {
            "<unknown>".to_string()
        } else {
            format!("{}:{}", self.file_name(loc.file), loc.line)
        }
    }

    /// (Re)builds the branch registry. Deterministic: branches are numbered
    /// in (function, block) order. Instrumentation passes that only append
    /// statements or whole functions keep existing ids stable.
    pub fn finalize(&mut self) {
        self.branches.clear();
        for (fi, func) in self.functions.iter_mut().enumerate() {
            for (bi, block) in func.blocks.iter_mut().enumerate() {
                if matches!(block.term, Terminator::Br { .. }) {
                    let id = BranchId::new(self.branches.len() as u32);
                    block.branch = Some(id);
                    self.branches.push(BranchInfo {
                        id,
                        func: FuncId::new(fi as u32),
                        block: BlockId::new(bi as u32),
                        loc: block.term_loc,
                    });
                } else {
                    block.branch = None;
                }
            }
        }
    }

    /// Validates structural invariants of the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateProgramError`] found.
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        if self.entry.index() >= self.functions.len() {
            return Err(ValidateProgramError::BadEntry(self.entry));
        }
        let mut sorted: Vec<&GlobalDef> = self.globals.iter().collect();
        sorted.sort_by_key(|g| g.addr);
        for pair in sorted.windows(2) {
            if pair[0].addr + pair[0].words * 8 > pair[1].addr {
                return Err(ValidateProgramError::OverlappingGlobals(
                    pair[0].name.clone(),
                    pair[1].name.clone(),
                ));
            }
        }
        for (fi, func) in self.functions.iter().enumerate() {
            let fid = FuncId::new(fi as u32);
            if func.params > func.num_vars {
                return Err(ValidateProgramError::ParamsExceedVars(fid));
            }
            let check_var = |v: VarId| -> Result<(), ValidateProgramError> {
                if v.raw() >= func.num_vars {
                    Err(ValidateProgramError::BadVar { func: fid, var: v })
                } else {
                    Ok(())
                }
            };
            let check_op = |o: &Operand| -> Result<(), ValidateProgramError> {
                match o {
                    Operand::Var(v) => check_var(*v),
                    Operand::Const(_) => Ok(()),
                }
            };
            let check_callee = |c: FuncId| -> Result<(), ValidateProgramError> {
                if c.index() >= self.functions.len() {
                    Err(ValidateProgramError::BadCallee {
                        func: fid,
                        callee: c,
                    })
                } else {
                    Ok(())
                }
            };
            for (bi, block) in func.blocks.iter().enumerate() {
                let bid = BlockId::new(bi as u32);
                for stmt in &block.stmts {
                    match &stmt.instr {
                        Instr::Assign { dst, rv } => {
                            check_var(*dst)?;
                            match rv {
                                Rvalue::Use(o) => check_op(o)?,
                                Rvalue::Binary { lhs, rhs, .. } => {
                                    check_op(lhs)?;
                                    check_op(rhs)?;
                                }
                                Rvalue::Unary { operand, .. } => check_op(operand)?,
                                Rvalue::ReadInput { index } => check_op(index)?,
                            }
                        }
                        Instr::Load { dst, addr, .. } => {
                            check_var(*dst)?;
                            check_op(addr)?;
                        }
                        Instr::Store { addr, value, .. } => {
                            check_op(addr)?;
                            check_op(value)?;
                        }
                        Instr::StackLoad { dst, slot } => {
                            check_var(*dst)?;
                            if *slot >= func.frame_slots {
                                return Err(ValidateProgramError::BadStackSlot {
                                    func: fid,
                                    slot: *slot,
                                });
                            }
                        }
                        Instr::StackStore { slot, value } => {
                            check_op(value)?;
                            if *slot >= func.frame_slots {
                                return Err(ValidateProgramError::BadStackSlot {
                                    func: fid,
                                    slot: *slot,
                                });
                            }
                        }
                        Instr::Alloc { dst, words } => {
                            check_var(*dst)?;
                            check_op(words)?;
                        }
                        Instr::Free { addr } => check_op(addr)?,
                        Instr::Call { dst, callee, args } => {
                            if let Some(d) = dst {
                                check_var(*d)?;
                            }
                            match callee {
                                Callee::Direct(c) => check_callee(*c)?,
                                Callee::Indirect { targets, selector } => {
                                    for t in targets {
                                        check_callee(*t)?;
                                    }
                                    check_op(selector)?;
                                }
                            }
                            for a in args {
                                check_op(a)?;
                            }
                        }
                        Instr::Spawn {
                            dst,
                            func: f2,
                            args,
                        } => {
                            check_var(*dst)?;
                            check_callee(*f2)?;
                            for a in args {
                                check_op(a)?;
                            }
                        }
                        Instr::Join { thread } => check_op(thread)?,
                        Instr::Lock { addr } | Instr::Unlock { addr } => check_op(addr)?,
                        Instr::Output { value } => check_op(value)?,
                        Instr::Sample { value, .. } => check_op(value)?,
                        Instr::Assert { cond, .. } => check_op(cond)?,
                        Instr::Exit { code } => check_op(code)?,
                        Instr::Log { .. }
                        | Instr::HwCtl { .. }
                        | Instr::Syscall { .. }
                        | Instr::Yield
                        | Instr::Nop => {}
                    }
                }
                match &block.term {
                    Terminator::Br {
                        cond,
                        then_blk,
                        else_blk,
                    } => {
                        check_op(cond)?;
                        for t in [then_blk, else_blk] {
                            if t.index() >= func.blocks.len() {
                                return Err(ValidateProgramError::BadBlockTarget {
                                    func: fid,
                                    block: bid,
                                    target: *t,
                                });
                            }
                        }
                        if block.branch.is_none() {
                            return Err(ValidateProgramError::NotFinalized);
                        }
                    }
                    Terminator::Jmp(t) => {
                        if t.index() >= func.blocks.len() {
                            return Err(ValidateProgramError::BadBlockTarget {
                                func: fid,
                                block: bid,
                                target: *t,
                            });
                        }
                    }
                    Terminator::Ret(Some(o)) => check_op(o)?,
                    Terminator::Ret(None) => {}
                }
            }
        }
        Ok(())
    }

    /// Counts statements across all functions (a rough "lines of code"
    /// figure for inventory tables).
    pub fn stmt_count(&self) -> usize {
        self.functions
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.stmts.len() + 1).sum::<usize>())
            .sum()
    }

    /// Iterates over all `Error`-kind logging sites.
    pub fn error_log_sites(&self) -> impl Iterator<Item = &LogSiteInfo> {
        self.log_sites.iter().filter(|s| s.kind == LogKind::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn source_loc_display() {
        assert_eq!(SourceLoc::UNKNOWN.to_string(), "<unknown>");
        assert_eq!(SourceLoc::new(FileId::new(1), 42).to_string(), "file1:42");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(5i64), Operand::Const(5));
        assert_eq!(Operand::from(VarId::new(2)), Operand::Var(VarId::new(2)));
    }

    #[test]
    fn terminator_successors() {
        let br = Terminator::Br {
            cond: Operand::Const(1),
            then_blk: BlockId::new(1),
            else_blk: BlockId::new(2),
        };
        assert_eq!(br.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(
            Terminator::Jmp(BlockId::new(3)).successors(),
            vec![BlockId::new(3)]
        );
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn finalize_assigns_branch_ids_in_order() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "main.c");
            let b_then = f.new_block();
            let b_else = f.new_block();
            let v = f.read_input(0);
            f.br(v, b_then, b_else);
            f.set_block(b_then);
            f.ret(None);
            f.set_block(b_else);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        assert_eq!(p.branches.len(), 1);
        assert_eq!(p.branches[0].id, BranchId::new(0));
        assert_eq!(p.branches[0].func, main);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_block_target() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "main.c");
            f.ret(None);
            f.finish();
        }
        let mut p = pb.finish(main);
        p.functions[0].blocks[0].term = Terminator::Jmp(BlockId::new(9));
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn validate_catches_unfinalized_branch() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "main.c");
            let a = f.new_block();
            let b = f.new_block();
            let v = f.read_input(0);
            f.br(v, a, b);
            f.set_block(a);
            f.ret(None);
            f.set_block(b);
            f.ret(None);
            f.finish();
        }
        let mut p = pb.finish(main);
        p.functions[0].blocks[0].branch = None;
        assert_eq!(p.validate(), Err(ValidateProgramError::NotFinalized));
    }

    #[test]
    fn validate_catches_overlapping_globals() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        pb.global("a", 4);
        pb.global("b", 4);
        {
            let mut f = pb.build_function(main, "main.c");
            f.ret(None);
            f.finish();
        }
        let mut p = pb.finish(main);
        p.globals[1].addr = p.globals[0].addr; // force overlap
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::OverlappingGlobals(_, _))
        ));
    }

    #[test]
    fn function_and_global_lookup_by_name() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let helper = pb.declare_function("helper");
        pb.global("counter", 1);
        for fid in [main, helper] {
            let mut f = pb.build_function(fid, "main.c");
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        assert_eq!(p.function_by_name("helper"), Some(helper));
        assert_eq!(p.function_by_name("nope"), None);
        assert!(p.global_by_name("counter").is_some());
        assert!(p.global_by_name("nope").is_none());
    }
}
