//! Thread scheduling policies.
//!
//! The interpreter asks the scheduler for the next thread to run before
//! every step, so interleavings are fine-grained. [`SchedPolicy::Random`]
//! with different seeds explores different interleavings — this is how the
//! concurrency-bug benchmarks find failing and passing schedules — while
//! staying fully deterministic for a fixed seed.

use crate::ids::ThreadId;
use crate::rng::SplitMix64;

/// A scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Rotate through runnable threads.
    RoundRobin,
    /// Pick a uniformly random runnable thread each step, seeded.
    Random {
        /// PRNG seed; same seed ⇒ same interleaving.
        seed: u64,
    },
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy::Random { seed: 0 }
    }
}

/// The runtime state of a scheduling policy.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedPolicy,
    rng: SplitMix64,
    cursor: usize,
}

impl Scheduler {
    /// Creates a scheduler for the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        let seed = match policy {
            SchedPolicy::Random { seed } => seed,
            SchedPolicy::RoundRobin => 0,
        };
        Scheduler {
            policy,
            rng: SplitMix64::new(seed),
            cursor: 0,
        }
    }

    /// Picks the next thread among the runnable ones.
    ///
    /// # Panics
    ///
    /// Panics if `runnable` is empty — the interpreter must detect
    /// deadlock/completion before asking.
    pub fn pick(&mut self, runnable: &[ThreadId]) -> ThreadId {
        assert!(
            !runnable.is_empty(),
            "scheduler invoked with no runnable threads"
        );
        if runnable.len() == 1 {
            return runnable[0];
        }
        match self.policy {
            SchedPolicy::RoundRobin => {
                self.cursor = (self.cursor + 1) % runnable.len();
                runnable[self.cursor]
            }
            SchedPolicy::Random { .. } => {
                let i = self.rng.next_below(runnable.len() as u64) as usize;
                runnable[i]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tids(n: u32) -> Vec<ThreadId> {
        (0..n).map(ThreadId).collect()
    }

    #[test]
    fn single_runnable_thread_is_always_picked() {
        let mut s = Scheduler::new(SchedPolicy::Random { seed: 3 });
        for _ in 0..10 {
            assert_eq!(s.pick(&[ThreadId(5)]), ThreadId(5));
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::new(SchedPolicy::RoundRobin);
        let ts = tids(3);
        let picks: Vec<_> = (0..6).map(|_| s.pick(&ts)).collect();
        assert_eq!(
            picks,
            vec![
                ThreadId(1),
                ThreadId(2),
                ThreadId(0),
                ThreadId(1),
                ThreadId(2),
                ThreadId(0)
            ]
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let ts = tids(4);
        let run = |seed| {
            let mut s = Scheduler::new(SchedPolicy::Random { seed });
            (0..50).map(|_| s.pick(&ts)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_eventually_picks_everyone() {
        let ts = tids(3);
        let mut s = Scheduler::new(SchedPolicy::Random { seed: 1 });
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.pick(&ts).index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "no runnable threads")]
    fn empty_runnable_panics() {
        Scheduler::new(SchedPolicy::RoundRobin).pick(&[]);
    }
}
