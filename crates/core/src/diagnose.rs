//! LBRA and LCRA: automatic failure diagnosis from LBR/LCR profiles (§5.2).
//!
//! Both drivers follow the same loop: replay failing workloads until
//! `failure_profiles` failure-run profiles are collected, replay passing
//! workloads until `success_profiles` success-run profiles are collected,
//! feed both sets to the [`RankingModel`] and rank events by the harmonic
//! mean of prediction precision and recall. Runs that neither reproduce the
//! target failure nor reach the success logging site are naturally excluded
//! (§5.2: "LBR/LCR will not be profiled during runs that do not execute the
//! code around the failure site").
//!
//! The number of *failing* runs a diagnosis consumes is its **diagnosis
//! latency** — the headline advantage over sampling-based CBI (§7.2: 10
//! vs. 1000 failure occurrences).

use crate::engine::CollectedProfiles;
use crate::profile::{lbr_events, lcr_events, BranchOutcome, CoherenceEvent};
use crate::ranking::{Polarity, RankedEvent, RankingModel};
use crate::runner::FailureSpec;
use std::collections::{BTreeSet, HashMap};
use stm_machine::ids::BranchId;
use stm_machine::ir::{ProfileRole, SourceLoc};
use stm_machine::report::{ProfileData, ProfileEvent, RunReport};

/// How many profiles of each class a collection keeps — the one quota
/// surface shared by [`SessionConfig`](crate::engine::SessionConfig),
/// the [`DiagnosisSession`](crate::engine::DiagnosisSession) builder and
/// the fleet daemon's per-shard configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quotas {
    /// Failure-run profiles to collect (the paper uses 10).
    pub failure_profiles: usize,
    /// Success-run profiles to collect (the paper uses 10).
    pub success_profiles: usize,
    /// Hard cap on runs *per collection phase* (failure and success each),
    /// to bound non-reproducing workload sets.
    pub max_runs: usize,
}

/// The quota type under its original name. `Quotas` used to be private
/// to the diagnosis layer; the alias keeps struct-literal construction
/// sites compiling while the session, scan and fleet surfaces all speak
/// [`Quotas`].
pub type DiagnosisConfig = Quotas;

impl Default for Quotas {
    fn default() -> Self {
        Quotas {
            failure_profiles: 10,
            success_profiles: 10,
            max_runs: 2000,
        }
    }
}

impl Quotas {
    /// Sets the failure-profile quota.
    pub fn failure_profiles(mut self, n: usize) -> Self {
        self.failure_profiles = n;
        self
    }

    /// Sets the success-profile quota.
    pub fn success_profiles(mut self, n: usize) -> Self {
        self.success_profiles = n;
        self
    }

    /// Sets the per-phase run cap.
    pub fn max_runs(mut self, n: usize) -> Self {
        self.max_runs = n;
        self
    }
}

/// Statistics of one diagnosis: how many runs of each class were consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiagnosisStats {
    /// Runs that reproduced the target failure and yielded a profile.
    pub failure_runs_used: usize,
    /// Successful runs that yielded a success-site profile.
    pub success_runs_used: usize,
    /// Total runs executed, including excluded ones.
    pub total_runs: usize,
}

/// Selects the failure-run profile matching the spec: the profile taken at
/// the target logging site, or the fault-handler profile for crashes.
pub fn failure_profile<'r>(report: &'r RunReport, spec: &FailureSpec) -> Option<&'r ProfileEvent> {
    let want_site = match spec {
        FailureSpec::ErrorLogAt(site) => Some(*site),
        _ => None,
    };
    report
        .profiles
        .iter()
        .rfind(|p| p.role == ProfileRole::FailureSite && p.site == want_site)
}

/// Selects the success-run profile matching the spec: the last snapshot
/// taken at the corresponding success logging site.
pub fn success_profile<'r>(report: &'r RunReport, spec: &FailureSpec) -> Option<&'r ProfileEvent> {
    let want_site = match spec {
        FailureSpec::ErrorLogAt(site) => Some(*site),
        _ => None,
    };
    report
        .profiles
        .iter()
        .rfind(|p| p.role == ProfileRole::SuccessSite && p.site == want_site)
}

/// Builds the ranking model from collected profiles: failures first, then
/// successes, both in their deterministic consumption order — exactly the
/// insertion order the sequential driver produced.
fn build_model<E: Ord + Clone>(
    profiles: &CollectedProfiles,
    extraction_span: &'static str,
    mut extract: impl FnMut(&ProfileEvent) -> Option<BTreeSet<E>>,
) -> RankingModel<E> {
    let spec = profiles.spec();
    let mut extract = |p: &ProfileEvent| {
        let _span = stm_telemetry::span_cat(extraction_span, "diagnosis");
        extract(p)
    };
    let mut model = RankingModel::new();
    for run in profiles.failure_runs() {
        if let Some(events) = failure_profile(&run.report, spec).and_then(&mut extract) {
            model.add_profile_named(true, run.witness.clone(), events);
        }
    }
    for run in profiles.success_runs() {
        if let Some(events) = success_profile(&run.report, spec).and_then(&mut extract) {
            model.add_profile_named(false, run.witness.clone(), events);
        }
    }
    model
}

impl CollectedProfiles {
    /// Runs the LBRA ranking (§5.2) over the collected LBR profiles:
    /// branch outcomes scored by the harmonic mean of prediction
    /// precision and recall, proximity tie-broken by ring position.
    pub fn lbra(&self) -> LbraDiagnosis {
        let layout = self.runner().machine().layout();
        let mut positions: HashMap<BranchOutcome, (u64, u64)> = HashMap::new();
        let model = build_model(self, "lbra.profile_extraction", |p| match &p.data {
            ProfileData::Lbr(records) => {
                if p.role == ProfileRole::FailureSite {
                    for e in crate::profile::decode_lbr(layout, records) {
                        if let Some(bo) = e.branch_outcome() {
                            let slot = positions.entry(bo).or_insert((0, 0));
                            slot.0 += e.position as u64;
                            slot.1 += 1;
                        }
                    }
                }
                Some(lbr_events(layout, records))
            }
            ProfileData::Lcr(_) => None,
        });
        let _rank_span = stm_telemetry::span_cat("lbra.ranking", "diagnosis");
        let mut ranked = model.rank();
        proximity_tiebreak(&mut ranked, |e| positions.get(e).copied());
        LbraDiagnosis {
            ranked,
            stats: *self.stats(),
        }
    }

    /// Runs the LCRA ranking (§5.2) over the collected LCR profiles,
    /// including the absence predictors of §4.2.2.
    pub fn lcra(&self) -> LcraDiagnosis {
        let layout = self.runner().machine().layout();
        let mut positions: HashMap<CoherenceEvent, (u64, u64)> = HashMap::new();
        let model = build_model(self, "lcra.profile_extraction", |p| match &p.data {
            ProfileData::Lcr(records) => {
                if p.role == ProfileRole::FailureSite {
                    for e in crate::profile::decode_lcr(layout, records) {
                        let slot = positions.entry(e.event).or_insert((0, 0));
                        slot.0 += e.position as u64;
                        slot.1 += 1;
                    }
                }
                Some(lcr_events(layout, records))
            }
            ProfileData::Lbr(_) => None,
        });
        let _rank_span = stm_telemetry::span_cat("lcra.ranking", "diagnosis");
        let mut ranked = model.rank_with_absence();
        proximity_tiebreak(&mut ranked, |e| positions.get(e).copied());
        LcraDiagnosis {
            ranked,
            stats: *self.stats(),
        }
    }

    /// The raw batch [`RankingModel`] over the collected LBR profiles —
    /// the exact model [`CollectedProfiles::lbra`] ranks before its
    /// proximity tie-break. The incremental ranking's final output
    /// ([`crate::converge::FinalRanking::Lbr`]) is pinned bit-identical
    /// to this model's `rank()`.
    pub fn lbr_model(&self) -> RankingModel<BranchOutcome> {
        let layout = self.runner().machine().layout();
        build_model(self, "lbra.profile_extraction", |p| match &p.data {
            ProfileData::Lbr(records) => Some(lbr_events(layout, records)),
            ProfileData::Lcr(_) => None,
        })
    }

    /// The raw batch [`RankingModel`] over the collected LCR profiles —
    /// the exact model [`CollectedProfiles::lcra`] ranks before its
    /// proximity tie-break. The incremental ranking's final output
    /// ([`crate::converge::FinalRanking::Lcr`]) is pinned bit-identical
    /// to this model's `rank_with_absence()`.
    pub fn lcr_model(&self) -> RankingModel<CoherenceEvent> {
        let layout = self.runner().machine().layout();
        build_model(self, "lcra.profile_extraction", |p| match &p.data {
            ProfileData::Lcr(records) => Some(lcr_events(layout, records)),
            ProfileData::Lbr(_) => None,
        })
    }
}

/// The result of an LBRA diagnosis.
#[derive(Debug, Clone)]
pub struct LbraDiagnosis {
    /// Scored branch-outcome predictors, best first.
    pub ranked: Vec<RankedEvent<BranchOutcome>>,
    /// Run accounting.
    pub stats: DiagnosisStats,
}

impl LbraDiagnosis {
    /// 1-based rank of the first predictor involving `branch`.
    ///
    /// Deterministic for identical profile sets: predictors order by
    /// harmonic score (descending), then average failure-profile ring
    /// position (ascending, unseen last), then event order
    /// (`BranchOutcome`'s `Ord`: branch id, then outcome).
    pub fn rank_of_branch(&self, branch: BranchId) -> Option<usize> {
        RankingModel::rank_of(&self.ranked, |r| r.event.branch == branch)
    }

    /// Drops the predictors formed by the branch edges that jump directly
    /// into the failure site's block. That branch is the failure *site*
    /// (LBRLOG reports it as the location); keeping it would let it
    /// trivially outrank every actual cause, since by construction it
    /// fires in exactly the failing runs.
    pub fn exclude_site_guards(&mut self, program: &stm_machine::ir::Program, spec: &FailureSpec) {
        if let Some((func, block)) = crate::analysis::failure_site_block(program, spec) {
            let guards = crate::analysis::site_guard_outcomes(program, func, block);
            self.ranked
                .retain(|r| !guards.contains(&(r.event.branch, r.event.outcome)));
        }
    }

    /// The best predictor, if any event was observed at all.
    pub fn top(&self) -> Option<&RankedEvent<BranchOutcome>> {
        self.ranked.first()
    }
}

/// Stable-reorders equal-scored predictors by their average ring position
/// in the failure profiles (closest to the failure first). This follows
/// the paper's locality observation (§1.2): information recorded closer to
/// the failure is more likely to be its cause, so among statistically
/// indistinguishable predictors the nearest one is reported first.
fn proximity_tiebreak<E: Ord + Clone>(
    ranked: &mut [RankedEvent<E>],
    position_of: impl Fn(&E) -> Option<(u64, u64)>,
) {
    let avg = |e: &E| -> f64 {
        match position_of(e) {
            Some((sum, n)) if n > 0 => sum as f64 / n as f64,
            _ => f64::INFINITY,
        }
    };
    ranked.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| avg(&a.event).total_cmp(&avg(&b.event)))
            .then_with(|| a.event.cmp(&b.event))
    });
}

/// The result of an LCRA diagnosis.
#[derive(Debug, Clone)]
pub struct LcraDiagnosis {
    /// Scored coherence-event predictors (presence and absence), best
    /// first.
    pub ranked: Vec<RankedEvent<CoherenceEvent>>,
    /// Run accounting.
    pub stats: DiagnosisStats,
}

impl LcraDiagnosis {
    /// 1-based rank of the first predictor at the given source location
    /// (any state, either polarity).
    ///
    /// Rank numbers are deterministic for identical profile sets: the
    /// ranking orders by harmonic score (descending), then by average
    /// ring position in the failure profiles (closest to the failure
    /// first, unseen events last), then by event order
    /// (`CoherenceEvent`'s `Ord`: location, state, access kind), then
    /// `Present` before `Absent`. See [`LcraDiagnosis::tie_break_order`].
    pub fn rank_of_loc(&self, loc: SourceLoc) -> Option<usize> {
        RankingModel::rank_of(&self.ranked, |r| r.event.loc == loc)
    }

    /// 1-based rank of a specific (location, state) predictor, matching
    /// either access kind and either polarity.
    ///
    /// Deterministic under the same tie-breaking order as
    /// [`LcraDiagnosis::rank_of_loc`]; replaying the same diagnosis (same
    /// workloads, seeds and configuration) reports the same rank.
    pub fn rank_of_event(
        &self,
        loc: SourceLoc,
        state: stm_machine::events::CoherenceState,
    ) -> Option<usize> {
        RankingModel::rank_of(&self.ranked, |r| {
            r.event.loc == loc && r.event.state == state
        })
    }

    /// The tie-breaking order behind every rank number this diagnosis
    /// reports, most significant first. Stable sorts preserve each level,
    /// so ranks are reproducible across runs given identical profiles.
    pub const fn tie_break_order() -> &'static [&'static str] {
        &[
            "harmonic score, descending",
            "average failure-profile ring position, ascending (unseen last)",
            "event order (location, state, access kind)",
            "polarity (Present before Absent)",
        ]
    }

    /// The best predictor.
    pub fn top(&self) -> Option<&RankedEvent<CoherenceEvent>> {
        self.ranked.first()
    }

    /// `true` when the top predictor is an absence predictor — the
    /// space-saving-configuration signature of read-too-early order
    /// violations (§4.2.2).
    pub fn top_is_absence(&self) -> bool {
        self.top()
            .map(|t| t.polarity == Polarity::Absent)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DiagnosisSession, ProfileKind};
    use crate::runner::{Runner, Workload};
    use crate::transform::InstrumentOptions;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ids::LogSiteId;
    use stm_machine::ir::{BinOp, Program};

    /// The session-API equivalent of the retired `lbra()` shim call the
    /// tests used to make.
    fn lbra_session(
        runner: &Runner,
        failing: &[Workload],
        passing: &[Workload],
        spec: &FailureSpec,
        config: &Quotas,
    ) -> LbraDiagnosis {
        DiagnosisSession::from_runner(runner)
            .failure(spec.clone())
            .failing(failing.to_vec())
            .passing(passing.to_vec())
            .profile_kind(ProfileKind::Lbr)
            .quotas(*config)
            .collect()
            .expect("witness-mode collection succeeds")
            .lbra()
    }

    /// A sanity-check program: the error fires iff input 0 is negative,
    /// after passing through a couple of unrelated branches.
    fn guarded_program() -> (Program, LogSiteId, BranchId) {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let site;
        {
            let mut f = pb.build_function(main, "m.c");
            let mid_t = f.new_block();
            let mid_j = f.new_block();
            let err = f.new_block();
            let ok = f.new_block();
            // Unrelated branch on input 1.
            let y = f.read_input(1);
            let cy = f.bin(BinOp::Gt, y, 50);
            f.at(5);
            f.br(cy, mid_t, mid_j);
            f.set_block(mid_t);
            f.nop();
            f.jmp(mid_j);
            f.set_block(mid_j);
            // Root-cause branch on input 0.
            let x = f.read_input(0);
            let neg = f.bin(BinOp::Lt, x, 0);
            f.at(10);
            f.br(neg, err, ok);
            f.set_block(err);
            f.at(11);
            site = f.log_error("x must be non-negative");
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.output(x);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        // The root-cause branch is the one at m.c:10 (the second branch).
        let root = p
            .branches
            .iter()
            .find(|b| b.loc.line == 10)
            .map(|b| b.id)
            .unwrap();
        (p, site, root)
    }

    #[test]
    fn lbra_ranks_root_cause_branch_first() {
        let (p, site, root) = guarded_program();
        let runner =
            Runner::instrumented(&p, &InstrumentOptions::lbra_reactive(vec![site], vec![]));
        let failing: Vec<Workload> = (0..10)
            .map(|i| Workload::new(vec![-1 - i as i64, (i as i64 * 13) % 100]))
            .collect();
        let passing: Vec<Workload> = (0..10)
            .map(|i| Workload::new(vec![1 + i as i64, (i as i64 * 29) % 100]))
            .collect();
        let spec = FailureSpec::ErrorLogAt(site);
        let d = lbra_session(
            &runner,
            &failing,
            &passing,
            &spec,
            &DiagnosisConfig::default(),
        );
        assert_eq!(d.stats.failure_runs_used, 10);
        assert_eq!(d.stats.success_runs_used, 10);
        // The top predictor is (root branch, true-edge): precision and
        // recall are both 1.
        let top = d.top().unwrap();
        assert_eq!(top.event.branch, root);
        assert!(top.event.outcome);
        assert_eq!(top.score, 1.0);
        assert_eq!(d.rank_of_branch(root), Some(1));
    }

    #[test]
    fn lbra_excludes_runs_that_miss_the_site() {
        let (p, site, _) = guarded_program();
        let runner =
            Runner::instrumented(&p, &InstrumentOptions::lbra_reactive(vec![site], vec![]));
        // Every "failing" workload actually succeeds: no failure profiles.
        let failing = vec![Workload::new(vec![5, 5])];
        let passing = vec![Workload::new(vec![6, 6])];
        let spec = FailureSpec::ErrorLogAt(site);
        let cfg = DiagnosisConfig {
            failure_profiles: 3,
            success_profiles: 3,
            max_runs: 20,
        };
        let d = lbra_session(&runner, &failing, &passing, &spec, &cfg);
        assert_eq!(d.stats.failure_runs_used, 0);
        assert_eq!(d.stats.success_runs_used, 3);
    }

    #[test]
    fn diagnosis_ranks_are_deterministic_across_replays() {
        let (p, site, _) = guarded_program();
        let runner =
            Runner::instrumented(&p, &InstrumentOptions::lbra_reactive(vec![site], vec![]));
        let failing: Vec<Workload> = (0..6)
            .map(|i| Workload::new(vec![-1 - i as i64, (i as i64 * 13) % 100]))
            .collect();
        let passing: Vec<Workload> = (0..6)
            .map(|i| Workload::new(vec![1 + i as i64, (i as i64 * 29) % 100]))
            .collect();
        let spec = FailureSpec::ErrorLogAt(site);
        let cfg = DiagnosisConfig {
            failure_profiles: 6,
            success_profiles: 6,
            max_runs: 100,
        };
        let first = lbra_session(&runner, &failing, &passing, &spec, &cfg);
        for _ in 0..3 {
            let again = lbra_session(&runner, &failing, &passing, &spec, &cfg);
            assert_eq!(again.ranked, first.ranked, "rank order must not drift");
        }
    }

    #[test]
    fn diagnosis_witnesses_name_workload_and_seed() {
        let (p, site, root) = guarded_program();
        let runner =
            Runner::instrumented(&p, &InstrumentOptions::lbra_reactive(vec![site], vec![]));
        let failing = vec![Workload::new(vec![-5, 3]).with_seed(42)];
        let passing = vec![Workload::new(vec![5, 3]).with_seed(7)];
        let spec = FailureSpec::ErrorLogAt(site);
        let cfg = DiagnosisConfig {
            failure_profiles: 2,
            success_profiles: 1,
            max_runs: 20,
        };
        let d = lbra_session(&runner, &failing, &passing, &spec, &cfg);
        let top = d
            .ranked
            .iter()
            .find(|r| r.event.branch == root)
            .expect("root branch ranked");
        assert_eq!(top.failure_witnesses.len(), 2);
        assert!(
            top.failure_witnesses[0].starts_with("fail:w0:seed42"),
            "{:?}",
            top.failure_witnesses
        );
        // The second profile comes from the seed-perturbed second lap.
        assert!(top.failure_witnesses[1].starts_with("fail:w0:seed"));
        assert_ne!(top.failure_witnesses[0], top.failure_witnesses[1]);
    }

    #[test]
    fn scan_mode_session_finds_failing_workloads() {
        let (p, site, _) = guarded_program();
        let runner = Runner::instrumented(&p, &InstrumentOptions::lbrlog());
        let spec = FailureSpec::ErrorLogAt(site);
        let found = DiagnosisSession::from_runner(&runner)
            .failure(spec)
            .workloads(vec![Workload::new(vec![-1, 0])])
            .seeds(0..10)
            .failure_profiles(3)
            .success_profiles(0)
            .collect()
            .expect("scan-mode collection succeeds")
            .failing_workloads();
        assert_eq!(found.len(), 3);
        assert_eq!(found[0].seed, 0);
    }
}
