//! # stm-core — LBR/LCR-based production-run failure diagnosis
//!
//! The primary contribution of the ASPLOS'14 paper, on top of
//! `stm-machine` (the execution substrate) and `stm-hardware` (the
//! monitoring unit):
//!
//! * [`transform`] — the §5.1 source-to-source instrumentation: toggling
//!   wrappers, enable-at-main, profile-before-failure-logging, fault
//!   handler registration, and the Fig. 8 success-site schemes
//!   (proactive/reactive);
//! * [`logging`] — **LBRLOG/LCRLOG**: enhanced failure logs carrying the
//!   decoded hardware short-term memory, plus the logging-latency cost
//!   model of §5.3;
//! * [`ranking`] — the §5.2 statistical model: harmonic mean of prediction
//!   precision and recall, with absence predictors;
//! * [`diagnose`] — **LBRA/LCRA**: automatic root-cause localization from
//!   10 failing + 10 passing runs;
//! * [`analysis`] — the Table 5 static useful-branch analysis;
//! * [`profile`] / [`runner`] — snapshot decoding and run orchestration.
//!
//! ## End-to-end example
//!
//! ```
//! use stm_core::prelude::*;
//! use stm_machine::builder::ProgramBuilder;
//! use stm_machine::ir::BinOp;
//!
//! // A program that logs an error whenever input 0 is negative.
//! let mut pb = ProgramBuilder::new("demo");
//! let main = pb.declare_function("main");
//! let mut f = pb.build_function(main, "demo.c");
//! let err = f.new_block();
//! let ok = f.new_block();
//! let x = f.read_input(0);
//! let neg = f.bin(BinOp::Lt, x, 0);
//! f.br(neg, err, ok);
//! f.set_block(err);
//! let site = f.log_error("negative input");
//! f.exit(1);
//! f.ret(None);
//! f.set_block(ok);
//! f.output(x);
//! f.ret(None);
//! f.finish();
//! let program = pb.finish(main);
//!
//! // Deploy with LBRA reactive instrumentation and diagnose. The
//! // session collects witness profiles (in parallel when `threads > 1`
//! // — results are bit-identical either way) and hands them to the
//! // ranker.
//! let diagnosis = DiagnosisSession::new(&program)
//!     .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
//!     .failure(FailureSpec::ErrorLogAt(site))
//!     .failing(vec![Workload::new(vec![-1])])
//!     .passing(vec![Workload::new(vec![1])])
//!     .collect()
//!     .expect("collection succeeds")
//!     .lbra();
//! let top = diagnosis.top().expect("a top predictor");
//! assert_eq!(top.score, 1.0); // the guard branch perfectly predicts failure
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod converge;
pub mod diagnose;
pub mod engine;
pub mod logging;
pub mod profile;
pub mod ranking;
pub mod runner;
pub mod transform;

/// Convenient re-exports for downstream users.
///
/// This is the blessed public surface: the [`DiagnosisSession`] engine,
/// its [`SessionConfig`]/[`Quotas`] configuration, and the whole
/// [`converge`] module (incremental ranking, stability policies, the
/// snapshot-level [`SnapshotIngest`](converge::SnapshotIngest) entry
/// point). The PR-3 era free functions (`lbra`, `lcra`,
/// `find_workloads`) are gone; every caller goes through a session or a
/// snapshot ingest.
pub mod prelude {
    pub use crate::analysis::{useful_branch_ratio, UsefulBranchReport};
    pub use crate::converge::*;
    pub use crate::diagnose::{
        DiagnosisConfig, DiagnosisStats, LbraDiagnosis, LcraDiagnosis, Quotas,
    };
    pub use crate::engine::{
        CollectedProfiles, CollectedRun, DiagnosisSession, ProfileKind, SessionConfig, SessionError,
    };
    pub use crate::logging::{
        failure_log, render_failure_log, run_and_log, FailureLog, LogPayload,
    };
    pub use crate::profile::{BranchOutcome, CoherenceEvent};
    pub use crate::ranking::{Polarity, RankedEvent, RankingModel};
    pub use crate::runner::{classify, FailureSpec, RunClass, Runner, Workload};
    pub use crate::transform::{instrument, InstrumentOptions, SuccessSites};
}

pub use prelude::*;
