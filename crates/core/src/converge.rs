//! Online diagnosis convergence: incremental ranking, rank-stability
//! tracking, and the early-stop policy (ROADMAP item 2's streaming seam).
//!
//! The batch [`RankingModel`](crate::ranking::RankingModel) re-scores
//! every predictor against every profile (`O(P × E)`) and only after the
//! whole collection finishes. This module maintains the same statistics
//! *incrementally*: [`IncrementalRanking`] folds one witness profile in
//! at a time (`O(|profile|)` count updates), so the engine can re-rank
//! after every consumed job and an operator can watch the diagnosis
//! converge instead of waiting for the quota.
//!
//! Three layers:
//!
//! * [`IncrementalRanking`] — per-event match counts plus a shadow
//!   [`RankingModel`](crate::ranking::RankingModel), guaranteeing the
//!   final [`IncrementalRanking::finish`] ranking is *bit-identical* to
//!   the batch `rank()` / `rank_with_absence()` over the same profiles
//!   (pinned in `tests/engine_determinism.rs`);
//! * [`ConvergenceTracker`] — per-witness polling: top-k rank churn
//!   (Kendall-style discordant-pair count), the top-1 stability streak,
//!   and per-predictor score trajectories;
//! * [`StabilityPolicy`] — when the engine may stop collecting early:
//!   top-1 unchanged for `stable_for` consecutive witnesses, with floor
//!   counts on both profile classes so a failure-only prefix can never
//!   declare victory.
//!
//! The snapshot-level ingest entry point ([`SnapshotIngest`]) lives here
//! too: owned, publication-free per-diagnosis state that decodes ring
//! snapshots exactly as the batch extractors do — the seam the fleet
//! daemon feeds externally-produced snapshots through, one per shard.
//! The engine-facing [`ConvergenceMonitor`] wraps it and owns the single
//! call sites for the `engine.rank_churn` / `engine.top1_stable_for` /
//! `engine.witnesses_ingested` gauges and the live `/diagnosis` status
//! document.

use crate::diagnose::{failure_profile, success_profile};
use crate::profile::{lbr_events, lcr_events, BranchOutcome, CoherenceEvent};
use crate::ranking::{Polarity, RankedEvent, RankingModel};
use crate::runner::FailureSpec;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Display;
use stm_machine::layout::Layout;
use stm_machine::report::{ProfileData, RunReport};
use stm_telemetry::json::Json;

/// How many leading predictors the churn metric and the live document
/// track. Ten mirrors the paper's "top 10" reporting cut-off.
pub const TOP_K: usize = 10;

/// When an incremental diagnosis may stop collecting early.
///
/// The default asks for a top-1 predictor that has survived five
/// consecutive witness ingests unchanged, with at least three profiles of
/// each class seen — precision is meaningless before both populations
/// exist, and witness-mode sessions ingest all failures before the first
/// success, so the floors keep a failure-only prefix from stopping the
/// session before the success phase begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityPolicy {
    /// Consecutive witnesses the top-1 predictor must survive unchanged.
    pub stable_for: usize,
    /// Minimum failure profiles ingested before stopping is allowed.
    pub min_failures: usize,
    /// Minimum success profiles ingested before stopping is allowed.
    pub min_successes: usize,
    /// Whether the policy may stop the session at all. `false` keeps the
    /// full observability surface (gauges, trajectories, verdict) while
    /// guaranteeing the session runs to its quota.
    pub stop: bool,
}

impl Default for StabilityPolicy {
    fn default() -> Self {
        StabilityPolicy {
            stable_for: 5,
            min_failures: 3,
            min_successes: 3,
            stop: true,
        }
    }
}

impl StabilityPolicy {
    /// Monitor-only policy: track convergence but never stop early. The
    /// verdict thresholds (`stable_for` and the class floors) keep their
    /// defaults so a full-quota run still reports `stable` or `stalled`.
    pub fn never() -> StabilityPolicy {
        StabilityPolicy {
            stop: false,
            ..StabilityPolicy::default()
        }
    }

    /// Sets the required top-1 stability streak.
    pub fn stable_for(mut self, n: usize) -> Self {
        self.stable_for = n;
        self
    }

    /// Sets the failure-profile floor.
    pub fn min_failures(mut self, n: usize) -> Self {
        self.min_failures = n;
        self
    }

    /// Sets the success-profile floor.
    pub fn min_successes(mut self, n: usize) -> Self {
        self.min_successes = n;
        self
    }

    /// The policy as a JSON object (for the `/diagnosis` document).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stable_for", Json::from(self.stable_for)),
            ("min_failures", Json::from(self.min_failures)),
            ("min_successes", Json::from(self.min_successes)),
            ("stop", Json::from(self.stop)),
        ])
    }
}

/// Per-event presence counts: in how many failure / success profiles the
/// event appeared.
#[derive(Debug, Clone, Copy, Default)]
struct EventCounts {
    fail: usize,
    succ: usize,
}

/// A predictor's live score at some point of the ingest stream — the
/// count-derived subset of [`RankedEvent`], cheap enough to recompute on
/// every witness.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPredictor<E> {
    /// The event.
    pub event: E,
    /// Presence or absence predictor.
    pub polarity: Polarity,
    /// Prediction precision `|F∧e| / |e|`.
    pub precision: f64,
    /// Prediction recall `|F∧e| / |F|`.
    pub recall: f64,
    /// Harmonic mean of precision and recall — the ranking key.
    pub score: f64,
    /// Failure profiles matching the predictor.
    pub failure_matches: usize,
    /// Success profiles matching the predictor.
    pub success_matches: usize,
}

/// Precision / recall / harmonic score from integer match counts — the
/// exact float expressions of `RankingModel::score_one`, so a score
/// computed from counts is bitwise equal to the batch score of the same
/// profile set.
fn score_counts(f: usize, s: usize, total_f: usize) -> (f64, f64, f64) {
    let precision = if f + s > 0 {
        f as f64 / (f + s) as f64
    } else {
        0.0
    };
    let recall = if total_f > 0 {
        f as f64 / total_f as f64
    } else {
        0.0
    };
    let score = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, score)
}

/// The §5.2 ranking statistics, maintained one profile at a time.
///
/// Each ingested profile updates per-event presence counts in
/// `O(|profile| log U)`; a live ranking over the event universe `U`
/// ([`IncrementalRanking::scores`]) costs `O(U log U)` — independent of
/// how many profiles have accumulated, where the batch model pays
/// `O(P × U)` per re-score. A shadow [`RankingModel`] keeps the full
/// profiles so [`IncrementalRanking::finish`] returns the batch ranking
/// verbatim (witness id lists included), bit-identical to calling
/// `rank()` / `rank_with_absence()` on the same profile stream.
#[derive(Debug, Clone)]
pub struct IncrementalRanking<E: Ord + Clone> {
    model: RankingModel<E>,
    counts: BTreeMap<E, EventCounts>,
    total_fail: usize,
    total_succ: usize,
    absence: bool,
}

impl<E: Ord + Clone> IncrementalRanking<E> {
    /// An empty presence-only ranking (the LBRA shape).
    pub fn new() -> Self {
        IncrementalRanking {
            model: RankingModel::new(),
            counts: BTreeMap::new(),
            total_fail: 0,
            total_succ: 0,
            absence: false,
        }
    }

    /// An empty ranking that also scores absence predictors (the LCRA
    /// shape, §4.2.2).
    pub fn with_absence() -> Self {
        IncrementalRanking {
            absence: true,
            ..IncrementalRanking::new()
        }
    }

    /// Whether absence predictors are scored alongside presence ones.
    pub fn scores_absence(&self) -> bool {
        self.absence
    }

    /// Failure profiles ingested so far.
    pub fn failure_count(&self) -> usize {
        self.total_fail
    }

    /// Success profiles ingested so far.
    pub fn success_count(&self) -> usize {
        self.total_succ
    }

    /// Folds one witness profile into the statistics.
    pub fn ingest(&mut self, is_failure: bool, id: impl Into<String>, events: BTreeSet<E>) {
        for e in &events {
            let slot = self.counts.entry(e.clone()).or_default();
            if is_failure {
                slot.fail += 1;
            } else {
                slot.succ += 1;
            }
        }
        if is_failure {
            self.total_fail += 1;
        } else {
            self.total_succ += 1;
        }
        self.model.add_profile_named(is_failure, id, events);
    }

    fn score_key(&self, event: &E, polarity: Polarity) -> ScoredPredictor<E> {
        let c = self.counts.get(event).copied().unwrap_or_default();
        let (f, s) = match polarity {
            Polarity::Present => (c.fail, c.succ),
            Polarity::Absent => (self.total_fail - c.fail, self.total_succ - c.succ),
        };
        let (precision, recall, score) = score_counts(f, s, self.total_fail);
        ScoredPredictor {
            event: event.clone(),
            polarity,
            precision,
            recall,
            score,
            failure_matches: f,
            success_matches: s,
        }
    }

    /// The current ranking, best first, under the batch tie-break order
    /// (score descending, event ascending, `Present` before `Absent`).
    /// Scores are bitwise equal to what the batch model would report for
    /// the same prefix of profiles.
    #[must_use = "scoring computes a fresh ranking; use the returned list"]
    pub fn scores(&self) -> Vec<ScoredPredictor<E>> {
        let mut out: Vec<ScoredPredictor<E>> = Vec::new();
        for e in self.counts.keys() {
            out.push(self.score_key(e, Polarity::Present));
            if self.absence {
                out.push(self.score_key(e, Polarity::Absent));
            }
        }
        out.sort_by(|a, b| {
            b.score.total_cmp(&a.score).then_with(|| {
                a.event
                    .cmp(&b.event)
                    .then_with(|| a.polarity.cmp(&b.polarity))
            })
        });
        out
    }

    /// The final batch ranking over everything ingested — delegated to
    /// the shadow [`RankingModel`], so the result (witness lists and all)
    /// is bit-identical to a batch `rank()` / `rank_with_absence()` over
    /// the same profiles.
    #[must_use = "finishing consumes the ranking; use the returned list"]
    pub fn finish(self) -> Vec<RankedEvent<E>> {
        if self.absence {
            self.model.rank_with_absence()
        } else {
            self.model.rank()
        }
    }
}

impl<E: Ord + Clone> Default for IncrementalRanking<E> {
    fn default() -> Self {
        IncrementalRanking::new()
    }
}

/// Kendall-style displacement between two top-k rankings: the number of
/// predictor pairs whose relative order inverted. A key absent from one
/// ranking sits at virtual position `k` (below everything ranked), so an
/// entry dropping out of the top-k counts against every key it used to
/// precede.
pub fn rank_churn<K: Ord>(prev: &[K], cur: &[K]) -> u64 {
    let pos = |list: &[K], key: &K| -> usize {
        list.iter()
            .position(|k| k == key)
            .unwrap_or_else(|| list.len().max(prev.len().max(cur.len())))
    };
    let mut union: Vec<&K> = prev.iter().chain(cur.iter()).collect();
    union.sort();
    union.dedup();
    let mut churn = 0u64;
    for (i, a) in union.iter().enumerate() {
        for b in union.iter().skip(i + 1) {
            let before = pos(prev, a) as i64 - pos(prev, b) as i64;
            let after = pos(cur, a) as i64 - pos(cur, b) as i64;
            if before.signum() * after.signum() < 0 {
                churn += 1;
            }
        }
    }
    churn
}

/// One per-witness observation of the convergence state.
#[derive(Debug, Clone, PartialEq)]
pub struct PollPoint {
    /// Witnesses ingested when the poll was taken (1-based).
    pub witness: usize,
    /// Top-k discordant-pair churn against the previous poll.
    pub churn: u64,
    /// Consecutive witnesses the current top-1 has survived.
    pub top1_streak: usize,
}

/// A named predictor's score history: `(witness count, score)` samples,
/// recorded whenever the predictor sat in the top-k.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Display form of the predictor (`!` prefix = absence).
    pub predictor: String,
    /// `(witnesses ingested, harmonic score)` samples.
    pub points: Vec<(usize, f64)>,
}

/// Live convergence state over an [`IncrementalRanking`]: churn, streak,
/// and trajectories, polled once per ingested witness.
#[derive(Debug, Clone)]
pub struct ConvergenceTracker<E: Ord + Clone + Display> {
    ranking: IncrementalRanking<E>,
    policy: StabilityPolicy,
    prev_top: Vec<(E, Polarity)>,
    churn: u64,
    top1_streak: usize,
    history: Vec<PollPoint>,
    trajectories: BTreeMap<String, Vec<(usize, f64)>>,
    top: Vec<ScoredPredictor<E>>,
}

impl<E: Ord + Clone + Display> ConvergenceTracker<E> {
    /// A tracker over an empty ranking.
    pub fn new(ranking: IncrementalRanking<E>, policy: StabilityPolicy) -> Self {
        ConvergenceTracker {
            ranking,
            policy,
            prev_top: Vec::new(),
            churn: 0,
            top1_streak: 0,
            history: Vec::new(),
            trajectories: BTreeMap::new(),
            top: Vec::new(),
        }
    }

    /// The policy the tracker evaluates.
    pub fn policy(&self) -> &StabilityPolicy {
        &self.policy
    }

    /// Witnesses ingested so far (both classes).
    pub fn witnesses(&self) -> usize {
        self.ranking.failure_count() + self.ranking.success_count()
    }

    /// Failure profiles ingested so far.
    pub fn failures(&self) -> usize {
        self.ranking.failure_count()
    }

    /// Success profiles ingested so far.
    pub fn successes(&self) -> usize {
        self.ranking.success_count()
    }

    /// Top-k churn measured at the latest poll.
    pub fn churn(&self) -> u64 {
        self.churn
    }

    /// Consecutive witnesses the current top-1 predictor has survived.
    pub fn top1_streak(&self) -> usize {
        self.top1_streak
    }

    /// The latest top-k ranking.
    pub fn top(&self) -> &[ScoredPredictor<E>] {
        &self.top
    }

    /// The full live ranking over every observed event — the causal-chain
    /// reconstructor's support source (link candidates deep in a ring
    /// window rarely make the top-k).
    #[must_use = "scoring computes a fresh ranking; use the returned list"]
    pub fn scores(&self) -> Vec<ScoredPredictor<E>> {
        self.ranking.scores()
    }

    /// Per-witness poll history.
    pub fn history(&self) -> &[PollPoint] {
        &self.history
    }

    /// Display form of a predictor key (`!` prefix marks absence).
    fn label(event: &E, polarity: Polarity) -> String {
        match polarity {
            Polarity::Present => format!("{event}"),
            Polarity::Absent => format!("!{event}"),
        }
    }

    /// Ingests one witness profile and re-polls the convergence state.
    pub fn observe(&mut self, is_failure: bool, id: impl Into<String>, events: BTreeSet<E>) {
        self.ranking.ingest(is_failure, id, events);
        let scored = self.ranking.scores();
        let top: Vec<ScoredPredictor<E>> = scored.into_iter().take(TOP_K).collect();
        let keys: Vec<(E, Polarity)> = top.iter().map(|p| (p.event.clone(), p.polarity)).collect();
        self.churn = rank_churn(&self.prev_top, &keys);
        let top1 = keys.first();
        self.top1_streak = match (self.prev_top.first(), top1) {
            (Some(prev), Some(cur)) if prev == cur => self.top1_streak + 1,
            (_, Some(_)) => 1,
            (_, None) => 0,
        };
        let witness = self.witnesses();
        for p in &top {
            self.trajectories
                .entry(Self::label(&p.event, p.polarity))
                .or_default()
                .push((witness, p.score));
        }
        self.history.push(PollPoint {
            witness,
            churn: self.churn,
            top1_streak: self.top1_streak,
        });
        self.prev_top = keys;
        self.top = top;
    }

    /// Whether the policy's stability conditions hold right now
    /// (regardless of whether the policy is allowed to stop).
    pub fn is_stable(&self) -> bool {
        self.top1_streak >= self.policy.stable_for
            && self.failures() >= self.policy.min_failures
            && self.successes() >= self.policy.min_successes
    }

    /// Whether the engine should stop collecting: the stability
    /// conditions hold *and* the policy is armed.
    pub fn should_stop(&self) -> bool {
        self.policy.stop && self.is_stable()
    }

    /// Finalises the tracker: the batch-identical final ranking plus the
    /// accumulated convergence evidence.
    #[must_use = "finishing consumes the tracker; use the returned parts"]
    pub fn finish(self) -> (Vec<RankedEvent<E>>, ConvergenceEvidence) {
        let evidence = ConvergenceEvidence {
            witnesses: self.witnesses(),
            failures: self.failures(),
            successes: self.successes(),
            churn: self.churn,
            top1_streak: self.top1_streak,
            stable: self.is_stable(),
            top1: self.top.first().map(|p| Self::label(&p.event, p.polarity)),
            top: self
                .top
                .iter()
                .map(|p| PredictorSummary {
                    predictor: Self::label(&p.event, p.polarity),
                    precision: p.precision,
                    recall: p.recall,
                    score: p.score,
                    failure_matches: p.failure_matches,
                    success_matches: p.success_matches,
                })
                .collect(),
            trajectories: self
                .trajectories
                .into_iter()
                .map(|(predictor, points)| Trajectory { predictor, points })
                .collect(),
            history: self.history,
        };
        (self.ranking.finish(), evidence)
    }

    /// The tracker's live state as the `/diagnosis` JSON document.
    pub fn to_json(&self, verdict: &str) -> Json {
        let top = self
            .top
            .iter()
            .map(|p| {
                Json::obj([
                    ("predictor", Json::from(Self::label(&p.event, p.polarity))),
                    ("precision", Json::from(p.precision)),
                    ("recall", Json::from(p.recall)),
                    ("score", Json::from(p.score)),
                    ("failure_matches", Json::from(p.failure_matches)),
                    ("success_matches", Json::from(p.success_matches)),
                ])
            })
            .collect();
        let trajectories = self
            .trajectories
            .iter()
            .map(|(label, points)| {
                let pts = points
                    .iter()
                    .map(|(w, s)| Json::Arr(vec![Json::from(*w), Json::from(*s)]))
                    .collect();
                (label.clone(), Json::Arr(pts))
            })
            .collect();
        Json::obj([
            ("verdict", Json::from(verdict)),
            ("witnesses_ingested", Json::from(self.witnesses())),
            ("failures", Json::from(self.failures())),
            ("successes", Json::from(self.successes())),
            ("rank_churn", Json::from(self.churn)),
            ("top1_stable_for", Json::from(self.top1_streak)),
            ("policy", self.policy.to_json()),
            ("top", Json::Arr(top)),
            ("trajectories", Json::Obj(trajectories)),
        ])
    }
}

/// How a monitored session ended, convergence-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The stability policy fired and stopped collection before the
    /// quota.
    ConvergedEarly,
    /// The session ran to its quota and the top-1 was stable at the end.
    Stable,
    /// The session ended with the top-1 still churning — more witnesses
    /// (or a better signal) are needed.
    Stalled,
}

impl Verdict {
    /// The verdict's wire form (`/diagnosis`, events, artifacts).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::ConvergedEarly => "converged",
            Verdict::Stable => "stable",
            Verdict::Stalled => "stalled",
        }
    }
}

impl Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One final top-k predictor, in display form.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorSummary {
    /// Display form of the predictor (`!` prefix = absence).
    pub predictor: String,
    /// Prediction precision.
    pub precision: f64,
    /// Prediction recall.
    pub recall: f64,
    /// Harmonic score.
    pub score: f64,
    /// Failure profiles matching.
    pub failure_matches: usize,
    /// Success profiles matching.
    pub success_matches: usize,
}

/// The type-erased convergence evidence a tracker accumulated.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceEvidence {
    /// Witnesses ingested (both classes).
    pub witnesses: usize,
    /// Failure profiles ingested.
    pub failures: usize,
    /// Success profiles ingested.
    pub successes: usize,
    /// Churn at the last poll.
    pub churn: u64,
    /// Final top-1 stability streak.
    pub top1_streak: usize,
    /// Whether the policy's stability conditions held at the end.
    pub stable: bool,
    /// Display form of the final top-1 predictor.
    pub top1: Option<String>,
    /// The final top-k, summarised.
    pub top: Vec<PredictorSummary>,
    /// Score history of every predictor that visited the top-k.
    pub trajectories: Vec<Trajectory>,
    /// The per-witness poll history.
    pub history: Vec<PollPoint>,
}

/// The final ranking a monitored session produced, typed by ring kind.
/// Bit-identical to the batch model over the session's collected
/// profiles.
#[derive(Debug, Clone, PartialEq)]
pub enum FinalRanking {
    /// LBRA: presence predictors over branch outcomes.
    Lbr(Vec<RankedEvent<BranchOutcome>>),
    /// LCRA: presence and absence predictors over coherence events.
    Lcr(Vec<RankedEvent<CoherenceEvent>>),
}

impl FinalRanking {
    /// Number of ranked predictors.
    pub fn len(&self) -> usize {
        match self {
            FinalRanking::Lbr(r) => r.len(),
            FinalRanking::Lcr(r) => r.len(),
        }
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a monitored [`DiagnosisSession`](crate::engine::DiagnosisSession)
/// reports about its convergence, alongside the collected profiles.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// How the session ended.
    pub verdict: Verdict,
    /// The policy that was in force.
    pub policy: StabilityPolicy,
    /// The accumulated convergence evidence.
    pub evidence: ConvergenceEvidence,
    /// The final ranking, bit-identical to the batch model.
    pub final_ranking: FinalRanking,
}

impl ConvergenceReport {
    /// The report as a JSON object (the `CONVERGENCE_<id>.json` shape,
    /// minus the harness-computed rank curve).
    pub fn to_json(&self) -> Json {
        let e = &self.evidence;
        let top = e
            .top
            .iter()
            .map(|p| {
                Json::obj([
                    ("predictor", Json::from(p.predictor.clone())),
                    ("precision", Json::from(p.precision)),
                    ("recall", Json::from(p.recall)),
                    ("score", Json::from(p.score)),
                ])
            })
            .collect();
        let trajectories = e
            .trajectories
            .iter()
            .map(|t| {
                let pts = t
                    .points
                    .iter()
                    .map(|(w, s)| Json::Arr(vec![Json::from(*w), Json::from(*s)]))
                    .collect();
                (t.predictor.clone(), Json::Arr(pts))
            })
            .collect();
        Json::obj([
            ("verdict", Json::from(self.verdict.as_str())),
            ("witnesses_ingested", Json::from(e.witnesses)),
            ("failures", Json::from(e.failures)),
            ("successes", Json::from(e.successes)),
            ("rank_churn", Json::from(e.churn)),
            ("top1_stable_for", Json::from(e.top1_streak)),
            ("policy", self.policy.to_json()),
            ("top", Json::Arr(top)),
            ("trajectories", Json::Obj(trajectories)),
        ])
    }
}

/// The snapshot-level ingest entry point, factored out of the session
/// run loop so long-lived consumers (the fleet daemon's per-shard state)
/// can feed *externally-produced* ring snapshots instead of runs the
/// engine executes itself.
///
/// One ingest owns everything a diagnosis needs — the program [`Layout`]
/// (for snapshot decoding), the [`FailureSpec`] (for profile selection)
/// and the ring-appropriate [`ConvergenceTracker`] — and publishes
/// nothing: no gauges, no status documents, no structured events. The
/// engine-facing [`ConvergenceMonitor`] wraps it and adds the global
/// observability surface; a fleet shard uses it directly and publishes
/// per-shard series instead.
///
/// **Determinism contract** (pinned in `tests/fleet_determinism.rs`):
/// observing the same `(is_failure, witness, report)` sequence always
/// produces the same stop decision at the same snapshot, and
/// [`SnapshotIngest::finish`] returns a final ranking bit-identical to
/// the batch [`RankingModel`](crate::ranking::RankingModel) over the
/// ingested snapshots — the shadow-model guarantee of
/// [`IncrementalRanking::finish`]. Snapshots whose profile is missing or
/// of the wrong ring are skipped exactly as the batch extractors skip
/// them.
#[derive(Debug)]
pub struct SnapshotIngest {
    layout: Layout,
    spec: FailureSpec,
    policy: StabilityPolicy,
    inner: Option<MonitorInner>,
    fired: bool,
    chain_traces: Vec<(String, ProfileData)>,
}

/// How many failing-witness ring snapshots an ingest retains verbatim for
/// live causal-chain reconstruction. The first `CHAIN_TRACE_CAP` kept
/// failure snapshots are retained in consumption order, so the retained
/// set is deterministic for a deterministic stream.
pub const CHAIN_TRACE_CAP: usize = 8;

#[derive(Debug)]
enum MonitorInner {
    Lbr(ConvergenceTracker<BranchOutcome>),
    Lcr(ConvergenceTracker<CoherenceEvent>),
}

/// The live scored ranking of an ingest, typed by ring kind — the
/// prefix-accurate counterpart of [`FinalRanking`] for consumers (the
/// causal-chain reconstructor) that need support scores *before* the
/// ingest finishes.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveRanking {
    /// LBRA: presence predictors over branch outcomes.
    Lbr(Vec<ScoredPredictor<BranchOutcome>>),
    /// LCRA: presence and absence predictors over coherence events.
    Lcr(Vec<ScoredPredictor<CoherenceEvent>>),
}

impl SnapshotIngest {
    /// An empty ingest. The ring kind is inferred from the first
    /// profile-bearing snapshot (so unpinned witness streams work).
    pub fn new(layout: Layout, spec: FailureSpec, policy: StabilityPolicy) -> Self {
        SnapshotIngest {
            layout,
            spec,
            policy,
            inner: None,
            fired: false,
            chain_traces: Vec::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &StabilityPolicy {
        &self.policy
    }

    /// Observes one snapshot-bearing run. Returns `true` when the run
    /// carried a usable profile and was ingested.
    pub fn observe(&mut self, is_failure: bool, witness: &str, report: &RunReport) -> bool {
        let profile = if is_failure {
            failure_profile(report, &self.spec)
        } else {
            success_profile(report, &self.spec)
        };
        let Some(profile) = profile else {
            return false;
        };
        let ingested = match (&profile.data, &mut self.inner) {
            (ProfileData::Lbr(records), Some(MonitorInner::Lbr(t))) => {
                t.observe(is_failure, witness, lbr_events(&self.layout, records));
                true
            }
            (ProfileData::Lcr(records), Some(MonitorInner::Lcr(t))) => {
                t.observe(is_failure, witness, lcr_events(&self.layout, records));
                true
            }
            (ProfileData::Lbr(records), inner @ None) => {
                let mut t = ConvergenceTracker::new(IncrementalRanking::new(), self.policy);
                t.observe(is_failure, witness, lbr_events(&self.layout, records));
                *inner = Some(MonitorInner::Lbr(t));
                true
            }
            (ProfileData::Lcr(records), inner @ None) => {
                let mut t =
                    ConvergenceTracker::new(IncrementalRanking::with_absence(), self.policy);
                t.observe(is_failure, witness, lcr_events(&self.layout, records));
                *inner = Some(MonitorInner::Lcr(t));
                true
            }
            // A profile of the other ring: the batch model skips it too.
            _ => false,
        };
        if ingested && is_failure && self.chain_traces.len() < CHAIN_TRACE_CAP {
            self.chain_traces
                .push((witness.to_string(), profile.data.clone()));
        }
        if ingested && self.should_stop() {
            self.fired = true;
        }
        ingested
    }

    /// The layout snapshots are decoded against.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The retained failing-witness ring snapshots (first
    /// [`CHAIN_TRACE_CAP`] kept failures, in consumption order) — the raw
    /// material a causal-chain reconstructor walks backward through.
    pub fn chain_traces(&self) -> &[(String, ProfileData)] {
        &self.chain_traces
    }

    /// The full live scored ranking, typed by ring kind. `None` before
    /// the first profile-bearing snapshot pins the kind.
    pub fn live_ranking(&self) -> Option<LiveRanking> {
        match &self.inner {
            Some(MonitorInner::Lbr(t)) => Some(LiveRanking::Lbr(t.scores())),
            Some(MonitorInner::Lcr(t)) => Some(LiveRanking::Lcr(t.scores())),
            None => None,
        }
    }

    /// Whether the policy has decided to stop the stream. Latches once
    /// fired, so speculative snapshots observed after the stop point
    /// cannot un-stop a diagnosis.
    pub fn should_stop(&self) -> bool {
        self.fired
            || match &self.inner {
                Some(MonitorInner::Lbr(t)) => t.should_stop(),
                Some(MonitorInner::Lcr(t)) => t.should_stop(),
                None => false,
            }
    }

    /// Snapshots ingested so far (both classes).
    pub fn witnesses(&self) -> usize {
        match &self.inner {
            Some(MonitorInner::Lbr(t)) => t.witnesses(),
            Some(MonitorInner::Lcr(t)) => t.witnesses(),
            None => 0,
        }
    }

    /// Failure snapshots ingested so far.
    pub fn failures(&self) -> usize {
        match &self.inner {
            Some(MonitorInner::Lbr(t)) => t.failures(),
            Some(MonitorInner::Lcr(t)) => t.failures(),
            None => 0,
        }
    }

    /// Success snapshots ingested so far.
    pub fn successes(&self) -> usize {
        match &self.inner {
            Some(MonitorInner::Lbr(t)) => t.successes(),
            Some(MonitorInner::Lcr(t)) => t.successes(),
            None => 0,
        }
    }

    /// Top-k churn at the latest ingest.
    pub fn churn(&self) -> u64 {
        match &self.inner {
            Some(MonitorInner::Lbr(t)) => t.churn(),
            Some(MonitorInner::Lcr(t)) => t.churn(),
            None => 0,
        }
    }

    /// Consecutive snapshots the current top-1 predictor has survived.
    pub fn top1_streak(&self) -> usize {
        match &self.inner {
            Some(MonitorInner::Lbr(t)) => t.top1_streak(),
            Some(MonitorInner::Lcr(t)) => t.top1_streak(),
            None => 0,
        }
    }

    /// Live verdict string: `converged` once the policy has fired,
    /// `collecting` before.
    pub fn live_verdict(&self) -> &'static str {
        if self.fired {
            Verdict::ConvergedEarly.as_str()
        } else {
            "collecting"
        }
    }

    /// The live state as a `/diagnosis`-shaped JSON document.
    pub fn to_json(&self) -> Json {
        match &self.inner {
            Some(MonitorInner::Lbr(t)) => t.to_json(self.live_verdict()),
            Some(MonitorInner::Lcr(t)) => t.to_json(self.live_verdict()),
            None => Json::obj([
                ("verdict", Json::from(self.live_verdict())),
                ("witnesses_ingested", Json::from(0usize)),
                ("policy", self.policy.to_json()),
            ]),
        }
    }

    /// Finalises the ingest: computes the verdict and returns the report
    /// — pure, with no side channel. `None` when no snapshot ever
    /// carried a usable profile.
    #[must_use = "finishing consumes the ingest; use the returned report"]
    pub fn finish(self) -> Option<ConvergenceReport> {
        let policy = self.policy;
        let fired = self.fired;
        let (final_ranking, evidence) = match self.inner? {
            MonitorInner::Lbr(t) => {
                let (r, e) = t.finish();
                (FinalRanking::Lbr(r), e)
            }
            MonitorInner::Lcr(t) => {
                let (r, e) = t.finish();
                (FinalRanking::Lcr(r), e)
            }
        };
        let verdict = if fired {
            Verdict::ConvergedEarly
        } else if evidence.stable {
            Verdict::Stable
        } else {
            Verdict::Stalled
        };
        Some(ConvergenceReport {
            verdict,
            policy,
            evidence,
            final_ranking,
        })
    }
}

/// The engine-facing monitor: a [`SnapshotIngest`] plus the *global*
/// observability surface — the `engine.rank_churn` /
/// `engine.top1_stable_for` / `engine.witnesses_ingested` gauges, the
/// live `/diagnosis` status document, and the `diagnosis.converged` /
/// `diagnosis.stalled` events emitted when the session ends. A fleet
/// shard uses [`SnapshotIngest`] directly instead: these gauge names are
/// single-call-site by contract (snapshots sum same-name gauges), so a
/// per-shard consumer must publish per-shard labeled series, not these.
///
/// Non-generic on purpose: the gauge macros declare one static per call
/// site and snapshots *sum* same-name gauges, so the `set()` calls must
/// not be monomorphised into one copy per event type.
#[derive(Debug)]
pub struct ConvergenceMonitor {
    ingest: SnapshotIngest,
}

impl ConvergenceMonitor {
    /// A monitor for one session. The ring kind is inferred from the
    /// first profile-bearing witness (so unpinned witness-mode sessions
    /// work); runs whose profile is missing or of the other ring are
    /// skipped, exactly as the batch extractors skip them.
    pub fn new(layout: &Layout, spec: FailureSpec, policy: StabilityPolicy) -> Self {
        let monitor = ConvergenceMonitor {
            ingest: SnapshotIngest::new(layout.clone(), spec, policy),
        };
        monitor.publish();
        monitor
    }

    /// Observes one kept witness run at the strict-ordered consumption
    /// seam. Returns `true` when the run carried a usable profile and was
    /// ingested.
    pub fn observe(&mut self, is_failure: bool, witness: &str, report: &RunReport) -> bool {
        let ingested = self.ingest.observe(is_failure, witness, report);
        if ingested {
            self.publish();
        }
        ingested
    }

    /// Whether the policy has decided to stop the session.
    pub fn should_stop(&self) -> bool {
        self.ingest.should_stop()
    }

    /// Pushes the gauges and the `/diagnosis` status document. These are
    /// the single call sites for the three convergence gauges (snapshots
    /// sum same-name gauges across call sites, so a second `set()` site
    /// could not overwrite this one).
    fn publish(&self) {
        stm_telemetry::gauge!("engine.rank_churn").set(self.ingest.churn() as i64);
        stm_telemetry::gauge!("engine.top1_stable_for").set(self.ingest.top1_streak() as i64);
        stm_telemetry::gauge!("engine.witnesses_ingested").set(self.ingest.witnesses() as i64);
        if stm_telemetry::enabled() {
            stm_telemetry::status::publish("diagnosis", self.ingest.to_json());
        }
    }

    /// Finalises the monitor: computes the verdict, emits the
    /// `diagnosis.converged` / `diagnosis.stalled` structured event,
    /// publishes the terminal `/diagnosis` document, and returns the
    /// report. `None` when no witness ever carried a usable profile.
    #[must_use = "finishing consumes the monitor; use the returned report"]
    pub fn finish(self) -> Option<ConvergenceReport> {
        let report = self.ingest.finish()?;
        let policy = report.policy;
        let verdict = report.verdict;
        let e = &report.evidence;
        let fields = || {
            vec![
                ("witnesses", e.witnesses.to_string()),
                ("failures", e.failures.to_string()),
                ("successes", e.successes.to_string()),
                ("rank_churn", e.churn.to_string()),
                ("top1_stable_for", e.top1_streak.to_string()),
                ("top1", e.top1.clone().unwrap_or_default()),
            ]
        };
        match verdict {
            // `converged` also covers the quota-end `stable` case: the
            // operator's question is "did the diagnosis settle", not
            // "which loop condition ended it" — the verdict field keeps
            // the distinction.
            Verdict::ConvergedEarly | Verdict::Stable => {
                if stm_telemetry::log::would_log(stm_telemetry::log::Level::Info) {
                    let mut fields = fields();
                    fields.push(("verdict", verdict.as_str().to_string()));
                    stm_telemetry::log::info("engine", "diagnosis.converged", fields);
                }
            }
            Verdict::Stalled => {
                let mut fields = fields();
                fields.push(("stable_for_required", policy.stable_for.to_string()));
                stm_telemetry::log::warn("engine", "diagnosis.stalled", fields);
            }
        }
        if stm_telemetry::enabled() {
            stm_telemetry::status::publish("diagnosis", report.to_json());
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    /// The canonical check: stream profiles through the incremental
    /// ranker and compare against a batch model over the same stream.
    fn batch(profiles: &[(bool, BTreeSet<String>)], absence: bool) -> Vec<RankedEvent<String>> {
        let mut m = RankingModel::new();
        for (i, (is_failure, events)) in profiles.iter().enumerate() {
            m.add_profile_named(*is_failure, format!("p{i}"), events.clone());
        }
        if absence {
            m.rank_with_absence()
        } else {
            m.rank()
        }
    }

    fn stream(profiles: &[(bool, BTreeSet<String>)], absence: bool) -> IncrementalRanking<String> {
        let mut inc = if absence {
            IncrementalRanking::with_absence()
        } else {
            IncrementalRanking::new()
        };
        for (i, (is_failure, events)) in profiles.iter().enumerate() {
            inc.ingest(*is_failure, format!("p{i}"), events.clone());
        }
        inc
    }

    fn mixed_profiles() -> Vec<(bool, BTreeSet<String>)> {
        vec![
            (true, set(&["root", "noise"])),
            (true, set(&["root"])),
            (false, set(&["noise", "guard"])),
            (true, set(&["root", "guard"])),
            (false, set(&["guard"])),
            (false, set(&["noise"])),
        ]
    }

    #[test]
    fn finish_is_bit_identical_to_batch_rank() {
        let profiles = mixed_profiles();
        for absence in [false, true] {
            let inc = stream(&profiles, absence);
            let batch = batch(&profiles, absence);
            assert_eq!(inc.finish(), batch, "absence={absence}");
        }
    }

    #[test]
    fn live_scores_match_batch_scores_at_every_prefix() {
        let profiles = mixed_profiles();
        for absence in [false, true] {
            for cut in 1..=profiles.len() {
                let inc = stream(&profiles[..cut], absence);
                let scores = inc.scores();
                let batch = batch(&profiles[..cut], absence);
                assert_eq!(scores.len(), batch.len());
                for (s, b) in scores.iter().zip(&batch) {
                    assert_eq!(s.event, b.event, "cut={cut}");
                    assert_eq!(s.polarity, b.polarity, "cut={cut}");
                    // Bitwise equality: same integer counts, same float
                    // expressions.
                    assert_eq!(s.score.to_bits(), b.score.to_bits(), "cut={cut}");
                    assert_eq!(s.precision.to_bits(), b.precision.to_bits());
                    assert_eq!(s.recall.to_bits(), b.recall.to_bits());
                    assert_eq!(s.failure_matches, b.failure_matches);
                    assert_eq!(s.success_matches, b.success_matches);
                }
            }
        }
    }

    #[test]
    fn churn_counts_discordant_pairs() {
        // Identical rankings: zero churn.
        assert_eq!(rank_churn(&["a", "b", "c"], &["a", "b", "c"]), 0);
        // One adjacent swap: one discordant pair.
        assert_eq!(rank_churn(&["a", "b", "c"], &["b", "a", "c"]), 1);
        // Full reversal of 3: all 3 pairs discordant.
        assert_eq!(rank_churn(&["a", "b", "c"], &["c", "b", "a"]), 3);
        // First poll (empty previous): nothing to be discordant with.
        assert_eq!(rank_churn(&[], &["a", "b"]), 0);
        // An entry dropping out is discordant with everything it led.
        assert_eq!(rank_churn(&["a", "b"], &["b"]), 1);
    }

    #[test]
    fn stable_stream_builds_a_streak_and_stops() {
        let mut t = ConvergenceTracker::new(
            IncrementalRanking::new(),
            StabilityPolicy::default().stable_for(3),
        );
        // Alternate failure/success so both class floors fill.
        for i in 0..8 {
            let is_failure = i % 2 == 0;
            let events = if is_failure {
                set(&["root", "noise"])
            } else {
                set(&["noise"])
            };
            t.observe(is_failure, format!("w{i}"), events);
        }
        assert!(t.top1_streak() >= 3, "streak {}", t.top1_streak());
        assert_eq!(t.top()[0].event, "root");
        assert!(t.should_stop());
        let (ranked, evidence) = t.finish();
        assert_eq!(ranked[0].event, "root");
        assert!(evidence.stable);
        assert_eq!(evidence.top1.as_deref(), Some("root"));
        assert_eq!(evidence.history.len(), 8);
    }

    #[test]
    fn class_floors_block_early_stop() {
        // Ten failures, zero successes: however stable the top-1, the
        // success floor must hold the stop (witness mode ingests all
        // failures before the first success).
        let mut t = ConvergenceTracker::new(IncrementalRanking::new(), StabilityPolicy::default());
        for i in 0..10 {
            t.observe(true, format!("f{i}"), set(&["root"]));
        }
        assert!(t.top1_streak() >= 5);
        assert!(!t.should_stop(), "success floor must block the stop");
        t.observe(false, "s0", set(&["noise"]));
        t.observe(false, "s1", set(&["noise"]));
        assert!(!t.should_stop(), "two successes are below the floor");
        t.observe(false, "s2", set(&["noise"]));
        assert!(t.should_stop(), "three successes satisfy the floor");
    }

    #[test]
    fn never_policy_tracks_but_does_not_stop() {
        let mut t = ConvergenceTracker::new(IncrementalRanking::new(), StabilityPolicy::never());
        for i in 0..20 {
            t.observe(i % 2 == 0, format!("w{i}"), set(&["root"]));
        }
        assert!(t.is_stable(), "the stability conditions themselves hold");
        assert!(!t.should_stop(), "never() must not stop the session");
    }

    #[test]
    fn churny_stream_resets_the_streak() {
        let mut t = ConvergenceTracker::new(IncrementalRanking::new(), StabilityPolicy::never());
        // Each failure profile carries a different singleton event, so
        // the top-1 keeps flipping to the newest tie-break winner or an
        // earlier event — the streak must stay short.
        let events = ["a", "b", "c", "d"];
        for (i, e) in events.iter().enumerate() {
            t.observe(true, format!("f{i}"), set(&[e]));
        }
        // All four tie at the same score; tie-break keeps "a" first, so
        // after the first ingest the top-1 settles on "a".
        assert_eq!(t.top()[0].event, "a");
        // Now a success profile containing "a" dilutes its precision:
        // the top-1 flips and the streak resets.
        t.observe(false, "s0", set(&["a"]));
        assert_ne!(t.top()[0].event, "a");
        assert_eq!(t.top1_streak(), 1, "flip must reset the streak");
        assert!(t.churn() > 0, "the flip must register as churn");
    }

    #[test]
    fn trajectories_follow_top_k_members() {
        let mut t = ConvergenceTracker::new(IncrementalRanking::new(), StabilityPolicy::never());
        t.observe(true, "f0", set(&["root"]));
        t.observe(false, "s0", set(&["noise"]));
        let (_, evidence) = t.finish();
        let names: Vec<&str> = evidence
            .trajectories
            .iter()
            .map(|t| t.predictor.as_str())
            .collect();
        assert!(names.contains(&"root"), "{names:?}");
        let root = evidence
            .trajectories
            .iter()
            .find(|t| t.predictor == "root")
            .unwrap();
        assert_eq!(root.points.len(), 2, "one sample per poll in top-k");
        assert_eq!(root.points[0].0, 1);
        assert_eq!(root.points[1].0, 2);
    }

    #[test]
    fn verdict_strings_are_wire_stable() {
        assert_eq!(Verdict::ConvergedEarly.as_str(), "converged");
        assert_eq!(Verdict::Stable.as_str(), "stable");
        assert_eq!(Verdict::Stalled.as_str(), "stalled");
    }

    #[test]
    fn tracker_json_document_is_parseable_and_complete() {
        let mut t = ConvergenceTracker::new(IncrementalRanking::new(), StabilityPolicy::default());
        t.observe(true, "f0", set(&["root"]));
        let doc = t.to_json("collecting");
        let round = Json::parse(&doc.encode()).expect("valid JSON");
        assert_eq!(
            round.get("verdict").and_then(Json::as_str),
            Some("collecting")
        );
        assert_eq!(
            round.get("witnesses_ingested").and_then(Json::as_f64),
            Some(1.0)
        );
        assert!(round.get("policy").is_some());
        assert!(round.get("top").and_then(Json::as_array).is_some());
        assert!(round.get("trajectories").is_some());
    }
}
