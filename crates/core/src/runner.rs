//! Run orchestration: workloads, failure specifications and run
//! classification.
//!
//! The diagnosis drivers (LBRA/LCRA) and the harness binaries all execute
//! programs the same way: a [`Workload`] names the inputs and scheduler
//! seed, a [`FailureSpec`] describes the failure being diagnosed, and
//! [`classify`] decides whether a given run reproduced that failure,
//! succeeded, or did something else (and should be discarded, as the
//! paper's per-failure-site grouping does).

use crate::transform::{instrument, InstrumentOptions};
use std::cell::RefCell;
use stm_hardware::{HardwareCtx, HwConfig};
use stm_machine::ids::LogSiteId;
use stm_machine::interp::{Machine, RunConfig, RunScratch};
use stm_machine::ir::Program;
use stm_machine::report::{RunOutcome, RunReport};
use stm_machine::sched::SchedPolicy;

thread_local! {
    /// Per-thread run cache. The collection engine calls [`Runner::run`]
    /// once per replay, and on the paper's short workloads building the
    /// run state costs more than running it: a fresh [`HardwareCtx`]
    /// allocates one `Vec` per cache set per core (~2k allocations) and a
    /// fresh interpreter scratch re-grows memory, thread and register
    /// buffers from zero. The cache keeps one hardware context (keyed by
    /// its [`HwConfig`]) and one [`RunScratch`] per thread and recycles
    /// their capacity across runs. [`HardwareCtx::reset`] restores the
    /// exact fresh state (pinned by the hardware crate's
    /// `reset_restores_the_fresh_state` test) and every run re-seeds the
    /// perturbation stream from its workload seed, so reuse is invisible
    /// in results — only in allocator traffic.
    static RUN_CACHE: RefCell<RunCache> = RefCell::new(RunCache::default());
}

/// The per-thread state recycled across [`Runner::run`] calls.
#[derive(Default)]
struct RunCache {
    hw: Option<(HwConfig, HardwareCtx)>,
    scratch: RunScratch,
}

/// One run's inputs: data inputs, scheduler seed and the expected output
/// (for wrong-output symptom checking).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Workload {
    /// Data inputs, read by `ReadInput`.
    pub inputs: Vec<i64>,
    /// Scheduler seed (interleaving selector).
    pub seed: u64,
    /// Expected program output, when the symptom is wrong output.
    pub expected: Option<Vec<i64>>,
}

impl Workload {
    /// A workload with the given inputs and seed 0.
    pub fn new(inputs: Vec<i64>) -> Self {
        Workload {
            inputs,
            seed: 0,
            expected: None,
        }
    }

    /// Sets the scheduler seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the expected output.
    pub fn with_expected(mut self, expected: Vec<i64>) -> Self {
        self.expected = Some(expected);
        self
    }
}

/// Describes the failure being diagnosed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureSpec {
    /// The failure manifests as an error message from this logging site.
    ErrorLogAt(LogSiteId),
    /// The failure is a crash (segfault/invalid free/assert/…) in the
    /// named function at the given line.
    CrashAt {
        /// Function name.
        func: String,
        /// Source line of the faulting statement.
        line: u32,
    },
    /// Any fail-stop crash.
    AnyCrash,
    /// The program completes but its output differs from the workload's
    /// expectation.
    WrongOutput,
    /// The program hangs (watchdog) or deadlocks.
    Hang,
}

/// How a run relates to the failure under diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunClass {
    /// The run reproduced the target failure.
    TargetFailure,
    /// The run completed successfully (with the expected output, when one
    /// is specified).
    Success,
    /// The run did something else — a different failure, or completed when
    /// a wrong output was expected; excluded from the profile sets.
    Other,
}

/// Classifies a run report against a failure specification.
pub fn classify(
    program: &Program,
    report: &RunReport,
    workload: &Workload,
    spec: &FailureSpec,
) -> RunClass {
    let output_ok = workload
        .expected
        .as_ref()
        .map(|e| e == &report.outputs)
        .unwrap_or(true);
    match spec {
        FailureSpec::ErrorLogAt(site) => {
            if report.logged_site(*site) {
                RunClass::TargetFailure
            } else if report.outcome.is_completed() && output_ok {
                RunClass::Success
            } else {
                RunClass::Other
            }
        }
        FailureSpec::CrashAt { func, line } => match report.outcome.failure() {
            Some(f) => {
                let fname = &program.function(f.func).name;
                if fname == func && f.loc.line == *line {
                    RunClass::TargetFailure
                } else {
                    RunClass::Other
                }
            }
            None => {
                if output_ok {
                    RunClass::Success
                } else {
                    RunClass::Other
                }
            }
        },
        FailureSpec::AnyCrash => match &report.outcome {
            RunOutcome::Failed(_) => RunClass::TargetFailure,
            RunOutcome::Completed { .. } if output_ok => RunClass::Success,
            RunOutcome::Completed { .. } => RunClass::Other,
        },
        FailureSpec::WrongOutput => match &report.outcome {
            RunOutcome::Completed { .. } if !output_ok => RunClass::TargetFailure,
            RunOutcome::Completed { .. } => RunClass::Success,
            RunOutcome::Failed(_) => RunClass::Other,
        },
        FailureSpec::Hang => match report.outcome.failure() {
            Some(f)
                if matches!(
                    f.kind,
                    stm_machine::report::FailureKind::Hang
                        | stm_machine::report::FailureKind::Deadlock
                ) =>
            {
                RunClass::TargetFailure
            }
            Some(_) => RunClass::Other,
            None => {
                if output_ok {
                    RunClass::Success
                } else {
                    RunClass::Other
                }
            }
        },
    }
}

/// Executes runs of one (instrumented) machine, each on logically fresh
/// hardware.
///
/// [`Runner::run`] and the classified variants recycle a thread-local
/// hardware context and interpreter scratch (reset to the fresh state
/// between runs); [`Runner::run_with_hw`] builds a genuinely fresh
/// [`HardwareCtx`] because it hands the final hardware state back to the
/// caller.
///
/// `Runner` is `Clone + Send + Sync`: the machine and both configs are
/// plain data, so the collection engine can hand each worker thread its
/// own copy (see `crate::engine`).
#[derive(Debug, Clone)]
pub struct Runner {
    machine: Machine,
    run_config: RunConfig,
    hw_config: HwConfig,
}

impl Runner {
    /// Instruments `program` with `opts` and prepares a runner for it.
    pub fn instrumented(program: &Program, opts: &InstrumentOptions) -> Self {
        Runner::new(Machine::new(instrument(program, opts)))
    }

    /// Wraps an already-built machine.
    pub fn new(machine: Machine) -> Self {
        Runner {
            machine,
            run_config: RunConfig::default(),
            hw_config: HwConfig::default(),
        }
    }

    /// Overrides the run configuration (step budget, cores...).
    pub fn with_run_config(mut self, config: RunConfig) -> Self {
        self.run_config = config;
        self
    }

    /// Overrides the hardware configuration (LBR size, cache geometry...).
    pub fn with_hw_config(mut self, config: HwConfig) -> Self {
        self.hw_config = config;
        self
    }

    /// The machine being run.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The hardware configuration used for each run.
    pub fn hw_config(&self) -> &HwConfig {
        &self.hw_config
    }

    /// The run configuration used for each run.
    pub fn run_config(&self) -> &RunConfig {
        &self.run_config
    }

    /// Runs one workload on (logically) fresh hardware; returns the
    /// report. The hardware context and interpreter scratch come from the
    /// thread-local [`RUN_CACHE`], so the hot collection path allocates
    /// no per-run state.
    pub fn run(&self, workload: &Workload) -> RunReport {
        self.run_cached(workload, None)
    }

    /// The cached-state run underneath [`Runner::run`] and the classified
    /// variants. `sample_seed` overrides the run config's sampling seed
    /// when set.
    fn run_cached(&self, workload: &Workload, sample_seed: Option<u64>) -> RunReport {
        let _span = stm_telemetry::span_cat("runner.run", "runner");
        RUN_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let cache = &mut *cache;
            match &mut cache.hw {
                Some((cfg, hw)) if *cfg == self.hw_config => hw.reset(),
                slot => *slot = Some((self.hw_config, HardwareCtx::new(self.hw_config))),
            }
            let hw = &mut cache.hw.as_mut().expect("cache primed above").1;
            // Fault injection draws from a stream derived from the
            // workload's scheduler seed, so perturbed runs replay
            // identically regardless of which worker thread executes them.
            hw.seed_perturbations(workload.seed);
            let mut cfg = self.run_config.clone();
            cfg.scheduler = SchedPolicy::Random {
                seed: workload.seed,
            };
            if let Some(seed) = sample_seed {
                cfg.sample_seed = seed;
            }
            let report = self
                .machine
                .run_reusing(&workload.inputs, &cfg, hw, &mut cache.scratch);
            hw.counters().flush_run_telemetry();
            report
        })
    }

    /// Runs one workload and also returns the final hardware state.
    ///
    /// Unlike [`Runner::run`], this builds a genuinely fresh
    /// [`HardwareCtx`] every time — the context escapes to the caller, so
    /// it cannot come from the thread-local cache.
    pub fn run_with_hw(&self, workload: &Workload) -> (RunReport, HardwareCtx) {
        let _span = stm_telemetry::span_cat("runner.run", "runner");
        let mut hw = HardwareCtx::new(self.hw_config);
        hw.seed_perturbations(workload.seed);
        let mut cfg = self.run_config.clone();
        cfg.scheduler = SchedPolicy::Random {
            seed: workload.seed,
        };
        let report = self.machine.run(&workload.inputs, &cfg, &mut hw);
        hw.counters().flush_run_telemetry();
        (report, hw)
    }

    /// Runs one workload and classifies it.
    pub fn run_classified(&self, workload: &Workload, spec: &FailureSpec) -> (RunReport, RunClass) {
        let report = self.run(workload);
        let class = classify(self.machine.program(), &report, workload, spec);
        note_class(class);
        (report, class)
    }

    /// Like [`Runner::run_classified`], but with an explicit sampling-seed
    /// override so probe-based baselines (CBI/CCI) draw fresh sampling
    /// streams across repeated replays of the same workload.
    pub fn run_classified_with_sample_seed(
        &self,
        workload: &Workload,
        spec: &FailureSpec,
        sample_seed: u64,
    ) -> (RunReport, RunClass) {
        let report = self.run_cached(workload, Some(sample_seed));
        let class = classify(self.machine.program(), &report, workload, spec);
        note_class(class);
        (report, class)
    }
}

/// Counts one classified run in the telemetry collector.
fn note_class(class: RunClass) {
    match class {
        RunClass::TargetFailure => stm_telemetry::counter!("runner.class.target_failure").incr(),
        RunClass::Success => stm_telemetry::counter!("runner.class.success").incr(),
        RunClass::Other => stm_telemetry::counter!("runner.class.other").incr(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;

    /// input < 0 → error log; input == 0 → segfault; else outputs input.
    fn sample() -> (Program, LogSiteId) {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let site;
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let rest = f.new_block();
            let crash = f.new_block();
            let ok = f.new_block();
            let x = f.read_input(0);
            let neg = f.bin(BinOp::Lt, x, 0);
            f.br(neg, err, rest);
            f.set_block(err);
            f.at(10);
            site = f.log_error("negative");
            f.exit(1);
            f.ret(None);
            f.set_block(rest);
            let zero = f.bin(BinOp::Eq, x, 0);
            f.br(zero, crash, ok);
            f.set_block(crash);
            f.at(20);
            let _ = f.load(0i64, 0);
            f.ret(None);
            f.set_block(ok);
            f.output(x);
            f.ret(None);
            f.finish();
        }
        (pb.finish(main), site)
    }

    #[test]
    fn classify_error_log_spec() {
        let (p, site) = sample();
        let runner = Runner::new(Machine::new(p));
        let spec = FailureSpec::ErrorLogAt(site);
        let (_, c) = runner.run_classified(&Workload::new(vec![-1]), &spec);
        assert_eq!(c, RunClass::TargetFailure);
        let (_, c) = runner.run_classified(&Workload::new(vec![5]), &spec);
        assert_eq!(c, RunClass::Success);
        let (_, c) = runner.run_classified(&Workload::new(vec![0]), &spec);
        assert_eq!(c, RunClass::Other);
    }

    #[test]
    fn classify_crash_spec() {
        let (p, _) = sample();
        let runner = Runner::new(Machine::new(p));
        let spec = FailureSpec::CrashAt {
            func: "main".into(),
            line: 20,
        };
        let (_, c) = runner.run_classified(&Workload::new(vec![0]), &spec);
        assert_eq!(c, RunClass::TargetFailure);
        let (_, c) = runner.run_classified(&Workload::new(vec![7]), &spec);
        assert_eq!(c, RunClass::Success);
        let (_, c) = runner.run_classified(&Workload::new(vec![-3]), &spec);
        // A clean exit(1) with an error message is not the crash.
        assert_eq!(c, RunClass::Success);
    }

    #[test]
    fn classify_wrong_output_spec() {
        let (p, _) = sample();
        let runner = Runner::new(Machine::new(p));
        let spec = FailureSpec::WrongOutput;
        let w_bad = Workload::new(vec![5]).with_expected(vec![999]);
        let (_, c) = runner.run_classified(&w_bad, &spec);
        assert_eq!(c, RunClass::TargetFailure);
        let w_good = Workload::new(vec![5]).with_expected(vec![5]);
        let (_, c) = runner.run_classified(&w_good, &spec);
        assert_eq!(c, RunClass::Success);
    }

    #[test]
    fn instrumented_runner_profiles_failure_logs() {
        let (p, site) = sample();
        let runner = Runner::instrumented(&p, &InstrumentOptions::lbrlog());
        let report = runner.run(&Workload::new(vec![-4]));
        let prof = report.failure_profile().expect("failure profile");
        assert_eq!(prof.site, Some(site));
        match &prof.data {
            stm_machine::report::ProfileData::Lbr(records) => assert!(!records.is_empty()),
            other => panic!("expected LBR data, got {other:?}"),
        }
    }

    #[test]
    fn fault_handler_profiles_on_segfault() {
        let (p, _) = sample();
        let runner = Runner::instrumented(&p, &InstrumentOptions::lbrlog());
        let report = runner.run(&Workload::new(vec![0]));
        assert!(report.outcome.failure().is_some());
        let prof = report.failure_profile().expect("fault-handler profile");
        assert_eq!(prof.site, None);
    }
}
