//! Parallel profile-collection engine behind the [`DiagnosisSession`] API.
//!
//! Every witness run the paper's LBRA/LCRA drivers consume is an
//! independent simulated execution: a (workload, seed) pair replayed on a
//! fresh [`HardwareCtx`](stm_hardware::HardwareCtx), classified against the
//! failure spec, and mined for a ring snapshot. Nothing couples one run to
//! the next, so collection is embarrassingly parallel — this module shards
//! those runs across a fixed pool of `std::thread` workers fed by a channel
//! work queue, with **zero new dependencies**.
//!
//! ## Job model
//!
//! A collection is described by a [`JobPlan`]: a pure function from a
//! logical job index `i` to the `i`-th (workload, seed) pair. Witness-mode
//! plans cycle a workload list, perturbing the scheduler seed on each lap
//! exactly as the sequential driver did; scan-mode plans enumerate
//! `bases × seeds` (the retired `find_workloads` seed scan). Because the plan is a
//! function of the index, jobs need no shared state and can be regenerated
//! anywhere — which is exactly what the transport exploits: the driver
//! sends workers contiguous **index chunks** (two integers per message),
//! and each worker regenerates its jobs from the shared plan and answers
//! with one result message per chunk. On the paper's short workloads the
//! old job-per-message queue spent more time in channel sends, queue-mutex
//! traffic and thread wakes than in the runs themselves; chunking divides
//! that fixed cost by the chunk size.
//!
//! ## Merge determinism
//!
//! Workers finish out of order, but the driver **consumes results strictly
//! in job-index order**: completed jobs park in a `BTreeMap` until every
//! lower-indexed job has been consumed. Quota checks (how many failure /
//! success profiles are still needed) and the early-stop decision happen
//! only at consumption time, on that ordered prefix. Speculatively executed
//! jobs past the stopping point are discarded. The consumed prefix is
//! therefore *identical* to what a sequential loop would have executed —
//! same witnesses, same profile order, same `DiagnosisStats` — so
//! `threads(N)` is bit-for-bit equal to `threads(1)`.
//!
//! ## Thread-safety argument
//!
//! Each worker owns a deep clone of the [`Runner`] (machine + configs, all
//! plain data — compile-time `Send + Sync` assertions live in the machine
//! and hardware crates) and runs on its own thread-local hardware context
//! and interpreter scratch (reset to the exactly-fresh state between runs
//! — see `crate::runner`), so workers share nothing mutable. A run that
//! panics is caught with `catch_unwind`, reported over the results
//! channel, and surfaces as [`SessionError::WorkerPanicked`] instead of a
//! hang.

use crate::converge::{ConvergenceMonitor, ConvergenceReport, StabilityPolicy};
use crate::diagnose::{failure_profile, success_profile, DiagnosisStats, Quotas};
use crate::runner::{FailureSpec, RunClass, Runner, Workload};
use crate::transform::{instrument, InstrumentOptions};
use std::collections::BTreeMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use stm_hardware::HwConfig;
use stm_machine::interp::{Machine, RunConfig};
use stm_machine::ir::Program;
use stm_machine::report::{ProfileData, ProfileEvent, RunReport};

/// Which hardware ring a session collects, and therefore which profile
/// data a run must carry to count against the collection quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileKind {
    /// Last Branch Record snapshots (LBRA, §4.1).
    Lbr,
    /// Last Cache-coherence Record snapshots (LCRA, §4.2).
    Lcr,
}

/// Why a [`DiagnosisSession::collect`] call could not produce profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No [`FailureSpec`] was given; nothing can be classified.
    MissingFailureSpec,
    /// Both witness lists (`failing`/`passing`) and scan bases
    /// (`workloads`) were set; a session is one or the other.
    ConflictingWorkloads,
    /// The hardware configuration is contradictory — a zero-capacity
    /// ring, or a malformed perturbation setting. Surfaced before any run
    /// executes, so a bad sweep setting fails fast with the reason rather
    /// than panicking inside a worker.
    InvalidHardware(stm_hardware::HwConfigError),
    /// A worker panicked while executing a run. The engine reports this
    /// instead of hanging or unwinding across the pool.
    WorkerPanicked {
        /// Logical index of the job whose run panicked.
        job: u64,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingFailureSpec => {
                write!(f, "diagnosis session has no failure spec")
            }
            SessionError::ConflictingWorkloads => write!(
                f,
                "session mixes witness lists (failing/passing) with scan bases (workloads)"
            ),
            SessionError::WorkerPanicked { job, message } => {
                write!(f, "collection worker panicked on job {job}: {message}")
            }
            SessionError::InvalidHardware(e) => {
                write!(f, "invalid hardware configuration: {e}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Unified configuration for a diagnosis session: the shared profile
/// [`Quotas`], the interpreter's [`RunConfig`], the simulated-hardware
/// [`HwConfig`], and the engine's parallelism knobs, behind one
/// `Default` + builder-setter surface.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Profile quotas — failure/success profile counts and the per-phase
    /// run cap. The paper diagnoses from 10 failure occurrences (§5.2;
    /// §7.2 contrasts this diagnosis latency with CBI's ~1000). The same
    /// [`Quotas`] type configures the fleet daemon's per-shard caps.
    pub quotas: Quotas,
    /// Worker threads for profile collection; `1` keeps the sequential
    /// driver, `0` asks the OS for the available parallelism. Runs are
    /// independent production executions (§2's per-run short-term memory
    /// snapshots), so sharding them changes no result.
    pub threads: usize,
    /// Speculation window: how many jobs may be dispatched beyond the
    /// consumed prefix (`0` = `threads × 4`). Bounds the work discarded
    /// when the quota early-stop triggers.
    pub chunk: usize,
    /// Interpreter configuration — step budget, cores, scheduler,
    /// sampling (the §6 evaluation machine model).
    pub run: RunConfig,
    /// Simulated monitoring-hardware geometry — 16-entry Nehalem-style
    /// LBR, LCR size/configuration (§3, §4.2.1).
    pub hw: HwConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            quotas: Quotas::default(),
            threads: 1,
            chunk: 0,
            run: RunConfig::default(),
            hw: HwConfig::default(),
        }
    }
}

impl SessionConfig {
    /// Replaces the profile quotas.
    pub fn quotas(mut self, quotas: Quotas) -> Self {
        self.quotas = quotas;
        self
    }

    /// Sets the failure-profile quota.
    pub fn failure_profiles(mut self, n: usize) -> Self {
        self.quotas.failure_profiles = n;
        self
    }

    /// Sets the success-profile quota.
    pub fn success_profiles(mut self, n: usize) -> Self {
        self.quotas.success_profiles = n;
        self
    }

    /// Sets the per-phase run cap.
    pub fn max_runs(mut self, n: usize) -> Self {
        self.quotas.max_runs = n;
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets the speculation window (`0` = `threads × 4`).
    pub fn chunk(mut self, n: usize) -> Self {
        self.chunk = n;
        self
    }

    /// Sets the interpreter configuration.
    pub fn run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Sets the simulated-hardware configuration.
    pub fn hw(mut self, hw: HwConfig) -> Self {
        self.hw = hw;
        self
    }
}

impl From<Quotas> for SessionConfig {
    fn from(quotas: Quotas) -> Self {
        SessionConfig {
            quotas,
            ..SessionConfig::default()
        }
    }
}

/// One profile-bearing run kept by a collection: the witness id the
/// forensic report names, the exact (seed-perturbed) workload that was
/// replayed, and its full run report (ring snapshots included).
#[derive(Debug, Clone)]
pub struct CollectedRun {
    /// Witness id, `fail:w<idx>:seed<seed>` / `pass:w<idx>:seed<seed>`.
    pub witness: String,
    /// The workload exactly as replayed (seed already perturbed).
    pub workload: Workload,
    /// The run's report, carrying the ring-snapshot profiles.
    pub report: RunReport,
}

/// The output of [`DiagnosisSession::collect`]: the kept failure/success
/// runs in deterministic consumption order, plus everything needed to
/// rank them ([`CollectedProfiles::lbra`] / [`CollectedProfiles::lcra`])
/// or flight-record them into forensics dossiers.
#[derive(Debug)]
pub struct CollectedProfiles {
    pub(crate) runner: Runner,
    pub(crate) spec: FailureSpec,
    pub(crate) kind: Option<ProfileKind>,
    pub(crate) failures: Vec<CollectedRun>,
    pub(crate) successes: Vec<CollectedRun>,
    pub(crate) stats: DiagnosisStats,
    pub(crate) convergence: Option<ConvergenceReport>,
}

impl CollectedProfiles {
    /// The runner the profiles were collected with (same machine and
    /// configs each worker cloned).
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The failure being diagnosed.
    pub fn spec(&self) -> &FailureSpec {
        &self.spec
    }

    /// The ring kind the quota counted, when one was set.
    pub fn kind(&self) -> Option<ProfileKind> {
        self.kind
    }

    /// Run accounting: identical to the sequential driver's stats.
    pub fn stats(&self) -> &DiagnosisStats {
        &self.stats
    }

    /// Failure-run witnesses, in consumption (= sequential) order.
    pub fn failure_runs(&self) -> &[CollectedRun] {
        &self.failures
    }

    /// Success-run witnesses, in consumption (= sequential) order.
    pub fn success_runs(&self) -> &[CollectedRun] {
        &self.successes
    }

    /// The workloads (seeds applied) of the kept failure runs — what a
    /// scan-mode session hands back as failing witnesses.
    pub fn failing_workloads(&self) -> Vec<Workload> {
        self.failures.iter().map(|r| r.workload.clone()).collect()
    }

    /// The workloads (seeds applied) of the kept success runs.
    pub fn passing_workloads(&self) -> Vec<Workload> {
        self.successes.iter().map(|r| r.workload.clone()).collect()
    }

    /// The convergence report, when the session was built with
    /// [`DiagnosisSession::converge`]: verdict, churn/streak history,
    /// trajectories, and the final incremental ranking (bit-identical to
    /// the batch model over the same witnesses).
    pub fn convergence(&self) -> Option<&ConvergenceReport> {
        self.convergence.as_ref()
    }
}

/// Builder for one diagnosis: what to run (witness lists or a seed scan),
/// what failure to look for, and how to run it (quotas, configs,
/// parallelism). Ends with [`DiagnosisSession::collect`].
///
/// ```
/// use stm_core::engine::DiagnosisSession;
/// use stm_core::prelude::*;
/// # use stm_machine::builder::ProgramBuilder;
/// # use stm_machine::ir::BinOp;
/// # let mut pb = ProgramBuilder::new("demo");
/// # let main = pb.declare_function("main");
/// # let mut f = pb.build_function(main, "demo.c");
/// # let err = f.new_block();
/// # let ok = f.new_block();
/// # let x = f.read_input(0);
/// # let neg = f.bin(BinOp::Lt, x, 0);
/// # f.br(neg, err, ok);
/// # f.set_block(err);
/// # let site = f.log_error("negative input");
/// # f.exit(1);
/// # f.ret(None);
/// # f.set_block(ok);
/// # f.output(x);
/// # f.ret(None);
/// # f.finish();
/// # let program = pb.finish(main);
/// let profiles = DiagnosisSession::new(&program)
///     .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
///     .failure(FailureSpec::ErrorLogAt(site))
///     .failing(vec![Workload::new(vec![-1])])
///     .passing(vec![Workload::new(vec![1])])
///     .threads(2)
///     .collect()?;
/// let diagnosis = profiles.lbra();
/// assert_eq!(diagnosis.top().expect("a predictor").score, 1.0);
/// # Ok::<(), stm_core::engine::SessionError>(())
/// ```
#[derive(Debug)]
pub struct DiagnosisSession {
    machine: Machine,
    spec: Option<FailureSpec>,
    failing: Vec<Workload>,
    passing: Vec<Workload>,
    bases: Vec<Workload>,
    seeds: Option<Range<u64>>,
    kind: Option<ProfileKind>,
    config: SessionConfig,
    policy: Option<StabilityPolicy>,
}

impl DiagnosisSession {
    /// Starts a session on `program` as-is (assumed already instrumented;
    /// call [`DiagnosisSession::instrument`] otherwise).
    pub fn new(program: &Program) -> Self {
        DiagnosisSession::with_machine(Machine::new(program.clone()))
    }

    /// Starts a session on an already-built machine.
    pub fn with_machine(machine: Machine) -> Self {
        DiagnosisSession {
            machine,
            spec: None,
            failing: Vec::new(),
            passing: Vec::new(),
            bases: Vec::new(),
            seeds: None,
            kind: None,
            config: SessionConfig::default(),
            policy: None,
        }
    }

    /// Starts a session with a runner's machine and both of its configs —
    /// the migration path for callers that already hold a [`Runner`].
    pub fn from_runner(runner: &Runner) -> Self {
        let mut s = DiagnosisSession::with_machine(runner.machine().clone());
        s.config.run = runner.run_config().clone();
        s.config.hw = *runner.hw_config();
        s
    }

    /// Applies the §5.1 source-to-source instrumentation to the session's
    /// program and infers the profile kind from it (LCR wins when both
    /// rings are deployed, matching LCRA's use of the richer ring).
    pub fn instrument(mut self, opts: &InstrumentOptions) -> Self {
        self.machine = Machine::new(instrument(self.machine.program(), opts));
        self.kind = if opts.lcr {
            Some(ProfileKind::Lcr)
        } else if opts.lbr {
            Some(ProfileKind::Lbr)
        } else {
            None
        };
        self
    }

    /// Sets the failure being diagnosed. Required.
    pub fn failure(mut self, spec: FailureSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Witness mode: workloads known to reproduce the failure, cycled
    /// (with per-lap seed perturbation) until the failure quota is met.
    pub fn failing(mut self, workloads: Vec<Workload>) -> Self {
        self.failing = workloads;
        self
    }

    /// Witness mode: workloads known to succeed, cycled until the
    /// success quota is met.
    pub fn passing(mut self, workloads: Vec<Workload>) -> Self {
        self.passing = workloads;
        self
    }

    /// Scan mode: base workloads whose scheduler seeds are enumerated
    /// (see [`DiagnosisSession::seeds`]) to *find* failing and passing
    /// interleavings — the redesign of the retired `find_workloads`. Mutually
    /// exclusive with the witness lists.
    pub fn workloads(mut self, bases: Vec<Workload>) -> Self {
        self.bases = bases;
        self
    }

    /// Scan mode: the seed range to enumerate per base workload
    /// (default `0..max_runs`).
    pub fn seeds(mut self, seeds: Range<u64>) -> Self {
        self.seeds = Some(seeds);
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = n;
        self
    }

    /// Sets the speculation window (`0` = `threads × 4`).
    pub fn chunk(mut self, n: usize) -> Self {
        self.config.chunk = n;
        self
    }

    /// Sets the failure-profile quota (scan mode: failing witnesses to
    /// find).
    pub fn failure_profiles(mut self, n: usize) -> Self {
        self.config.quotas.failure_profiles = n;
        self
    }

    /// Sets the success-profile quota (scan mode: passing witnesses to
    /// find).
    pub fn success_profiles(mut self, n: usize) -> Self {
        self.config.quotas.success_profiles = n;
        self
    }

    /// Sets the per-phase run cap.
    pub fn max_runs(mut self, n: usize) -> Self {
        self.config.quotas.max_runs = n;
        self
    }

    /// Sets the interpreter configuration.
    pub fn run_config(mut self, run: RunConfig) -> Self {
        self.config.run = run;
        self
    }

    /// Sets the simulated-hardware configuration.
    pub fn hw_config(mut self, hw: HwConfig) -> Self {
        self.config.hw = hw;
        self
    }

    /// Pins the ring kind a witness run must carry to count against the
    /// quota. Witness mode without a kind accepts any profile at the
    /// failure/success site.
    pub fn profile_kind(mut self, kind: ProfileKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Attaches a convergence monitor: the session feeds every consumed
    /// witness into an incremental ranking
    /// ([`IncrementalRanking`](crate::converge::IncrementalRanking)),
    /// publishes the `engine.rank_churn` / `engine.top1_stable_for` /
    /// `engine.witnesses_ingested` gauges and the live `/diagnosis`
    /// document, and — when `policy.stop` is set — stops collecting as
    /// soon as the top-1 predictor has been stable for
    /// `policy.stable_for` consecutive witnesses (both class floors
    /// permitting). The stop decision is taken at the strict-ordered
    /// consumption seam, so an early-stopped session is still
    /// bit-identical across thread counts. The resulting
    /// [`ConvergenceReport`] rides on
    /// [`CollectedProfiles::convergence`].
    pub fn converge(mut self, policy: StabilityPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: SessionConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the profile quotas, keeping the session's run/hw configs
    /// and parallelism knobs.
    pub fn quotas(mut self, quotas: Quotas) -> Self {
        self.config.quotas = quotas;
        self
    }

    /// Runs the collection: replays jobs (in parallel when
    /// `threads > 1`), classifies each run, and keeps the deterministic
    /// prefix that fills the profile quotas.
    ///
    /// Besides the result, the session reports its outcome to the
    /// observability layer: the `engine.failure_streak` gauge counts
    /// consecutive sessions that errored or ended short of their
    /// profile quota (perturbation loss — the `CtlResponse::Lost`
    /// symptom), and a structured `session.complete` / `session.error`
    /// event records what happened (see `stm_telemetry::log`).
    pub fn collect(self) -> Result<CollectedProfiles, SessionError> {
        let result = self.collect_inner();
        // The streak gauge must keep this single call site: snapshots
        // sum same-name gauges across call sites, so a `set(0)` here
        // could not clear a contribution added elsewhere.
        let streak = stm_telemetry::gauge!("engine.failure_streak");
        match &result {
            Ok((profiles, loss)) => {
                if loss.quota_met() {
                    streak.set(0);
                } else {
                    streak.add(1);
                }
                if stm_telemetry::log::would_log(stm_telemetry::log::Level::Info) {
                    if loss.missing_profiles > 0 || !loss.quota_met() {
                        stm_telemetry::log::info(
                            "engine",
                            "profile.lost",
                            vec![
                                ("missing_profiles", loss.missing_profiles.to_string()),
                                ("quota_shortfall", loss.shortfall.to_string()),
                            ],
                        );
                    }
                    stm_telemetry::log::info(
                        "engine",
                        "session.complete",
                        vec![
                            ("runs", profiles.stats.total_runs.to_string()),
                            ("failures", profiles.failures.len().to_string()),
                            ("successes", profiles.successes.len().to_string()),
                            ("quota_met", loss.quota_met().to_string()),
                        ],
                    );
                }
            }
            Err(e) => {
                streak.add(1);
                stm_telemetry::log::error(
                    "engine",
                    "session.error",
                    vec![("error", format!("{e:?}"))],
                );
            }
        }
        result.map(|(profiles, _)| profiles)
    }

    fn collect_inner(self) -> Result<(CollectedProfiles, SessionLoss), SessionError> {
        let spec = self.spec.ok_or(SessionError::MissingFailureSpec)?;
        self.config
            .hw
            .validate()
            .map_err(SessionError::InvalidHardware)?;
        let scan = !self.bases.is_empty();
        if scan && (!self.failing.is_empty() || !self.passing.is_empty()) {
            return Err(SessionError::ConflictingWorkloads);
        }
        let runner = Runner::new(self.machine)
            .with_run_config(self.config.run.clone())
            .with_hw_config(self.config.hw);
        let threads = resolve_threads(self.config.threads);
        let window = if self.config.chunk == 0 {
            threads.saturating_mul(16).max(1)
        } else {
            self.config.chunk
        };
        let _span = stm_telemetry::span_cat("engine.collect", "engine");

        let mut sink = Sink::default();
        let factory = |_w: usize| {
            let r = runner.clone();
            let spec = spec.clone();
            move |job: &Job| r.run_classified(&job.workload, &spec)
        };
        // The monitor ingests witnesses at the ordered consumption seam,
        // one incremental ranking update per kept run; it persists across
        // both witness phases so the success phase continues the failure
        // phase's statistics.
        let mut monitor = self
            .policy
            .map(|p| ConvergenceMonitor::new(runner.machine().layout(), spec.clone(), p));
        let mut loss = SessionLoss::default();
        if scan {
            let seeds = self.seeds.unwrap_or(0..self.config.quotas.max_runs as u64);
            let plan = JobPlan::scan(self.bases, seeds);
            let mut quota = Quota::scan(
                self.config.quotas.failure_profiles,
                self.config.quotas.success_profiles,
            );
            run_plan(
                &plan,
                threads,
                window,
                &mut quota,
                &spec,
                &mut sink,
                &mut monitor,
                &factory,
            )?;
            loss.absorb(&quota);
        } else {
            let plan = JobPlan::cycle(self.failing, self.config.quotas.max_runs as u64);
            let mut quota = Quota::witness_fail(self.config.quotas.failure_profiles, self.kind);
            run_plan(
                &plan,
                threads,
                window,
                &mut quota,
                &spec,
                &mut sink,
                &mut monitor,
                &factory,
            )?;
            loss.absorb(&quota);
            let plan = JobPlan::cycle(self.passing, self.config.quotas.max_runs as u64);
            let mut quota = Quota::witness_pass(self.config.quotas.success_profiles, self.kind);
            run_plan(
                &plan,
                threads,
                window,
                &mut quota,
                &spec,
                &mut sink,
                &mut monitor,
                &factory,
            )?;
            loss.absorb(&quota);
        }
        // A stability-policy stop leaves the quota legitimately unfilled;
        // record that before finishing so the streak accounting treats
        // the session as a success, not a shortfall.
        loss.converged_early = monitor.as_ref().is_some_and(|m| m.should_stop());
        let convergence = monitor.and_then(|m| m.finish());
        Ok((
            CollectedProfiles {
                runner,
                spec,
                kind: self.kind,
                failures: sink.failures,
                successes: sink.successes,
                stats: sink.stats,
                convergence,
            },
            loss,
        ))
    }
}

/// What a session failed to collect: runs whose class matched the quota
/// but whose profile was lost (the perturbation layer's
/// `CtlResponse::Lost` symptom), and the final quota shortfall.
#[derive(Debug, Default, Clone, Copy)]
struct SessionLoss {
    /// Quota-class runs discarded for lacking the required profile.
    missing_profiles: usize,
    /// Profiles still owed when the plans were exhausted.
    shortfall: usize,
    /// The stability policy stopped collection before the quota; the
    /// remaining shortfall is by design, not a signal problem.
    converged_early: bool,
}

impl SessionLoss {
    fn absorb(&mut self, quota: &Quota) {
        self.missing_profiles += quota.missing;
        // A `usize::MAX` quota means "keep everything the plan
        // produces", not a target the session owes — an exhaustive
        // scan is never short.
        let owed = |want: usize, got: usize| {
            if want == usize::MAX {
                0
            } else {
                want.saturating_sub(got)
            }
        };
        self.shortfall = self
            .shortfall
            .saturating_add(owed(quota.want_fail, quota.got_fail))
            .saturating_add(owed(quota.want_pass, quota.got_pass));
    }

    /// A session that filled every quota keeps the failure streak at
    /// zero even if some runs lost profiles along the way — it
    /// compensated with extra runs, which is normal operation under
    /// perturbation. Only an unfilled quota (or an error) is a failed
    /// cycle.
    fn quota_met(&self) -> bool {
        self.shortfall == 0 || self.converged_early
    }
}

/// `0` = ask the OS; otherwise the explicit count.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// One replay: its logical index (the determinism key), which workload it
/// came from (for witness naming), and the exact workload to run.
///
/// `flow` is telemetry plumbing stamped at dispatch time: the flow id
/// ties the job's enqueue, execution and ordered consumption into one
/// Chrome-trace causal chain. It stays zero when collection is off and
/// never influences execution.
#[derive(Debug, Clone)]
struct Job {
    index: u64,
    widx: usize,
    workload: Workload,
    flow: u64,
}

/// A pure index → job function; see the module docs.
#[derive(Debug)]
enum JobPlan {
    /// Witness mode: cycle the list, perturbing the seed each lap.
    Cycle {
        workloads: Vec<Workload>,
        limit: u64,
    },
    /// Scan mode: enumerate `bases × seeds`, base-major.
    Scan {
        bases: Vec<Workload>,
        start: u64,
        per_base: u64,
    },
}

impl JobPlan {
    fn cycle(workloads: Vec<Workload>, limit: u64) -> JobPlan {
        JobPlan::Cycle { workloads, limit }
    }

    fn scan(bases: Vec<Workload>, seeds: Range<u64>) -> JobPlan {
        JobPlan::Scan {
            per_base: seeds.end.saturating_sub(seeds.start),
            start: seeds.start,
            bases,
        }
    }

    fn len(&self) -> u64 {
        match self {
            JobPlan::Cycle { workloads, limit } => {
                if workloads.is_empty() {
                    0
                } else {
                    *limit
                }
            }
            JobPlan::Scan {
                bases, per_base, ..
            } => bases.len() as u64 * per_base,
        }
    }

    fn job_at(&self, index: u64) -> Job {
        match self {
            JobPlan::Cycle { workloads, .. } => {
                let n = workloads.len() as u64;
                let widx = (index % n) as usize;
                let lap = index / n;
                let base = &workloads[widx];
                let mut workload = base.clone();
                // Later laps explore fresh interleavings (same constant
                // the sequential driver used, so witnesses match).
                workload.seed = base.seed.wrapping_add(lap.wrapping_mul(0x9E37_79B9));
                Job {
                    index,
                    widx,
                    workload,
                    flow: 0,
                }
            }
            JobPlan::Scan {
                bases,
                start,
                per_base,
            } => {
                let widx = (index / per_base) as usize;
                let workload = bases[widx].clone().with_seed(start + index % per_base);
                Job {
                    index,
                    widx,
                    workload,
                    flow: 0,
                }
            }
        }
    }
}

/// What a consumed run was kept as.
enum Pick {
    Failure,
    Success,
}

/// How the consumed prefix decides which runs to keep and when to stop.
struct Quota {
    mode: QuotaMode,
    want_fail: usize,
    want_pass: usize,
    got_fail: usize,
    got_pass: usize,
    kind: Option<ProfileKind>,
    /// Runs whose class matched an unfilled quota but whose profile was
    /// absent or of the wrong ring — the observable trace of
    /// perturbation loss (`CtlResponse::Lost`).
    missing: usize,
}

enum QuotaMode {
    /// Witness fail phase: keep target failures that carry a
    /// failure-site profile (of the right ring, when pinned).
    WitnessFail,
    /// Witness pass phase: keep successes with a success-site profile.
    WitnessPass,
    /// Seed scan: keep by class alone (`find_workloads` semantics).
    Scan,
}

impl Quota {
    fn witness_fail(want: usize, kind: Option<ProfileKind>) -> Quota {
        Quota {
            mode: QuotaMode::WitnessFail,
            want_fail: want,
            want_pass: 0,
            got_fail: 0,
            got_pass: 0,
            kind,
            missing: 0,
        }
    }

    fn witness_pass(want: usize, kind: Option<ProfileKind>) -> Quota {
        Quota {
            mode: QuotaMode::WitnessPass,
            want_fail: 0,
            want_pass: want,
            got_fail: 0,
            got_pass: 0,
            kind,
            missing: 0,
        }
    }

    fn scan(want_fail: usize, want_pass: usize) -> Quota {
        Quota {
            mode: QuotaMode::Scan,
            want_fail,
            want_pass,
            got_fail: 0,
            got_pass: 0,
            kind: None,
            missing: 0,
        }
    }

    fn done(&self) -> bool {
        self.got_fail >= self.want_fail && self.got_pass >= self.want_pass
    }

    fn consider(
        &mut self,
        class: RunClass,
        report: &RunReport,
        spec: &FailureSpec,
    ) -> Option<Pick> {
        match (&self.mode, class) {
            (QuotaMode::WitnessFail, RunClass::TargetFailure) if self.got_fail < self.want_fail => {
                if profile_matches(failure_profile(report, spec), self.kind) {
                    self.got_fail += 1;
                    Some(Pick::Failure)
                } else {
                    self.missing += 1;
                    None
                }
            }
            (QuotaMode::WitnessPass, RunClass::Success) if self.got_pass < self.want_pass => {
                if profile_matches(success_profile(report, spec), self.kind) {
                    self.got_pass += 1;
                    Some(Pick::Success)
                } else {
                    self.missing += 1;
                    None
                }
            }
            (QuotaMode::Scan, RunClass::TargetFailure) if self.got_fail < self.want_fail => {
                self.got_fail += 1;
                Some(Pick::Failure)
            }
            (QuotaMode::Scan, RunClass::Success) if self.got_pass < self.want_pass => {
                self.got_pass += 1;
                Some(Pick::Success)
            }
            _ => None,
        }
    }
}

/// Does the report carry the profile the quota needs, of the right ring?
fn profile_matches(profile: Option<&ProfileEvent>, kind: Option<ProfileKind>) -> bool {
    match profile {
        None => false,
        Some(p) => match kind {
            None => true,
            Some(ProfileKind::Lbr) => matches!(p.data, ProfileData::Lbr(_)),
            Some(ProfileKind::Lcr) => matches!(p.data, ProfileData::Lcr(_)),
        },
    }
}

/// A contiguous slab of job indices handed to a worker in one channel
/// message. Workers regenerate the jobs themselves from the shared
/// [`JobPlan`], so the transport moves two integers (plus flow ids when
/// tracing) instead of a workload clone per run — the per-job channel
/// send, queue-mutex acquisition and thread wake were the dominant cost
/// of parallel collection on the paper's short workloads.
struct Chunk {
    /// First job index in the slab.
    start: u64,
    /// Number of consecutive jobs.
    len: u32,
    /// Flow ids stamped at enqueue time, one per job, empty when
    /// telemetry is off.
    flows: Vec<u64>,
    /// Enqueue timestamp for the queue-wait histogram.
    enqueued: Option<std::time::Instant>,
}

/// A chunk's results coming back from a worker in one message. Reports
/// are boxed so the vector moves pointers, not full profile payloads.
struct ChunkResult {
    /// First job index of the chunk this answers.
    start: u64,
    /// The chunk's dispatched length (for queue-depth accounting; `runs`
    /// is shorter when a job panicked).
    len: u32,
    /// Per-job outcomes for jobs `start..start + runs.len()`, in order.
    runs: Vec<(Job, Box<RunReport>, RunClass)>,
    /// The job that panicked, when one did; the worker stops its chunk
    /// there.
    panicked: Option<(u64, String)>,
}

/// Where consumed runs accumulate: the run accounting plus the collected
/// failure/success witnesses, shared across a session's plans.
#[derive(Default)]
struct Sink {
    stats: DiagnosisStats,
    failures: Vec<CollectedRun>,
    successes: Vec<CollectedRun>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Consumes one run in index order: accounts it, asks the quota whether
/// to keep it, and stores the witness.
fn consume(
    job: Job,
    report: RunReport,
    class: RunClass,
    quota: &mut Quota,
    spec: &FailureSpec,
    sink: &mut Sink,
    monitor: &mut Option<ConvergenceMonitor>,
) {
    sink.stats.total_runs += 1;
    let Some(pick) = quota.consider(class, &report, spec) else {
        return;
    };
    let (kind, is_failure) = match pick {
        Pick::Failure => ("fail", true),
        Pick::Success => ("pass", false),
    };
    let witness = format!("{kind}:w{}:seed{}", job.widx, job.workload.seed);
    // One incremental ranking update per kept run, still inside the
    // ordered consumption seam — the early-stop decision this feeds is
    // therefore identical at any thread count.
    if let Some(m) = monitor.as_mut() {
        m.observe(is_failure, &witness, &report);
    }
    let run = CollectedRun {
        witness,
        workload: job.workload,
        report,
    };
    if is_failure {
        sink.stats.failure_runs_used += 1;
        sink.failures.push(run);
    } else {
        sink.stats.success_runs_used += 1;
        sink.successes.push(run);
    }
}

/// Has an attached convergence monitor decided to stop the session?
fn converged(monitor: &Option<ConvergenceMonitor>) -> bool {
    monitor.as_ref().is_some_and(|m| m.should_stop())
}

/// Executes one plan, sequentially or on the pool, consuming results in
/// strict index order until the quota is met or the plan is exhausted.
///
/// The worker body is injected (`factory` builds one executor per
/// worker), so tests can drive the pool with hostile executors — e.g. a
/// panicking run — without a real machine.
#[allow(clippy::too_many_arguments)] // the engine's one internal seam
fn run_plan<W, F>(
    plan: &JobPlan,
    threads: usize,
    window: usize,
    quota: &mut Quota,
    spec: &FailureSpec,
    sink: &mut Sink,
    monitor: &mut Option<ConvergenceMonitor>,
    factory: &F,
) -> Result<(), SessionError>
where
    F: Fn(usize) -> W + Sync,
    W: FnMut(&Job) -> (RunReport, RunClass) + Send,
{
    let limit = plan.len();
    if limit == 0 || quota.done() || converged(monitor) {
        return Ok(());
    }

    if threads <= 1 {
        let mut exec = factory(0);
        let mut index = 0u64;
        while index < limit && !quota.done() && !converged(monitor) {
            let job = plan.job_at(index);
            let _span = stm_telemetry::span_cat("engine.job", "engine");
            stm_telemetry::counter!("engine.runs").incr();
            let jid = job.index;
            let (report, class) = catch_unwind(AssertUnwindSafe(|| exec(&job))).map_err(|p| {
                let message = panic_message(p);
                stm_telemetry::log::error(
                    "engine",
                    "worker.panic",
                    vec![("job", jid.to_string()), ("message", message.clone())],
                );
                SessionError::WorkerPanicked { job: jid, message }
            })?;
            consume(job, report, class, quota, spec, sink, monitor);
            index += 1;
        }
        return Ok(());
    }

    let depth = stm_telemetry::gauge!("engine.queue_depth");
    // Pool-size gauge: one call site for both `set`s (snapshots sum
    // same-name gauges across call sites, so a second site could not
    // zero this one).
    let workers = stm_telemetry::gauge!("engine.workers");
    workers.set(threads as i64);
    // Chunk size: the speculation window split across the pool, so a
    // full window keeps every worker holding exactly one chunk while the
    // next one is in flight.
    let chunk_size = (window / threads).max(1) as u64;
    let outcome = std::thread::scope(|s| -> Result<(), SessionError> {
        let (job_tx, job_rx) = mpsc::channel::<Chunk>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (res_tx, res_rx) = mpsc::channel::<ChunkResult>();
        for w in 0..threads {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            let mut exec = factory(w);
            s.spawn(move || {
                {
                    let _worker_span = stm_telemetry::span_cat("engine.worker", "engine");
                    // Net-zero across add(+1)/add(-1), so the shared
                    // static needs no reset between sessions.
                    let busy = stm_telemetry::gauge!("engine.workers_busy");
                    loop {
                        // Hold the lock only to dequeue, never while running.
                        let chunk = {
                            let rx = job_rx.lock().unwrap_or_else(|p| p.into_inner());
                            match rx.recv() {
                                Ok(chunk) => chunk,
                                Err(_) => break, // queue closed: drain done
                            }
                        };
                        if let Some(at) = chunk.enqueued {
                            stm_telemetry::histogram!("engine.queue_wait_us")
                                .record(at.elapsed().as_micros() as u64);
                        }
                        let mut runs = Vec::with_capacity(chunk.len as usize);
                        let mut panicked = None;
                        busy.add(1);
                        for i in 0..chunk.len as u64 {
                            let index = chunk.start + i;
                            let mut job = plan.job_at(index);
                            job.flow = chunk.flows.get(i as usize).copied().unwrap_or(0);
                            let _span = stm_telemetry::span_cat("engine.job", "engine")
                                .with_flow(job.flow, stm_telemetry::FlowPhase::Step);
                            stm_telemetry::counter!("engine.runs").incr();
                            match catch_unwind(AssertUnwindSafe(|| exec(&job))) {
                                Ok((report, class)) => {
                                    runs.push((job, Box::new(report), class));
                                }
                                Err(p) => {
                                    panicked = Some((index, panic_message(p)));
                                    break;
                                }
                            }
                        }
                        busy.add(-1);
                        let poisoned = panicked.is_some();
                        let _ = res_tx.send(ChunkResult {
                            start: chunk.start,
                            len: chunk.len,
                            runs,
                            panicked,
                        });
                        if poisoned {
                            break; // a panicked executor is not reusable
                        }
                    }
                }
                // `scope` can see this thread as finished before its TLS
                // destructors flush the span buffer; push the spans to
                // the global sink while still ahead of the join.
                stm_telemetry::flush_thread();
            });
        }
        drop(res_tx);

        let mut dispatched = 0u64;
        let mut consumed = 0u64;
        // Each parked result remembers when it arrived, so ordered
        // consumption can report how long speculation held it back.
        type Parked = (Job, RunReport, RunClass, Option<std::time::Instant>);
        let mut pending: BTreeMap<u64, Parked> = BTreeMap::new();
        let mut failure: Option<SessionError> = None;
        while consumed < limit && !quota.done() && !converged(monitor) && failure.is_none() {
            // Keep the queue primed up to the speculation window, one
            // chunk per send.
            while dispatched < limit && dispatched < consumed + window as u64 {
                let cap = (consumed + window as u64 - dispatched).min(limit - dispatched);
                let len = chunk_size.min(cap);
                let mut flows = Vec::new();
                if stm_telemetry::enabled() {
                    // Stamp the causal chain per job: enqueue → worker
                    // execution → ordered consumption share one flow id.
                    flows.reserve(len as usize);
                    for i in 0..len {
                        let flow = stm_telemetry::new_flow_id();
                        if stm_telemetry::log::would_log(stm_telemetry::log::Level::Debug) {
                            let job = plan.job_at(dispatched + i);
                            stm_telemetry::log::emit(
                                stm_telemetry::log::Level::Debug,
                                "engine",
                                "job.enqueue",
                                flow,
                                vec![
                                    ("job", job.index.to_string()),
                                    ("seed", job.workload.seed.to_string()),
                                ],
                            );
                        }
                        let _enq = stm_telemetry::span_cat("engine.enqueue", "engine")
                            .with_flow(flow, stm_telemetry::FlowPhase::Start);
                        flows.push(flow);
                    }
                }
                let chunk = Chunk {
                    start: dispatched,
                    len: len as u32,
                    flows,
                    enqueued: stm_telemetry::enabled().then(std::time::Instant::now),
                };
                if job_tx.send(chunk).is_err() {
                    break;
                }
                stm_telemetry::counter!("engine.jobs").add(len);
                depth.add(len as i64);
                dispatched += len;
            }
            let msg = match res_rx.recv() {
                Ok(msg) => msg,
                Err(_) => break, // all workers gone
            };
            depth.add(-(msg.len as i64));
            let arrived = stm_telemetry::enabled().then(std::time::Instant::now);
            for (i, (job, report, class)) in msg.runs.into_iter().enumerate() {
                pending.insert(msg.start + i as u64, (job, *report, class, arrived));
            }
            if let Some((job, message)) = msg.panicked {
                stm_telemetry::log::error(
                    "engine",
                    "worker.panic",
                    vec![("job", job.to_string()), ("message", message.clone())],
                );
                failure = Some(SessionError::WorkerPanicked { job, message });
            }
            // Consume the ready prefix, in order, re-checking the quota
            // (and the convergence stop) after each job exactly as the
            // sequential loop does.
            while !quota.done() && !converged(monitor) {
                let Some((job, report, class, arrived)) = pending.remove(&consumed) else {
                    break;
                };
                if let Some(at) = arrived {
                    stm_telemetry::histogram!("engine.result_holdback_us")
                        .record(at.elapsed().as_micros() as u64);
                }
                let _span = stm_telemetry::span_cat("engine.consume", "engine")
                    .with_flow(job.flow, stm_telemetry::FlowPhase::End);
                consume(job, report, class, quota, spec, sink, monitor);
                consumed += 1;
            }
        }

        // Stop feeding; let the workers drain the queue and exit, then
        // account the speculative overshoot.
        drop(job_tx);
        for msg in res_rx.iter() {
            depth.add(-(msg.len as i64));
        }
        stm_telemetry::counter!("engine.jobs_discarded").add(dispatched.saturating_sub(consumed));
        depth.set(0);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    });
    workers.set(0);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::InstrumentOptions;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ids::LogSiteId;
    use stm_machine::ir::BinOp;

    /// Error iff input 0 is negative (same shape as the diagnose tests).
    fn guarded_program() -> (Program, LogSiteId) {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let site;
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let ok = f.new_block();
            let x = f.read_input(0);
            let neg = f.bin(BinOp::Lt, x, 0);
            f.at(10);
            f.br(neg, err, ok);
            f.set_block(err);
            f.at(11);
            site = f.log_error("x must be non-negative");
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.output(x);
            f.ret(None);
            f.finish();
        }
        (pb.finish(main), site)
    }

    fn session(threads: usize) -> Result<CollectedProfiles, SessionError> {
        let (p, site) = guarded_program();
        DiagnosisSession::new(&p)
            .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
            .failure(FailureSpec::ErrorLogAt(site))
            .failing((0..4).map(|i| Workload::new(vec![-1 - i])).collect())
            .passing((0..4).map(|i| Workload::new(vec![1 + i])).collect())
            .failure_profiles(6)
            .success_profiles(6)
            .threads(threads)
            .collect()
    }

    #[test]
    fn missing_spec_is_an_error() {
        let (p, _) = guarded_program();
        let err = DiagnosisSession::new(&p)
            .failing(vec![Workload::new(vec![-1])])
            .collect()
            .unwrap_err();
        assert_eq!(err, SessionError::MissingFailureSpec);
    }

    #[test]
    fn zero_capacity_ring_is_a_typed_error_not_a_clamp() {
        let (p, site) = guarded_program();
        for (lbr_entries, lcr_entries, want) in [
            (0usize, 16usize, stm_hardware::HwConfigError::ZeroLbrEntries),
            (16, 0, stm_hardware::HwConfigError::ZeroLcrEntries),
        ] {
            let err = DiagnosisSession::new(&p)
                .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
                .failure(FailureSpec::ErrorLogAt(site))
                .failing(vec![Workload::new(vec![-1])])
                .hw_config(stm_hardware::HwConfig {
                    lbr_entries,
                    lcr_entries,
                    ..stm_hardware::HwConfig::default()
                })
                .collect()
                .unwrap_err();
            assert_eq!(err, SessionError::InvalidHardware(want));
        }
    }

    #[test]
    fn malformed_perturbation_is_rejected_before_any_run() {
        let (p, site) = guarded_program();
        let err = DiagnosisSession::new(&p)
            .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
            .failure(FailureSpec::ErrorLogAt(site))
            .failing(vec![Workload::new(vec![-1])])
            .hw_config(stm_hardware::HwConfig {
                perturb: stm_hardware::PerturbConfig::NONE.truncate_lbr(0),
                ..stm_hardware::HwConfig::default()
            })
            .collect()
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::InvalidHardware(stm_hardware::HwConfigError::ZeroTruncation {
                ring: "lbr"
            })
        ));
    }

    #[test]
    fn extreme_perturbations_complete_without_panicking() {
        // Ring size 1 plus total entry drop plus total snapshot loss: no
        // profile can survive, but collection must terminate cleanly at
        // its run cap rather than panic or hang.
        let (p, site) = guarded_program();
        let profiles = DiagnosisSession::new(&p)
            .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
            .failure(FailureSpec::ErrorLogAt(site))
            .failing(vec![Workload::new(vec![-1])])
            .passing(vec![Workload::new(vec![1])])
            .failure_profiles(2)
            .success_profiles(2)
            .max_runs(8)
            .hw_config(stm_hardware::HwConfig {
                lbr_entries: 1,
                perturb: stm_hardware::PerturbConfig::NONE
                    .drop_rate(1.0)
                    .loss_rate(1.0),
                ..stm_hardware::HwConfig::default()
            })
            .collect()
            .expect("collection terminates");
        // Every snapshot was lost, so no witness carries a profile.
        assert!(profiles.failure_runs().is_empty());
        assert!(profiles.success_runs().is_empty());
        assert_eq!(profiles.stats().total_runs, 16, "both phases hit the cap");
    }

    #[test]
    fn witness_and_scan_workloads_conflict() {
        let (p, site) = guarded_program();
        let err = DiagnosisSession::new(&p)
            .failure(FailureSpec::ErrorLogAt(site))
            .failing(vec![Workload::new(vec![-1])])
            .workloads(vec![Workload::new(vec![-1])])
            .collect()
            .unwrap_err();
        assert_eq!(err, SessionError::ConflictingWorkloads);
    }

    #[test]
    fn parallel_collection_matches_sequential_exactly() {
        let seq = session(1).expect("sequential collection");
        for threads in [2, 4, 8] {
            let par = session(threads).expect("parallel collection");
            assert_eq!(par.stats(), seq.stats(), "stats at {threads} threads");
            let w =
                |runs: &[CollectedRun]| runs.iter().map(|r| r.witness.clone()).collect::<Vec<_>>();
            assert_eq!(w(par.failure_runs()), w(seq.failure_runs()));
            assert_eq!(w(par.success_runs()), w(seq.success_runs()));
            assert_eq!(par.lbra().ranked, seq.lbra().ranked);
        }
    }

    #[test]
    fn scan_mode_finds_witnesses_in_seed_order() {
        let (p, site) = guarded_program();
        // The class depends only on the input, so every seed matches:
        // the first `failure_profiles` seeds must come back, in order.
        let profiles = DiagnosisSession::new(&p)
            .instrument(&InstrumentOptions::lbrlog())
            .failure(FailureSpec::ErrorLogAt(site))
            .workloads(vec![Workload::new(vec![-3])])
            .seeds(5..50)
            .failure_profiles(3)
            .success_profiles(0)
            .threads(4)
            .collect()
            .expect("scan collection");
        let seeds: Vec<u64> = profiles
            .failing_workloads()
            .iter()
            .map(|w| w.seed)
            .collect();
        assert_eq!(seeds, vec![5, 6, 7]);
        assert_eq!(profiles.stats().total_runs, 3, "stops at the quota");
    }

    #[test]
    fn poisoned_worker_surfaces_as_error_not_hang() {
        // Drive the pool with an executor that panics on the third job.
        let plan = JobPlan::cycle(vec![Workload::new(vec![0])], 64);
        let mut quota = Quota::scan(64, 0);
        let spec = FailureSpec::AnyCrash;
        let mut sink = Sink::default();
        let factory = |_w: usize| {
            |job: &Job| -> (RunReport, RunClass) {
                if job.index >= 2 {
                    panic!("poisoned run");
                }
                // Never returns a report before the poison triggers: the
                // first two jobs produce a real (trivial) run.
                let (p, _) = guarded_program();
                let runner = Runner::new(Machine::new(p));
                runner.run_classified(&job.workload, &FailureSpec::AnyCrash)
            }
        };
        let err = run_plan(
            &plan, 4, 8, &mut quota, &spec, &mut sink, &mut None, &factory,
        )
        .unwrap_err();
        match err {
            SessionError::WorkerPanicked { message, .. } => {
                assert!(message.contains("poisoned run"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
}
