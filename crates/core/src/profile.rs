//! Decoding raw LBR/LCR snapshots into source-level events.
//!
//! A raw LBR snapshot is a list of `(from, to)` address pairs; a raw LCR
//! snapshot is a list of `(pc, state, access)` records. The diagnosis
//! system reasons about *source-level events*: (conditional branch,
//! outcome) pairs for LBR and (source location, state, access kind) triples
//! for LCR. This module performs the mapping through the program's
//! [`Layout`].

use std::collections::BTreeSet;
use std::fmt;
use stm_machine::events::{AccessKind, BranchRecord, CoherenceRecord, CoherenceState};
use stm_machine::ids::BranchId;
use stm_machine::ir::{Program, SourceLoc};
use stm_machine::layout::{Decoded, Layout};

/// A source-level branch event: a conditional branch together with the
/// outcome an LBR record proves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchOutcome {
    /// The source branch.
    pub branch: BranchId,
    /// `true` = the then-edge was taken.
    pub outcome: bool,
}

impl fmt::Display for BranchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={}",
            self.branch,
            if self.outcome { "true" } else { "false" }
        )
    }
}

/// A source-level coherence event: the location of an access plus the MESI
/// state it observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoherenceEvent {
    /// Source location of the access (unknown for driver pollution).
    pub loc: SourceLoc,
    /// The observed MESI state.
    pub state: CoherenceState,
    /// Load or store.
    pub access: AccessKind,
}

impl fmt::Display for CoherenceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:{}", self.access, self.loc, self.state)
    }
}

/// One decoded entry of an LBR snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedLbrEntry {
    /// Position in the snapshot: 1 = most recent.
    pub position: usize,
    /// The raw record.
    pub record: BranchRecord,
    /// What the record's `from` address decodes to, if anything.
    pub decoded: Option<Decoded>,
}

impl DecodedLbrEntry {
    /// The source branch outcome this entry proves, if it is one edge of a
    /// conditional.
    pub fn branch_outcome(&self) -> Option<BranchOutcome> {
        match self.decoded {
            Some(Decoded::SourceBranch {
                branch, outcome, ..
            }) => Some(BranchOutcome { branch, outcome }),
            _ => None,
        }
    }
}

/// Decodes an LBR snapshot (most recent first) against a layout.
pub fn decode_lbr(layout: &Layout, snapshot: &[BranchRecord]) -> Vec<DecodedLbrEntry> {
    stm_machine::ring::walk(snapshot)
        .map(|(position, r)| DecodedLbrEntry {
            position,
            record: *r,
            decoded: layout.decode_branch(r.from),
        })
        .collect()
}

/// Extracts the set of source branch outcomes present in an LBR snapshot.
pub fn lbr_events(layout: &Layout, snapshot: &[BranchRecord]) -> BTreeSet<BranchOutcome> {
    decode_lbr(layout, snapshot)
        .iter()
        .filter_map(DecodedLbrEntry::branch_outcome)
        .collect()
}

/// One decoded entry of an LCR snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedLcrEntry {
    /// Position in the snapshot: 1 = most recent.
    pub position: usize,
    /// The raw record.
    pub record: CoherenceRecord,
    /// The source-level event.
    pub event: CoherenceEvent,
}

/// Decodes an LCR snapshot (most recent first) against a layout.
pub fn decode_lcr(layout: &Layout, snapshot: &[CoherenceRecord]) -> Vec<DecodedLcrEntry> {
    stm_machine::ring::walk(snapshot)
        .map(|(position, r)| {
            let loc = layout
                .decode_stmt(r.pc)
                .map(|s| s.loc)
                .unwrap_or(SourceLoc::UNKNOWN);
            DecodedLcrEntry {
                position,
                record: *r,
                event: CoherenceEvent {
                    loc,
                    state: r.state,
                    access: r.access,
                },
            }
        })
        .collect()
}

/// Extracts the set of coherence events present in an LCR snapshot.
pub fn lcr_events(layout: &Layout, snapshot: &[CoherenceRecord]) -> BTreeSet<CoherenceEvent> {
    decode_lcr(layout, snapshot)
        .iter()
        .map(|e| e.event)
        .collect()
}

/// Position (1 = most recent) of the first LBR entry proving an outcome of
/// `branch`, as LBRLOG reports it (Table 6's "n-th latest entry").
pub fn lbr_position_of_branch(
    layout: &Layout,
    snapshot: &[BranchRecord],
    branch: BranchId,
) -> Option<usize> {
    decode_lbr(layout, snapshot)
        .iter()
        .find(|e| e.branch_outcome().map(|b| b.branch) == Some(branch))
        .map(|e| e.position)
}

/// Position (1 = most recent) of the first LCR entry matching a location
/// and state, as LCRLOG reports it (Table 7).
pub fn lcr_position_of_event(
    layout: &Layout,
    snapshot: &[CoherenceRecord],
    loc: SourceLoc,
    state: CoherenceState,
) -> Option<usize> {
    decode_lcr(layout, snapshot)
        .iter()
        .find(|e| e.event.loc == loc && e.event.state == state)
        .map(|e| e.position)
}

/// Renders a decoded LBR snapshot as the human-readable listing LBRLOG
/// attaches to a failure log.
pub fn render_lbr_log(program: &Program, entries: &[DecodedLbrEntry]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in entries {
        let desc = match e.decoded {
            Some(Decoded::SourceBranch {
                branch,
                outcome,
                loc,
                ..
            }) => {
                format!(
                    "branch {branch} at {} taken {}",
                    program.render_loc(loc),
                    if outcome { "TRUE" } else { "FALSE" }
                )
            }
            Some(Decoded::PlainJump { loc, .. }) => {
                format!("jump at {}", program.render_loc(loc))
            }
            Some(Decoded::Call { loc, .. }) => format!("call at {}", program.render_loc(loc)),
            Some(Decoded::Return { loc, .. }) => {
                format!("return at {}", program.render_loc(loc))
            }
            None => "<unmapped>".to_string(),
        };
        let _ = writeln!(
            out,
            "  [{:2}] {:#010x} -> {:#010x}  {}",
            e.position, e.record.from, e.record.to, desc
        );
    }
    out
}

/// Renders a decoded LCR snapshot as the listing LCRLOG attaches.
pub fn render_lcr_log(program: &Program, entries: &[DecodedLcrEntry]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in entries {
        let _ = writeln!(
            out,
            "  [{:2}] {:#010x}  {:5} observed {}  at {}",
            e.position,
            e.record.pc,
            e.event.access.to_string(),
            e.event.state,
            program.render_loc(e.event.loc)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_hardware::HardwareCtx;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::events::{BranchKind, CtlResponse, Hardware, HwCtlOp};
    use stm_machine::ids::{CoreId, ThreadId};
    use stm_machine::interp::{Machine, RunConfig};
    use stm_machine::ir::BinOp;

    /// Build a program with one conditional branch and run it with LBR
    /// enabled from the start (manually, without the transformer).
    fn run_with_lbr(input: i64) -> (Machine, Vec<BranchRecord>) {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        let t = f.new_block();
        let e = f.new_block();
        f.push(stm_machine::ir::Instr::HwCtl {
            op: HwCtlOp::EnableLbr,
            site: None,
            role: stm_machine::ir::ProfileRole::FailureSite,
        });
        let x = f.read_input(0);
        let c = f.bin(BinOp::Gt, x, 10);
        f.br(c, t, e);
        f.set_block(t);
        f.output(1);
        f.ret(None);
        f.set_block(e);
        f.output(2);
        f.ret(None);
        f.finish();
        let m = Machine::new(pb.finish(main));
        let mut hw = HardwareCtx::with_defaults();
        m.run(&[input], &RunConfig::default(), &mut hw);
        // Read core 0's LBR directly.
        let snap = match hw.ctl(CoreId(0), ThreadId::MAIN, HwCtlOp::ProfileLbr) {
            CtlResponse::Lbr(s) => s,
            _ => unreachable!(),
        };
        (m, snap)
    }

    #[test]
    fn decode_recovers_branch_and_outcome() {
        let (m, snap) = run_with_lbr(42);
        let events = lbr_events(m.layout(), &snap);
        assert!(events.contains(&BranchOutcome {
            branch: BranchId::new(0),
            outcome: true
        }));
        let (m, snap) = run_with_lbr(3);
        let events = lbr_events(m.layout(), &snap);
        assert!(events.contains(&BranchOutcome {
            branch: BranchId::new(0),
            outcome: false
        }));
    }

    #[test]
    fn positions_start_at_one_for_most_recent() {
        let (m, snap) = run_with_lbr(42);
        let decoded = decode_lbr(m.layout(), &snap);
        assert_eq!(decoded[0].position, 1);
        let pos = lbr_position_of_branch(m.layout(), &snap, BranchId::new(0));
        assert!(pos.is_some());
    }

    #[test]
    fn render_lbr_log_mentions_outcomes() {
        let (m, snap) = run_with_lbr(42);
        let decoded = decode_lbr(m.layout(), &snap);
        let text = render_lbr_log(m.program(), &decoded);
        assert!(text.contains("taken TRUE"), "{text}");
    }

    #[test]
    fn non_conditional_records_do_not_become_events() {
        // A kernel-visible snapshot with only a call record decodes to no
        // branch-outcome events.
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.ret(None);
        f.finish();
        let m = Machine::new(pb.finish(main));
        let snap = vec![BranchRecord {
            from: 0xdead,
            to: 0xbeef,
            kind: BranchKind::NearRelCall,
        }];
        assert!(lbr_events(m.layout(), &snap).is_empty());
    }
}
