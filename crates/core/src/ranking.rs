//! The statistical failure-predictor ranking model of §5.2.
//!
//! Each run contributes one *profile*: the set of events recorded in
//! LBR/LCR at (or near) the failure site. For an event `e`:
//!
//! * **prediction precision** = `|F ∧ e| / |e|` — of the runs whose profile
//!   contains `e`, how many failed;
//! * **prediction recall** = `|F ∧ e| / |F|` — of the failing runs, how
//!   many contain `e`.
//!
//! Events are ranked by the harmonic mean of the two. The model optionally
//! also scores *absence* predictors (`¬e`), which §4.2.2 needs for
//! read-too-early order violations under the space-saving LCR
//! configuration ("failures are highly correlated with B2 *not*
//! encountering a shared state").

use std::collections::BTreeSet;

/// Whether a predictor fires on the presence or the absence of its event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// The event's presence in a profile predicts failure.
    Present,
    /// The event's absence from a profile predicts failure.
    Absent,
}

/// A scored failure predictor, carrying the full evidence trail that
/// produced its rank: the precision/recall split, the match counts, and
/// the ids of the runs supporting (and contradicting) the prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedEvent<E> {
    /// The event.
    pub event: E,
    /// Presence or absence predictor.
    pub polarity: Polarity,
    /// Prediction precision `|F∧e| / |e|`.
    pub precision: f64,
    /// Prediction recall `|F∧e| / |F|`.
    pub recall: f64,
    /// Harmonic mean of precision and recall — the ranking key.
    pub score: f64,
    /// Number of failure runs matching the predictor.
    pub failure_matches: usize,
    /// Number of success runs matching the predictor.
    pub success_matches: usize,
    /// Ids of the failure runs matching the predictor — the runs that
    /// voted for it.
    pub failure_witnesses: Vec<String>,
    /// Ids of the success runs matching the predictor — the runs that
    /// dilute its precision.
    pub success_witnesses: Vec<String>,
}

impl<E> RankedEvent<E> {
    /// Total number of profiles matching the predictor, `|e|` (or `|¬e|`).
    pub fn total_matches(&self) -> usize {
        self.failure_matches + self.success_matches
    }
}

/// One run's contribution to the model: its id and its event set.
#[derive(Debug, Clone)]
struct Profile<E> {
    id: String,
    events: BTreeSet<E>,
}

/// Accumulates profiles and ranks events.
#[derive(Debug, Clone)]
pub struct RankingModel<E> {
    failure_profiles: Vec<Profile<E>>,
    success_profiles: Vec<Profile<E>>,
}

impl<E: Ord + Clone> RankingModel<E> {
    /// Creates an empty model.
    pub fn new() -> Self {
        RankingModel {
            failure_profiles: Vec::new(),
            success_profiles: Vec::new(),
        }
    }

    /// Adds one run's profile under an auto-generated id (`F#n` / `S#n`).
    pub fn add_profile(&mut self, is_failure: bool, events: BTreeSet<E>) {
        let id = if is_failure {
            format!("F#{}", self.failure_profiles.len())
        } else {
            format!("S#{}", self.success_profiles.len())
        };
        self.add_profile_named(is_failure, id, events);
    }

    /// Adds one run's profile under an explicit id (e.g. the workload and
    /// scheduler seed that produced it), so ranked events can name the
    /// exact runs that voted for them.
    pub fn add_profile_named(
        &mut self,
        is_failure: bool,
        id: impl Into<String>,
        events: BTreeSet<E>,
    ) {
        let p = Profile {
            id: id.into(),
            events,
        };
        if is_failure {
            self.failure_profiles.push(p);
        } else {
            self.success_profiles.push(p);
        }
    }

    /// Number of failure profiles collected so far.
    pub fn failure_count(&self) -> usize {
        self.failure_profiles.len()
    }

    /// Number of success profiles collected so far.
    pub fn success_count(&self) -> usize {
        self.success_profiles.len()
    }

    fn universe(&self) -> BTreeSet<E> {
        let mut u = BTreeSet::new();
        for p in self.failure_profiles.iter().chain(&self.success_profiles) {
            u.extend(p.events.iter().cloned());
        }
        u
    }

    fn score_one(&self, event: &E, polarity: Polarity) -> RankedEvent<E> {
        let matches = |p: &Profile<E>| match polarity {
            Polarity::Present => p.events.contains(event),
            Polarity::Absent => !p.events.contains(event),
        };
        let failure_witnesses: Vec<String> = self
            .failure_profiles
            .iter()
            .filter(|p| matches(p))
            .map(|p| p.id.clone())
            .collect();
        let success_witnesses: Vec<String> = self
            .success_profiles
            .iter()
            .filter(|p| matches(p))
            .map(|p| p.id.clone())
            .collect();
        let f = failure_witnesses.len();
        let s = success_witnesses.len();
        let total_f = self.failure_profiles.len();
        let precision = if f + s > 0 {
            f as f64 / (f + s) as f64
        } else {
            0.0
        };
        let recall = if total_f > 0 {
            f as f64 / total_f as f64
        } else {
            0.0
        };
        let score = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        // The three values are ratios of finite counts with guarded
        // denominators; a non-finite score would silently scramble every
        // downstream sort, so fail loudly here instead.
        debug_assert!(
            precision.is_finite() && recall.is_finite() && score.is_finite(),
            "non-finite ranking score (precision {precision}, recall {recall}, score {score})"
        );
        RankedEvent {
            event: event.clone(),
            polarity,
            precision,
            recall,
            score,
            failure_matches: f,
            success_matches: s,
            failure_witnesses,
            success_witnesses,
        }
    }

    /// Ranks all presence predictors, best first.
    ///
    /// Tie-breaking is deterministic: predictors with equal harmonic score
    /// are ordered by their event's `Ord` order (ascending). Downstream
    /// re-sorts (e.g. the failure-proximity tie-break of
    /// [`lbra`](crate::diagnose::lbra)) are stable, so rank numbers are
    /// reproducible run to run for identical profile sets.
    #[must_use = "ranking computes scores without storing them; use the returned list"]
    pub fn rank(&self) -> Vec<RankedEvent<E>> {
        let mut ranked: Vec<RankedEvent<E>> = self
            .universe()
            .iter()
            .map(|e| self.score_one(e, Polarity::Present))
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.event.cmp(&b.event))
        });
        ranked
    }

    /// Ranks presence *and* absence predictors, best first.
    ///
    /// Tie-breaking is deterministic: equal harmonic scores order by the
    /// event's `Ord` order, then `Present` before `Absent` — so a
    /// presence predictor always precedes its own absence twin when both
    /// score the same.
    #[must_use = "ranking computes scores without storing them; use the returned list"]
    pub fn rank_with_absence(&self) -> Vec<RankedEvent<E>> {
        let mut ranked: Vec<RankedEvent<E>> = Vec::new();
        for e in self.universe().iter() {
            ranked.push(self.score_one(e, Polarity::Present));
            ranked.push(self.score_one(e, Polarity::Absent));
        }
        ranked.sort_by(|a, b| {
            b.score.total_cmp(&a.score).then_with(|| {
                a.event
                    .cmp(&b.event)
                    .then_with(|| a.polarity.cmp(&b.polarity))
            })
        });
        ranked
    }

    /// 1-based rank of the first predictor satisfying `pred` in the given
    /// ranking.
    #[must_use = "the computed rank is the result; use it"]
    pub fn rank_of(
        ranked: &[RankedEvent<E>],
        pred: impl FnMut(&RankedEvent<E>) -> bool,
    ) -> Option<usize> {
        ranked.iter().position(pred).map(|i| i + 1)
    }
}

impl<E: Ord + Clone> Default for RankingModel<E> {
    fn default() -> Self {
        RankingModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn perfect_predictor_ranks_first() {
        let mut m = RankingModel::new();
        for _ in 0..10 {
            m.add_profile(true, set(&["root", "noise"]));
            m.add_profile(false, set(&["noise"]));
        }
        let ranked = m.rank();
        assert_eq!(ranked[0].event, "root");
        assert_eq!(ranked[0].precision, 1.0);
        assert_eq!(ranked[0].recall, 1.0);
        assert_eq!(ranked[0].score, 1.0);
        // Noise appears everywhere: precision 0.5, recall 1.0.
        let noise = ranked.iter().find(|r| r.event == "noise").unwrap();
        assert!((noise.score - (2.0 * 0.5 / 1.5)).abs() < 1e-9);
    }

    #[test]
    fn success_only_event_scores_zero() {
        let mut m = RankingModel::new();
        m.add_profile(true, set(&["a"]));
        m.add_profile(false, set(&["b"]));
        let ranked = m.rank();
        let b = ranked.iter().find(|r| r.event == "b").unwrap();
        assert_eq!(b.score, 0.0);
    }

    #[test]
    fn imperfect_recall_lowers_score() {
        // Event appears in 5 of 10 failure runs, never in success runs.
        let mut m = RankingModel::new();
        for i in 0..10 {
            let p = if i < 5 { set(&["e"]) } else { set(&[]) };
            m.add_profile(true, p);
            m.add_profile(false, set(&[]));
        }
        let ranked = m.rank();
        let e = &ranked[0];
        assert_eq!(e.event, "e");
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 0.5);
        assert!((e.score - (2.0 * 0.5 / 1.5)).abs() < 1e-9);
    }

    #[test]
    fn absence_predictor_wins_when_event_vanishes_in_failures() {
        // "B2 observed Shared" appears in every success run and no failure
        // run: its absence is the perfect predictor.
        let mut m = RankingModel::new();
        for _ in 0..10 {
            m.add_profile(true, set(&["noise"]));
            m.add_profile(false, set(&["b2-shared", "noise"]));
        }
        let ranked = m.rank_with_absence();
        assert_eq!(ranked[0].event, "b2-shared");
        assert_eq!(ranked[0].polarity, Polarity::Absent);
        assert_eq!(ranked[0].score, 1.0);
    }

    #[test]
    fn rank_of_is_one_based() {
        let mut m = RankingModel::new();
        m.add_profile(true, set(&["x"]));
        m.add_profile(false, set(&["y"]));
        let ranked = m.rank();
        assert_eq!(RankingModel::rank_of(&ranked, |r| r.event == "x"), Some(1));
    }

    #[test]
    fn multiple_failure_sites_do_not_break_relative_ranking() {
        // §5.3 "multiple failures": even when the best predictor misses
        // some failure runs (two root causes at one site), it still beats
        // noise.
        let mut m = RankingModel::new();
        for i in 0..10 {
            let p = if i % 2 == 0 {
                set(&["rootA", "noise"])
            } else {
                set(&["rootB", "noise"])
            };
            m.add_profile(true, p);
            m.add_profile(false, set(&["noise"]));
        }
        let ranked = m.rank();
        let score_of = |name: &str| ranked.iter().find(|r| r.event == name).unwrap().score;
        // Each root's perfect precision compensates for its halved recall:
        // neither falls below the omnipresent noise event.
        assert!(score_of("rootA") >= score_of("noise"));
        assert!(score_of("rootB") >= score_of("noise"));
        assert!(score_of("rootA") > 0.5);
    }

    #[test]
    fn witnesses_name_the_supporting_runs() {
        let mut m = RankingModel::new();
        m.add_profile_named(true, "fail:seed7", set(&["root", "noise"]));
        m.add_profile_named(true, "fail:seed9", set(&["root"]));
        m.add_profile_named(false, "pass:seed1", set(&["noise"]));
        let ranked = m.rank();
        let root = ranked.iter().find(|r| r.event == "root").unwrap();
        assert_eq!(root.failure_witnesses, vec!["fail:seed7", "fail:seed9"]);
        assert!(root.success_witnesses.is_empty());
        assert_eq!(root.total_matches(), 2);
        let noise = ranked.iter().find(|r| r.event == "noise").unwrap();
        assert_eq!(noise.failure_witnesses, vec!["fail:seed7"]);
        assert_eq!(noise.success_witnesses, vec!["pass:seed1"]);
    }

    #[test]
    fn auto_ids_count_per_class() {
        let mut m = RankingModel::new();
        m.add_profile(true, set(&["a"]));
        m.add_profile(false, set(&["a"]));
        m.add_profile(true, set(&["a"]));
        let ranked = m.rank();
        let a = &ranked[0];
        assert_eq!(a.failure_witnesses, vec!["F#0", "F#1"]);
        assert_eq!(a.success_witnesses, vec!["S#0"]);
    }

    #[test]
    fn absence_witnesses_are_the_runs_missing_the_event() {
        let mut m = RankingModel::new();
        m.add_profile_named(true, "f0", set(&["noise"]));
        m.add_profile_named(false, "s0", set(&["guard", "noise"]));
        let ranked = m.rank_with_absence();
        let absent = ranked
            .iter()
            .find(|r| r.event == "guard" && r.polarity == Polarity::Absent)
            .unwrap();
        assert_eq!(absent.failure_witnesses, vec!["f0"]);
        assert!(absent.success_witnesses.is_empty());
    }

    #[test]
    fn equal_scores_tie_break_by_event_then_polarity() {
        // Two events, each in exactly one (distinct) failure profile, no
        // successes: identical precision/recall. The tie resolves by
        // event order; with absence predictors, Present precedes Absent
        // for the same event and score.
        let mut m = RankingModel::new();
        m.add_profile(true, set(&["alpha"]));
        m.add_profile(true, set(&["beta"]));
        let ranked = m.rank();
        assert_eq!(ranked[0].event, "alpha");
        assert_eq!(ranked[1].event, "beta");
        // Deterministic across repeated rankings of the same model.
        for _ in 0..5 {
            assert_eq!(m.rank(), ranked);
        }
        let with_absence = m.rank_with_absence();
        for pair in with_absence.windows(2) {
            let same_score = (pair[0].score - pair[1].score).abs() < 1e-12;
            if same_score && pair[0].event == pair[1].event {
                assert_eq!(pair[0].polarity, Polarity::Present);
                assert_eq!(pair[1].polarity, Polarity::Absent);
            }
        }
    }

    #[test]
    fn empty_model_ranks_nothing() {
        let m: RankingModel<String> = RankingModel::new();
        assert!(m.rank().is_empty());
        assert_eq!(m.failure_count(), 0);
        assert_eq!(m.success_count(), 0);
    }

    #[test]
    fn ranking_is_invariant_under_profile_insertion_order() {
        // The same profile multiset added in three different orders must
        // produce identical rankings (scores, order, and counts — witness
        // ids are position-dependent by design, so compare them by set).
        let profiles: Vec<(bool, BTreeSet<String>)> = vec![
            (true, set(&["root", "noise"])),
            (true, set(&["root"])),
            (true, set(&["noise"])),
            (false, set(&["noise", "guard"])),
            (false, set(&["guard"])),
        ];
        let build = |order: &[usize]| {
            let mut m = RankingModel::new();
            for &i in order {
                let (is_failure, events) = &profiles[i];
                m.add_profile(*is_failure, events.clone());
            }
            m
        };
        let strip = |ranked: Vec<RankedEvent<String>>| {
            ranked
                .into_iter()
                .map(|r| {
                    (
                        r.event,
                        r.polarity,
                        r.score.to_bits(),
                        r.failure_matches,
                        r.success_matches,
                    )
                })
                .collect::<Vec<_>>()
        };
        let baseline = build(&[0, 1, 2, 3, 4]);
        for order in [[4, 3, 2, 1, 0], [2, 4, 0, 3, 1]] {
            let m = build(&order);
            assert_eq!(strip(m.rank()), strip(baseline.rank()));
            assert_eq!(
                strip(m.rank_with_absence()),
                strip(baseline.rank_with_absence())
            );
        }
    }

    #[test]
    fn zero_failing_profiles_rank_nan_free() {
        // Success-only models hit every guarded denominator (|F| = 0 and,
        // for presence predictors with no matches, |e| = 0). All scores
        // must come out finite and zero — never NaN.
        let mut m = RankingModel::new();
        m.add_profile(false, set(&["a", "b"]));
        m.add_profile(false, set(&["b"]));
        for r in m.rank().into_iter().chain(m.rank_with_absence()) {
            assert!(r.precision.is_finite(), "{:?}", r.event);
            assert!(r.recall.is_finite(), "{:?}", r.event);
            assert!(r.score.is_finite(), "{:?}", r.event);
            assert_eq!(r.score, 0.0);
        }
    }
}
