//! The source-to-source instrumentation transformer of §5.1.
//!
//! Given an uninstrumented program, [`instrument`] produces the deployable
//! variant:
//!
//! 1. **toggling wrappers** around library functions — each wrapper
//!    disables LBR/LCR on entry, calls the original, and re-enables on
//!    exit, so library branches and accesses do not pollute the precious
//!    short-term memory (§4.3);
//! 2. **enable-at-main** — configure, clean and enable the facilities at
//!    the entry of `main` (Fig. 7);
//! 3. **failure-site profiling** — right before every failure-logging call,
//!    disable, profile, re-enable;
//! 4. **fault handler** — register LBR/LCR profiling in the segmentation
//!    fault handler;
//! 5. **success-site profiling** (LBRA/LCRA only, Fig. 8) — profile right
//!    before the conditional branch that jumps into a failure-logging
//!    block, and (reactive scheme) right after instructions observed to
//!    fault.

use stm_machine::events::{lbr_select, HwCtlOp, LcrConfig};
use stm_machine::ids::{FuncId, LogSiteId, VarId};
use stm_machine::ir::{
    BasicBlock, Callee, FaultProfile, Function, Instr, LogKind, Operand, ProfileRole, Program,
    SourceLoc, Stmt, Terminator,
};

/// Which success-site profiling scheme to install (§5.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SuccessSites {
    /// No success-site profiling (LBRLOG/LCRLOG mode).
    #[default]
    None,
    /// The proactive scheme: instrument the success site of **every**
    /// failure-logging site before release. Cannot cover unexpected
    /// failure locations (segfaults).
    Proactive,
    /// The reactive scheme: instrument only the success sites matching
    /// failures already observed in the field.
    Reactive {
        /// Failure-logging sites whose success sites to instrument.
        log_sites: Vec<LogSiteId>,
        /// `(function, location)` pairs of instructions observed to fault;
        /// the statement *after* each is a success logging site.
        fault_locs: Vec<(FuncId, SourceLoc)>,
    },
}

/// Options controlling [`instrument`].
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentOptions {
    /// Deploy the LBR machinery.
    pub lbr: bool,
    /// Deploy the LCR machinery.
    pub lcr: bool,
    /// Generate toggling wrappers around library functions.
    pub toggle_libraries: bool,
    /// Success-site scheme.
    pub success_sites: SuccessSites,
    /// `LBR_SELECT` mask programmed at startup.
    pub lbr_select: u32,
    /// LCR event selection programmed at startup.
    pub lcr_config: LcrConfig,
}

impl InstrumentOptions {
    /// LBRLOG with toggling (the paper's default deployment).
    pub fn lbrlog() -> Self {
        InstrumentOptions {
            lbr: true,
            lcr: false,
            toggle_libraries: true,
            success_sites: SuccessSites::None,
            lbr_select: lbr_select::DIAGNOSIS,
            lcr_config: LcrConfig::default(),
        }
    }

    /// LBRLOG without toggling (the higher-performance, lower-capability
    /// ablation of Table 6).
    pub fn lbrlog_without_toggling() -> Self {
        InstrumentOptions {
            toggle_libraries: false,
            ..InstrumentOptions::lbrlog()
        }
    }

    /// LBRA in proactive mode.
    pub fn lbra_proactive() -> Self {
        InstrumentOptions {
            success_sites: SuccessSites::Proactive,
            ..InstrumentOptions::lbrlog()
        }
    }

    /// LBRA in reactive mode for the given observed failures.
    pub fn lbra_reactive(log_sites: Vec<LogSiteId>, fault_locs: Vec<(FuncId, SourceLoc)>) -> Self {
        InstrumentOptions {
            success_sites: SuccessSites::Reactive {
                log_sites,
                fault_locs,
            },
            ..InstrumentOptions::lbrlog()
        }
    }

    /// LCRLOG with the given LCR configuration.
    pub fn lcrlog(lcr_config: LcrConfig) -> Self {
        InstrumentOptions {
            lbr: false,
            lcr: true,
            toggle_libraries: true,
            success_sites: SuccessSites::None,
            lbr_select: lbr_select::DIAGNOSIS,
            lcr_config,
        }
    }

    /// LCRA in reactive mode.
    pub fn lcra_reactive(
        lcr_config: LcrConfig,
        log_sites: Vec<LogSiteId>,
        fault_locs: Vec<(FuncId, SourceLoc)>,
    ) -> Self {
        InstrumentOptions {
            success_sites: SuccessSites::Reactive {
                log_sites,
                fault_locs,
            },
            ..InstrumentOptions::lcrlog(lcr_config)
        }
    }

    /// Combined LBR+LCR deployment.
    pub fn full() -> Self {
        InstrumentOptions {
            lbr: true,
            lcr: true,
            ..InstrumentOptions::lbrlog()
        }
    }
}

impl Default for InstrumentOptions {
    fn default() -> Self {
        InstrumentOptions::lbrlog()
    }
}

fn hwctl(op: HwCtlOp, loc: SourceLoc) -> Stmt {
    Stmt {
        instr: Instr::HwCtl {
            op,
            site: None,
            role: ProfileRole::FailureSite,
        },
        loc,
    }
}

fn profile_stmt(
    lbr: bool,
    site: Option<LogSiteId>,
    role: ProfileRole,
    loc: SourceLoc,
) -> Vec<Stmt> {
    let (dis, prof, en) = if lbr {
        (HwCtlOp::DisableLbr, HwCtlOp::ProfileLbr, HwCtlOp::EnableLbr)
    } else {
        (HwCtlOp::DisableLcr, HwCtlOp::ProfileLcr, HwCtlOp::EnableLcr)
    };
    vec![
        hwctl(dis, loc),
        Stmt {
            instr: Instr::HwCtl {
                op: prof,
                site,
                role,
            },
            loc,
        },
        hwctl(en, loc),
    ]
}

/// Instruments a program for deployment.
///
/// The result is a fresh [`Program`]: the input is not modified. Branch and
/// log-site identifiers are preserved (the pass only inserts straight-line
/// statements and appends wrapper functions), so ground-truth references
/// into the original program remain valid.
pub fn instrument(program: &Program, opts: &InstrumentOptions) -> Program {
    let mut p = program.clone();

    if opts.toggle_libraries {
        install_toggling_wrappers(&mut p, opts);
    }
    insert_success_profiles(&mut p, opts);
    insert_failure_profiles(&mut p, opts);
    insert_entry_enable(&mut p, opts);
    p.fault_profile = FaultProfile {
        lbr: opts.lbr,
        lcr: opts.lcr,
    };
    p.lcr_config = opts.lcr_config;
    p.finalize();
    debug_assert!(p.validate().is_ok(), "instrumentation broke the program");
    p
}

/// Creates `__toggle_*` wrappers for every library function and redirects
/// application call sites to them.
fn install_toggling_wrappers(p: &mut Program, opts: &InstrumentOptions) {
    let n = p.functions.len();
    let mut wrapper_of: Vec<Option<FuncId>> = vec![None; n];
    #[allow(clippy::needless_range_loop)] // `p.functions` is extended inside the loop
    for i in 0..n {
        if !p.functions[i].is_library {
            continue;
        }
        let lib = &p.functions[i];
        let params = lib.params;
        let file = lib.file;
        let name = format!("__toggle_{}", lib.name);
        let wid = FuncId::new(p.functions.len() as u32);
        let loc = SourceLoc::UNKNOWN;
        let mut stmts = Vec::new();
        if opts.lbr {
            stmts.push(hwctl(HwCtlOp::DisableLbr, loc));
        }
        if opts.lcr {
            stmts.push(hwctl(HwCtlOp::DisableLcr, loc));
        }
        let ret_var = VarId::new(params); // one extra var for the result
        stmts.push(Stmt {
            instr: Instr::Call {
                dst: Some(ret_var),
                callee: Callee::Direct(FuncId::new(i as u32)),
                args: (0..params).map(|v| Operand::Var(VarId::new(v))).collect(),
            },
            loc,
        });
        if opts.lbr {
            stmts.push(hwctl(HwCtlOp::EnableLbr, loc));
        }
        if opts.lcr {
            stmts.push(hwctl(HwCtlOp::EnableLcr, loc));
        }
        let block = BasicBlock {
            stmts,
            term: Terminator::Ret(Some(Operand::Var(ret_var))),
            term_loc: loc,
            branch: None,
        };
        p.functions.push(Function {
            name,
            file,
            params,
            num_vars: params + 1,
            frame_slots: 0,
            blocks: vec![block],
            is_library: true,
        });
        wrapper_of[i] = Some(wid);
    }
    // Redirect call sites in application (non-library) code. Wrappers are
    // marked library themselves, so they keep calling the original.
    for func in p.functions.iter_mut().take(n) {
        if func.is_library {
            continue;
        }
        for block in &mut func.blocks {
            for stmt in &mut block.stmts {
                if let Instr::Call { callee, .. } = &mut stmt.instr {
                    match callee {
                        Callee::Direct(t) => {
                            if let Some(w) = wrapper_of.get(t.index()).copied().flatten() {
                                *t = w;
                            }
                        }
                        Callee::Indirect { targets, .. } => {
                            for t in targets {
                                if let Some(w) = wrapper_of.get(t.index()).copied().flatten() {
                                    *t = w;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Inserts `disable; profile(FailureSite); enable` before every
/// failure-logging call in application code, matching Fig. 7.
fn insert_failure_profiles(p: &mut Program, opts: &InstrumentOptions) {
    for func in &mut p.functions {
        if func.is_library {
            continue;
        }
        for block in &mut func.blocks {
            // Walk backwards so earlier insertions do not shift later ones.
            let indices: Vec<usize> = block
                .stmts
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match &s.instr {
                    Instr::Log {
                        kind: LogKind::Error,
                        ..
                    } => Some(i),
                    _ => None,
                })
                .collect();
            for &i in indices.iter().rev() {
                let (site, loc) = match &block.stmts[i].instr {
                    Instr::Log { site, .. } => (*site, block.stmts[i].loc),
                    _ => unreachable!(),
                };
                let mut seq = Vec::new();
                if opts.lbr {
                    seq.extend(profile_stmt(
                        true,
                        Some(site),
                        ProfileRole::FailureSite,
                        loc,
                    ));
                }
                if opts.lcr {
                    seq.extend(profile_stmt(
                        false,
                        Some(site),
                        ProfileRole::FailureSite,
                        loc,
                    ));
                }
                block.stmts.splice(i..i, seq);
            }
        }
    }
}

/// Inserts success-site profiling per Fig. 8 and, in reactive mode, after
/// observed fault locations.
fn insert_success_profiles(p: &mut Program, opts: &InstrumentOptions) {
    let (log_sites, fault_locs): (Vec<LogSiteId>, Vec<(FuncId, SourceLoc)>) =
        match &opts.success_sites {
            SuccessSites::None => return,
            SuccessSites::Proactive => (
                p.log_sites
                    .iter()
                    .filter(|s| s.kind == LogKind::Error)
                    .map(|s| s.site)
                    .collect(),
                Vec::new(),
            ),
            SuccessSites::Reactive {
                log_sites,
                fault_locs,
            } => (log_sites.clone(), fault_locs.clone()),
        };

    // Success sites for logging failures: profile right before the branch
    // that jumps into the block holding the failure-logging call.
    for site in log_sites {
        let info = p.log_site_info(site).clone();
        let func = &mut p.functions[info.func.index()];
        // Which block holds the Log instruction?
        let holder = func.blocks.iter().position(|b| {
            b.stmts
                .iter()
                .any(|s| matches!(&s.instr, Instr::Log { site: s2, .. } if *s2 == site))
        });
        let Some(holder) = holder else { continue };
        for block in &mut func.blocks {
            if let Terminator::Br {
                then_blk, else_blk, ..
            } = block.term
            {
                if then_blk.index() == holder || else_blk.index() == holder {
                    let loc = block.term_loc;
                    let mut seq = Vec::new();
                    if opts.lbr {
                        seq.extend(profile_stmt(
                            true,
                            Some(site),
                            ProfileRole::SuccessSite,
                            loc,
                        ));
                    }
                    if opts.lcr {
                        seq.extend(profile_stmt(
                            false,
                            Some(site),
                            ProfileRole::SuccessSite,
                            loc,
                        ));
                    }
                    block.stmts.extend(seq);
                }
            }
        }
    }

    // Success sites for crash failures (reactive only): profile right
    // after every statement at the observed fault location.
    for (fid, loc) in fault_locs {
        let func = &mut p.functions[fid.index()];
        for block in &mut func.blocks {
            let indices: Vec<usize> = block
                .stmts
                .iter()
                .enumerate()
                .filter(|(_, s)| s.loc == loc && stmt_can_fault(&s.instr))
                .map(|(i, _)| i)
                .collect();
            for &i in indices.iter().rev() {
                let mut seq = Vec::new();
                if opts.lbr {
                    seq.extend(profile_stmt(true, None, ProfileRole::SuccessSite, loc));
                }
                if opts.lcr {
                    seq.extend(profile_stmt(false, None, ProfileRole::SuccessSite, loc));
                }
                block.stmts.splice(i + 1..i + 1, seq);
            }
        }
    }
}

fn stmt_can_fault(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::Lock { .. }
            | Instr::Unlock { .. }
            | Instr::Free { .. }
            | Instr::Assert { .. }
            | Instr::Assign {
                rv: stm_machine::ir::Rvalue::Binary { .. },
                ..
            }
    )
}

/// Prepends configure/clean/enable to the entry function (Fig. 7).
fn insert_entry_enable(p: &mut Program, opts: &InstrumentOptions) {
    let entry = p.entry;
    let block = &mut p.functions[entry.index()].blocks[0];
    let loc = block
        .stmts
        .first()
        .map(|s| s.loc)
        .unwrap_or(SourceLoc::UNKNOWN);
    let mut seq = Vec::new();
    if opts.lbr {
        seq.push(hwctl(HwCtlOp::ConfigLbr(opts.lbr_select), loc));
        seq.push(hwctl(HwCtlOp::CleanLbr, loc));
        seq.push(hwctl(HwCtlOp::EnableLbr, loc));
    }
    if opts.lcr {
        seq.push(hwctl(HwCtlOp::ConfigLcr(opts.lcr_config), loc));
        seq.push(hwctl(HwCtlOp::CleanLcr, loc));
        seq.push(hwctl(HwCtlOp::EnableLcr, loc));
    }
    block.stmts.splice(0..0, seq);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;

    /// A program with a library helper and one guarded error log.
    fn sample() -> (Program, LogSiteId, FuncId) {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let strlen = pb.declare_function("strlen");
        {
            let mut f = pb.build_function(strlen, "libc.c");
            f.set_library();
            let ps = f.params(1);
            let r = f.bin(BinOp::Add, ps[0], 1);
            f.ret(Some(r.into()));
            f.finish();
        }
        let site;
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let ok = f.new_block();
            let x = f.read_input(0);
            let _ = f.call(strlen, &[x.into()]);
            let c = f.bin(BinOp::Lt, x, 0);
            f.br(c, err, ok);
            f.set_block(err);
            site = f.log_error("negative input");
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.output(x);
            f.ret(None);
            f.finish();
        }
        (pb.finish(main), site, main)
    }

    fn count_ops(p: &Program, pred: impl Fn(&Instr) -> bool) -> usize {
        p.functions
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.stmts)
            .filter(|s| pred(&s.instr))
            .count()
    }

    #[test]
    fn entry_gets_config_clean_enable() {
        let (p, _, main) = sample();
        let out = instrument(&p, &InstrumentOptions::lbrlog());
        let first_ops: Vec<_> = out.functions[main.index()].blocks[0]
            .stmts
            .iter()
            .take(3)
            .map(|s| s.instr.clone())
            .collect();
        assert!(matches!(
            first_ops[0],
            Instr::HwCtl {
                op: HwCtlOp::ConfigLbr(_),
                ..
            }
        ));
        assert!(matches!(
            first_ops[1],
            Instr::HwCtl {
                op: HwCtlOp::CleanLbr,
                ..
            }
        ));
        assert!(matches!(
            first_ops[2],
            Instr::HwCtl {
                op: HwCtlOp::EnableLbr,
                ..
            }
        ));
    }

    #[test]
    fn failure_log_gets_profile_sequence_before_it() {
        let (p, site, _) = sample();
        let out = instrument(&p, &InstrumentOptions::lbrlog());
        let profiles = count_ops(&out, |i| {
            matches!(
                i,
                Instr::HwCtl {
                    op: HwCtlOp::ProfileLbr,
                    site: Some(s),
                    role: ProfileRole::FailureSite,
                } if *s == site
            )
        });
        assert_eq!(profiles, 1);
    }

    #[test]
    fn toggling_creates_wrappers_and_redirects_calls() {
        let (p, _, _) = sample();
        let nf = p.functions.len();
        let out = instrument(&p, &InstrumentOptions::lbrlog());
        assert_eq!(out.functions.len(), nf + 1);
        let wrapper = out.function_by_name("__toggle_strlen").unwrap();
        // main's call goes to the wrapper now.
        let main_calls_wrapper = out.functions[1..nf] // skip library strlen? main is idx 0
            .iter()
            .chain(std::iter::once(&out.functions[0]))
            .filter(|f| !f.is_library)
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.stmts)
            .any(|s| {
                matches!(&s.instr, Instr::Call { callee: Callee::Direct(t), .. } if *t == wrapper)
            });
        assert!(main_calls_wrapper);
        // The wrapper itself calls the original and toggles around it.
        let w = out.function(wrapper);
        assert!(matches!(
            w.blocks[0].stmts[0].instr,
            Instr::HwCtl {
                op: HwCtlOp::DisableLbr,
                ..
            }
        ));
        assert!(matches!(
            w.blocks[0].stmts.last().unwrap().instr,
            Instr::HwCtl {
                op: HwCtlOp::EnableLbr,
                ..
            }
        ));
    }

    #[test]
    fn no_toggling_means_no_wrappers() {
        let (p, _, _) = sample();
        let nf = p.functions.len();
        let out = instrument(&p, &InstrumentOptions::lbrlog_without_toggling());
        assert_eq!(out.functions.len(), nf);
    }

    #[test]
    fn proactive_mode_inserts_success_profile_before_guard_branch() {
        let (p, site, main) = sample();
        let out = instrument(&p, &InstrumentOptions::lbra_proactive());
        // The guard block (entry block of main) ends with the Br into the
        // error block; its last stmts must include a SuccessSite profile.
        let entry = &out.functions[main.index()].blocks[0];
        let has_success = entry.stmts.iter().any(|s| {
            matches!(
                &s.instr,
                Instr::HwCtl {
                    op: HwCtlOp::ProfileLbr,
                    site: Some(s2),
                    role: ProfileRole::SuccessSite,
                } if *s2 == site
            )
        });
        assert!(has_success);
    }

    #[test]
    fn reactive_fault_mode_profiles_after_faulting_stmt() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "m.c");
        f.at(7);
        let x = f.read_input(0);
        let _v = f.load(x, 0); // may fault at m.c:7
        f.ret(None);
        f.finish();
        let p = pb.finish(main);
        let loc = SourceLoc::new(p.functions[0].file, 7);
        let out = instrument(
            &p,
            &InstrumentOptions::lbra_reactive(vec![], vec![(main, loc)]),
        );
        let block = &out.functions[main.index()].blocks[0];
        let load_at = block
            .stmts
            .iter()
            .position(|s| matches!(s.instr, Instr::Load { .. }))
            .unwrap();
        assert!(matches!(
            block.stmts[load_at + 2].instr,
            Instr::HwCtl {
                op: HwCtlOp::ProfileLbr,
                site: None,
                role: ProfileRole::SuccessSite,
            }
        ));
    }

    #[test]
    fn branch_ids_are_preserved() {
        let (p, _, _) = sample();
        let out = instrument(&p, &InstrumentOptions::lbra_proactive());
        assert_eq!(p.branches.len(), out.branches.len());
        for (a, b) in p.branches.iter().zip(&out.branches) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.loc, b.loc);
            assert_eq!(a.func, b.func);
        }
    }

    #[test]
    fn instrumented_program_validates() {
        let (p, _, _) = sample();
        for opts in [
            InstrumentOptions::lbrlog(),
            InstrumentOptions::lbrlog_without_toggling(),
            InstrumentOptions::lbra_proactive(),
            InstrumentOptions::lcrlog(LcrConfig::SPACE_CONSUMING),
            InstrumentOptions::full(),
        ] {
            let out = instrument(&p, &opts);
            out.validate().unwrap();
        }
    }

    #[test]
    fn lcr_options_insert_lcr_ops() {
        let (p, _, _) = sample();
        let out = instrument(&p, &InstrumentOptions::lcrlog(LcrConfig::SPACE_SAVING));
        assert!(
            count_ops(&out, |i| matches!(
                i,
                Instr::HwCtl {
                    op: HwCtlOp::ProfileLcr,
                    ..
                }
            )) >= 1
        );
        assert_eq!(out.lcr_config, LcrConfig::SPACE_SAVING);
        assert!(out.fault_profile.lcr);
        assert!(!out.fault_profile.lbr);
    }
}
