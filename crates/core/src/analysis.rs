//! Static useful-branch analysis (§7.1.1, Table 5).
//!
//! For a logging site `l`, a branch record in LBR is **useful** if the
//! taken-ness of that branch cannot be inferred, by static control-flow
//! analysis, from the mere fact that execution reached `l`. The analyzer
//! mirrors the paper's LLVM pass: starting from each logging site it
//! explores backwards along all possible intra-procedural paths until each
//! path holds `depth` (= LBR capacity) branch records, and checks which
//! records are useful:
//!
//! * an edge of a conditional branch is useful iff the *other* edge can
//!   also reach `l` — otherwise reaching `l` already proves the outcome;
//! * an unconditional jump record is never useful (its taken-ness is
//!   trivial), but it still occupies an LBR entry;
//! * fall-through jumps retire no branch and contribute no record.
//!
//! Paths are enumerated with a per-path revisit bound (loops contribute one
//! unrolling) and a global path budget per site, which keeps the analysis
//! linear in practice while covering every acyclic path shape.

use std::collections::HashSet;
use stm_machine::ids::{BlockId, FuncId, LogSiteId};
use stm_machine::ir::{Instr, LogKind, Program, Terminator};

/// Result of the analysis for one logging site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteRatio {
    /// The logging site.
    pub site: LogSiteId,
    /// Useful records / total records over all explored paths.
    pub ratio: f64,
    /// Total records inspected.
    pub records: usize,
    /// Paths explored.
    pub paths: usize,
}

/// Result of the analysis for a whole program (one Table 5 row).
#[derive(Debug, Clone, PartialEq)]
pub struct UsefulBranchReport {
    /// Per-site ratios.
    pub per_site: Vec<SiteRatio>,
    /// Average ratio across sites with at least one record.
    pub average: f64,
    /// Number of `Error` logging sites analyzed.
    pub sites: usize,
}

#[derive(Debug, Clone, Copy)]
enum PredEdge {
    /// `pred`'s conditional branch enters via one edge; `useful` was
    /// precomputed as "the other edge also reaches l".
    Branch { pred: BlockId, useful: bool },
    /// A recorded (non-fallthrough) unconditional jump.
    Jump { pred: BlockId },
    /// A fall-through: no record.
    Fallthrough { pred: BlockId },
}

/// Per-function predecessor edges, specialised for a reach-set.
fn pred_edges(program: &Program, func: FuncId, reaches: &HashSet<BlockId>) -> Vec<Vec<PredEdge>> {
    let f = program.function(func);
    let mut preds: Vec<Vec<PredEdge>> = vec![Vec::new(); f.blocks.len()];
    for (bi, block) in f.blocks.iter().enumerate() {
        let bid = BlockId::new(bi as u32);
        match block.term {
            Terminator::Br {
                then_blk, else_blk, ..
            } => {
                // Record on the then edge is useful iff the else edge also
                // reaches l, and vice versa.
                let then_reaches = reaches.contains(&then_blk);
                let else_reaches = reaches.contains(&else_blk);
                preds[then_blk.index()].push(PredEdge::Branch {
                    pred: bid,
                    useful: else_reaches && then_blk != else_blk,
                });
                if then_blk != else_blk {
                    preds[else_blk.index()].push(PredEdge::Branch {
                        pred: bid,
                        useful: then_reaches,
                    });
                }
            }
            Terminator::Jmp(t) => {
                if t.index() == bi + 1 {
                    preds[t.index()].push(PredEdge::Fallthrough { pred: bid });
                } else {
                    preds[t.index()].push(PredEdge::Jump { pred: bid });
                }
            }
            Terminator::Ret(_) => {}
        }
    }
    preds
}

/// Blocks from which `target` is reachable (including itself).
fn backward_reachable(program: &Program, func: FuncId, target: BlockId) -> HashSet<BlockId> {
    let f = program.function(func);
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for (bi, block) in f.blocks.iter().enumerate() {
        for s in block.term.successors() {
            preds[s.index()].push(BlockId::new(bi as u32));
        }
    }
    let mut seen = HashSet::new();
    let mut stack = vec![target];
    while let Some(b) = stack.pop() {
        if seen.insert(b) {
            stack.extend(preds[b.index()].iter().copied());
        }
    }
    seen
}

/// Bound on explored paths per site.
const PATH_BUDGET: usize = 2048;
/// How often a block may repeat on one path (loop unrolling bound).
const REVISIT_BOUND: usize = 2;

/// Bound on backward call-stack expansion (the paper's LLVM analyzer also
/// crosses function boundaries when the window is not yet full).
const CALLER_DEPTH_BOUND: usize = 3;

/// All blocks containing a direct call to each function.
fn call_sites(program: &Program) -> Vec<Vec<(FuncId, BlockId)>> {
    let mut sites = vec![Vec::new(); program.functions.len()];
    for (fi, func) in program.functions.iter().enumerate() {
        for (bi, block) in func.blocks.iter().enumerate() {
            for stmt in &block.stmts {
                if let Instr::Call {
                    callee: stm_machine::ir::Callee::Direct(t),
                    ..
                } = &stmt.instr
                {
                    sites[t.index()].push((FuncId::new(fi as u32), BlockId::new(bi as u32)));
                }
            }
        }
    }
    sites
}

fn analyze_site(
    program: &Program,
    func: FuncId,
    site_block: BlockId,
    depth: usize,
) -> (usize, usize, usize) {
    use std::collections::HashMap;
    let callers = call_sites(program);
    // Per-(function, anchor) predecessor tables, built lazily: usefulness
    // is relative to reaching the anchor (the log site's block, or the
    // call-site block when the window crosses into a caller).
    type Table = std::rc::Rc<Vec<Vec<PredEdge>>>;
    let mut tables: HashMap<(FuncId, BlockId), Table> = HashMap::new();
    let table = |f: FuncId, anchor: BlockId, tables: &mut HashMap<(FuncId, BlockId), Table>| {
        std::rc::Rc::clone(tables.entry((f, anchor)).or_insert_with(|| {
            let reaches = backward_reachable(program, f, anchor);
            std::rc::Rc::new(pred_edges(program, f, &reaches))
        }))
    };

    struct State {
        func: FuncId,
        anchor: BlockId,
        block: BlockId,
        records: Vec<bool>,
        visits: Vec<(FuncId, BlockId, usize)>,
        call_depth: usize,
    }
    let mut useful = 0usize;
    let mut total = 0usize;
    let mut paths = 0usize;
    let mut stack = vec![State {
        func,
        anchor: site_block,
        block: site_block,
        records: Vec::new(),
        visits: vec![(func, site_block, 1)],
        call_depth: 0,
    }];
    while let Some(state) = stack.pop() {
        if paths >= PATH_BUDGET {
            break;
        }
        if state.records.len() >= depth {
            paths += 1;
            total += state.records.len();
            useful += state.records.iter().filter(|u| **u).count();
            continue;
        }
        let preds = table(state.func, state.anchor, &mut tables);
        let edges = &preds[state.block.index()];
        if edges.is_empty() {
            // Function entry: continue into the callers while the window
            // has room, as the paper's analyzer does.
            let mut extended = false;
            if state.call_depth < CALLER_DEPTH_BOUND {
                for (cf, cb) in &callers[state.func.index()] {
                    let prior = state
                        .visits
                        .iter()
                        .find(|(f2, b2, _)| f2 == cf && b2 == cb)
                        .map(|(_, _, n)| *n)
                        .unwrap_or(0);
                    if prior >= REVISIT_BOUND {
                        continue;
                    }
                    let mut visits = state.visits.clone();
                    visits.push((*cf, *cb, prior + 1));
                    stack.push(State {
                        func: *cf,
                        anchor: *cb,
                        block: *cb,
                        records: state.records.clone(),
                        visits,
                        call_depth: state.call_depth + 1,
                    });
                    extended = true;
                }
            }
            if !extended {
                paths += 1;
                total += state.records.len();
                useful += state.records.iter().filter(|u| **u).count();
            }
            continue;
        }
        for edge in edges {
            let (pred, record) = match edge {
                PredEdge::Branch { pred, useful } => (*pred, Some(*useful)),
                PredEdge::Jump { pred } => (*pred, Some(false)),
                PredEdge::Fallthrough { pred } => (*pred, None),
            };
            let prior = state
                .visits
                .iter()
                .find(|(f2, b2, _)| *f2 == state.func && *b2 == pred)
                .map(|(_, _, n)| *n)
                .unwrap_or(0);
            if prior >= REVISIT_BOUND {
                continue;
            }
            let mut records = state.records.clone();
            if let Some(u) = record {
                records.push(u);
            }
            let mut visits = state.visits.clone();
            match visits
                .iter_mut()
                .find(|(f2, b2, _)| *f2 == state.func && *b2 == pred)
            {
                Some((_, _, n)) => *n += 1,
                None => visits.push((state.func, pred, 1)),
            }
            stack.push(State {
                func: state.func,
                anchor: state.anchor,
                block: pred,
                records,
                visits,
                call_depth: state.call_depth,
            });
        }
    }
    (useful, total, paths)
}

/// Branch outcomes statically *implied* by reaching `block` of `func`:
/// `(B, o)` is implied when `B`'s `o` edge reaches the block but the other
/// edge cannot (the "not useful" records of the Table 5 analysis).
pub fn implied_branch_outcomes(
    program: &Program,
    func: FuncId,
    block: BlockId,
) -> std::collections::BTreeSet<(stm_machine::ids::BranchId, bool)> {
    let reaches = backward_reachable(program, func, block);
    let mut implied = std::collections::BTreeSet::new();
    for b in &program.function(func).blocks {
        if let (
            Terminator::Br {
                then_blk, else_blk, ..
            },
            Some(id),
        ) = (&b.term, b.branch)
        {
            let t = reaches.contains(then_blk);
            let e = reaches.contains(else_blk);
            if t && !e {
                implied.insert((id, true));
            } else if e && !t {
                implied.insert((id, false));
            }
        }
    }
    implied
}

/// The branch outcomes that jump *directly into* `block` of `func` — the
/// guards of the failure site itself. LBRA excludes these from its
/// candidate predictors: the branch entering the failure-logging block is
/// definitionally part of the failure *site* (LBRLOG already reports it as
/// the location), not a candidate *cause*.
pub fn site_guard_outcomes(
    program: &Program,
    func: FuncId,
    block: BlockId,
) -> std::collections::BTreeSet<(stm_machine::ids::BranchId, bool)> {
    let mut guards = std::collections::BTreeSet::new();
    for b in &program.function(func).blocks {
        if let (
            Terminator::Br {
                then_blk, else_blk, ..
            },
            Some(id),
        ) = (&b.term, b.branch)
        {
            if *then_blk == block {
                guards.insert((id, true));
            }
            if *else_blk == block {
                guards.insert((id, false));
            }
        }
    }
    guards
}

/// Locates the block holding the failure site described by a
/// [`FailureSpec`](crate::runner::FailureSpec): the block of the target logging call, or the block of
/// the statement at the crash location.
pub fn failure_site_block(
    program: &Program,
    spec: &crate::runner::FailureSpec,
) -> Option<(FuncId, BlockId)> {
    match spec {
        crate::runner::FailureSpec::ErrorLogAt(site) => {
            let info = program.log_site_info(*site);
            let func = program.function(info.func);
            let holder = func.blocks.iter().position(|b| {
                b.stmts
                    .iter()
                    .any(|s| matches!(&s.instr, Instr::Log { site: s2, .. } if s2 == site))
            })?;
            Some((info.func, BlockId::new(holder as u32)))
        }
        crate::runner::FailureSpec::CrashAt { func, line } => {
            let fid = program.function_by_name(func)?;
            let f = program.function(fid);
            for (bi, b) in f.blocks.iter().enumerate() {
                if b.stmts.iter().any(|s| s.loc.line == *line) {
                    return Some((fid, BlockId::new(bi as u32)));
                }
            }
            None
        }
        _ => None,
    }
}

/// Runs the analysis over every `Error` logging site of the program's
/// application (non-library) functions, with an LBR of `depth` entries.
pub fn useful_branch_ratio(program: &Program, depth: usize) -> UsefulBranchReport {
    let mut per_site = Vec::new();
    for info in program
        .log_sites
        .iter()
        .filter(|s| s.kind == LogKind::Error)
    {
        let func = program.function(info.func);
        if func.is_library {
            continue;
        }
        let holder = func.blocks.iter().position(|b| {
            b.stmts
                .iter()
                .any(|s| matches!(&s.instr, Instr::Log { site, .. } if *site == info.site))
        });
        let Some(holder) = holder else { continue };
        let (useful, total, paths) =
            analyze_site(program, info.func, BlockId::new(holder as u32), depth);
        per_site.push(SiteRatio {
            site: info.site,
            ratio: if total > 0 {
                useful as f64 / total as f64
            } else {
                0.0
            },
            records: total,
            paths,
        });
    }
    let populated: Vec<&SiteRatio> = per_site.iter().filter(|s| s.records > 0).collect();
    let average = if populated.is_empty() {
        0.0
    } else {
        populated.iter().map(|s| s.ratio).sum::<f64>() / populated.len() as f64
    };
    UsefulBranchReport {
        sites: per_site.len(),
        per_site,
        average,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;

    /// if (a) { if (b) error(); }  — both branches guard the error, and
    /// reaching the error pins both outcomes ⇒ zero useful records.
    #[test]
    fn pure_guard_branches_are_not_useful() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "m.c");
            let inner = f.new_block();
            let err = f.new_block();
            let out = f.new_block();
            let a = f.read_input(0);
            f.br(a, inner, out);
            f.set_block(inner);
            let b = f.read_input(1);
            f.br(b, err, out);
            f.set_block(err);
            f.log_error("guarded");
            f.jmp(out);
            f.set_block(out);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let r = useful_branch_ratio(&p, 16);
        assert_eq!(r.sites, 1);
        assert_eq!(r.per_site[0].ratio, 0.0);
        assert!(r.per_site[0].records > 0);
    }

    /// A diamond *before* the error: both arms rejoin and then the error
    /// fires unconditionally ⇒ the diamond's branch outcome cannot be
    /// inferred ⇒ useful.
    #[test]
    fn pre_join_branches_are_useful() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "m.c");
            let left = f.new_block();
            let right = f.new_block();
            let join = f.new_block();
            let a = f.read_input(0);
            f.br(a, left, right);
            f.set_block(left);
            f.nop();
            f.jmp(join); // non-adjacent: recorded jump
            f.set_block(right);
            f.nop();
            f.jmp(join); // adjacent: fall-through, no record
            f.set_block(join);
            f.log_error("always");
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let r = useful_branch_ratio(&p, 16);
        assert_eq!(r.sites, 1);
        let site = r.per_site[0];
        // Two paths: [useful-branch, jump] (left) and [useful-branch]
        // (right, fall-through). 2 useful of 3 records.
        assert_eq!(site.records, 3);
        assert!((site.ratio - 2.0 / 3.0).abs() < 1e-9, "{}", site.ratio);
    }

    /// A loop before the error contributes useful records bounded by the
    /// unrolling limit rather than diverging.
    #[test]
    fn loops_terminate_and_contribute_records() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "m.c");
            let header = f.new_block();
            let body = f.new_block();
            let exit = f.new_block();
            let n = f.read_input(0);
            let i = f.var();
            f.assign(i, 0);
            f.jmp(header);
            f.set_block(header);
            let c = f.bin(BinOp::Lt, i, n);
            f.br(c, body, exit);
            f.set_block(body);
            f.assign_bin(i, BinOp::Add, i, 1);
            f.jmp(header);
            f.set_block(exit);
            f.log_error("after loop");
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let r = useful_branch_ratio(&p, 16);
        assert_eq!(r.sites, 1);
        assert!(r.per_site[0].records > 0);
        // The loop condition's exit edge is forced (reaching the error
        // proves it), but the body-vs-exit history further back is useful.
        assert!(r.per_site[0].ratio > 0.0);
    }

    #[test]
    fn library_sites_are_skipped() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let lib = pb.declare_function("libfn");
        {
            let mut f = pb.build_function(lib, "lib.c");
            f.set_library();
            f.log_error("library error");
            f.ret(None);
            f.finish();
        }
        {
            let mut f = pb.build_function(main, "m.c");
            f.call_void(lib, &[]);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let r = useful_branch_ratio(&p, 16);
        assert_eq!(r.sites, 0);
    }

    #[test]
    fn depth_caps_record_count_per_path() {
        // A long chain of diamonds; with depth 4 each path holds exactly 4
        // records.
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "m.c");
            let mut cur_join = None;
            for d in 0..8 {
                let left = f.new_block();
                let right = f.new_block();
                let join = f.new_block();
                let a = f.read_input(d);
                f.br(a, left, right);
                f.set_block(left);
                f.nop();
                f.jmp(join);
                f.set_block(right);
                f.nop();
                f.jmp(join);
                f.set_block(join);
                cur_join = Some(join);
            }
            let _ = cur_join;
            f.log_error("end of chain");
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let shallow = useful_branch_ratio(&p, 4);
        let deep = useful_branch_ratio(&p, 16);
        assert!(deep.per_site[0].records >= shallow.per_site[0].records);
        assert!(shallow.per_site[0].ratio > 0.5);
    }
}
