//! LBRLOG / LCRLOG: the log-enhancement face of the system (§5.1), plus
//! the logging-latency cost model of §5.3.
//!
//! LBRLOG and LCRLOG attach the hardware short-term memory to every
//! failure log: this module turns a failed run's report into a
//! developer-facing [`FailureLog`] — decoded ring entries next to the
//! failure symptom — and answers Table 6/7's question "at which position
//! does the ring contain the root cause?".

use crate::profile::{
    decode_lbr, decode_lcr, render_lbr_log, render_lcr_log, DecodedLbrEntry, DecodedLcrEntry,
};
use crate::runner::{Runner, Workload};
use stm_machine::events::CoherenceState;
use stm_machine::ids::BranchId;
use stm_machine::ir::SourceLoc;
use stm_machine::report::{ProfileData, RunReport};

/// The enhanced failure log of one failed run.
#[derive(Debug, Clone, Default)]
pub struct FailureLog {
    /// Human-readable failure symptom.
    pub symptom: String,
    /// Decoded LBR entries, most recent first (when LBR was deployed).
    pub lbr: Vec<DecodedLbrEntry>,
    /// Decoded LCR entries, most recent first (when LCR was deployed).
    pub lcr: Vec<DecodedLcrEntry>,
}

impl FailureLog {
    /// Position (1 = most recent) of the first LBR entry proving an
    /// outcome of `branch` — the `n` of Table 6's `✓ n`.
    pub fn lbr_position_of_branch(&self, branch: BranchId) -> Option<usize> {
        self.lbr
            .iter()
            .find(|e| e.branch_outcome().map(|b| b.branch) == Some(branch))
            .map(|e| e.position)
    }

    /// Position (1 = most recent) of the first LCR entry matching a
    /// location and observed state — the `n` of Table 7's `✓ n`.
    pub fn lcr_position_of_event(&self, loc: SourceLoc, state: CoherenceState) -> Option<usize> {
        self.lcr
            .iter()
            .find(|e| e.event.loc == loc && e.event.state == state)
            .map(|e| e.position)
    }
}

/// Builds the enhanced failure log from a failed run's report.
///
/// Returns `None` when the run collected no failure-site profile (e.g. it
/// did not fail).
pub fn failure_log(runner: &Runner, report: &RunReport) -> Option<FailureLog> {
    let program = runner.machine().program();
    let layout = runner.machine().layout();
    let symptom = match &report.outcome {
        stm_machine::report::RunOutcome::Failed(f) => {
            format!(
                "{} in {} at {}",
                f.kind,
                program.function(f.func).name,
                program.render_loc(f.loc)
            )
        }
        stm_machine::report::RunOutcome::Completed { exit_code } => {
            format!("exited with code {exit_code}")
        }
    };
    let mut log = FailureLog {
        symptom,
        ..FailureLog::default()
    };
    let mut any = false;
    for p in report.profiles_with_role(stm_machine::ir::ProfileRole::FailureSite) {
        match &p.data {
            ProfileData::Lbr(records) => {
                log.lbr = decode_lbr(layout, records);
                any = true;
            }
            ProfileData::Lcr(records) => {
                log.lcr = decode_lcr(layout, records);
                any = true;
            }
        }
    }
    any.then_some(log)
}

/// Builds the enhanced failure log from the profile matching a specific
/// failure specification — use this when a run logs several errors and
/// only the target site's snapshot matters (the per-failure-site grouping
/// of §5.3).
pub fn failure_log_for(
    runner: &Runner,
    report: &RunReport,
    spec: &crate::runner::FailureSpec,
) -> Option<FailureLog> {
    let layout = runner.machine().layout();
    let mut log = failure_log(runner, report)?;
    // Rebuild the snapshots strictly from the spec's own site, so a run
    // that also logged *other* errors cannot leak their rings in.
    let target = crate::diagnose::failure_profile(report, spec)?;
    log.lbr.clear();
    log.lcr.clear();
    for p in report
        .profiles
        .iter()
        .filter(|p| p.role == stm_machine::ir::ProfileRole::FailureSite && p.site == target.site)
    {
        match &p.data {
            ProfileData::Lbr(records) => log.lbr = decode_lbr(layout, records),
            ProfileData::Lcr(records) => log.lcr = decode_lcr(layout, records),
        }
    }
    Some(log)
}

/// Runs one failing workload and returns its enhanced failure log.
pub fn run_and_log(runner: &Runner, workload: &Workload) -> Option<FailureLog> {
    let report = runner.run(workload);
    failure_log(runner, &report)
}

/// Renders the full enhanced log as text (what the developer reads).
pub fn render_failure_log(runner: &Runner, log: &FailureLog) -> String {
    let program = runner.machine().program();
    let mut out = format!("FAILURE: {}\n", log.symptom);
    if !log.lbr.is_empty() {
        out.push_str("LBR (most recent first):\n");
        out.push_str(&render_lbr_log(program, &log.lbr));
    }
    if !log.lcr.is_empty() {
        out.push_str("LCR (most recent first):\n");
        out.push_str(&render_lcr_log(program, &log.lcr));
    }
    out
}

// ---------------------------------------------------------------------------
// Logging-latency cost model (§5.3: LBR/LCR < 20 µs, call stack ≈ 200 µs,
// coredump > 200 ms). The byte volumes below drive the `logging_latency`
// bench: what each scheme must serialize at the failure site.
// ---------------------------------------------------------------------------

/// What one logging scheme must persist at the failure site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogPayload {
    /// The 16-entry LBR/LCR ring: `entries` records of two words each.
    ShortTermMemory {
        /// Number of ring entries.
        entries: usize,
    },
    /// A call-stack walk of `frames` return addresses plus symbolization.
    CallStack {
        /// Stack depth.
        frames: usize,
    },
    /// A full coredump of the mapped image.
    Coredump {
        /// Mapped bytes to serialize.
        bytes: u64,
    },
}

impl LogPayload {
    /// Bytes this payload serializes at the failure site.
    pub fn byte_volume(&self) -> u64 {
        match self {
            LogPayload::ShortTermMemory { entries } => (*entries as u64) * 16,
            // Return address + symbol-table lookup record per frame.
            LogPayload::CallStack { frames } => (*frames as u64) * 64,
            LogPayload::Coredump { bytes } => *bytes,
        }
    }

    /// Materializes the payload (the work the failure handler performs);
    /// used by the latency bench to measure relative costs.
    pub fn materialize(&self) -> Vec<u8> {
        let n = self.byte_volume() as usize;
        let mut buf = vec![0u8; n];
        // Touch every byte, as serialization would.
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::InstrumentOptions;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;

    fn failing_runner() -> (Runner, BranchId) {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let ok = f.new_block();
            let x = f.read_input(0);
            let c = f.bin(BinOp::Lt, x, 0);
            f.at(9);
            f.br(c, err, ok);
            f.set_block(err);
            f.at(10);
            f.log_error("boom");
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.output(x);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let root = p.branches[0].id;
        (Runner::instrumented(&p, &InstrumentOptions::lbrlog()), root)
    }

    #[test]
    fn failure_log_contains_root_branch() {
        let (runner, root) = failing_runner();
        let log = run_and_log(&runner, &Workload::new(vec![-3])).unwrap();
        let pos = log.lbr_position_of_branch(root).unwrap();
        assert_eq!(pos, 1, "the guard branch is the most recent record");
        let text = render_failure_log(&runner, &log);
        assert!(text.contains("LBR"), "{text}");
    }

    #[test]
    fn successful_run_produces_no_failure_log() {
        let (runner, _) = failing_runner();
        assert!(run_and_log(&runner, &Workload::new(vec![5])).is_none());
    }

    #[test]
    fn payload_volumes_are_ordered_like_the_paper() {
        let lbr = LogPayload::ShortTermMemory { entries: 16 };
        let stack = LogPayload::CallStack { frames: 40 };
        let core = LogPayload::Coredump {
            bytes: 64 * 1024 * 1024,
        };
        assert!(lbr.byte_volume() < stack.byte_volume());
        assert!(stack.byte_volume() < core.byte_volume());
        assert_eq!(lbr.materialize().len(), 256);
    }
}
