//! Golden-file coverage for [`render_failure_log`]: one committed golden
//! per [`FailureKind`] variant, plus edge-case tests for the ring position
//! queries (`lbr_position_of_branch` / `lcr_position_of_event`) on empty
//! and wrapped rings.
//!
//! Regenerate the goldens with `BLESS=1 cargo test -p stm-core --test
//! golden_failure_log` and review the diff like any other change.

use std::path::PathBuf;

use stm_core::logging::{render_failure_log, run_and_log, FailureLog};
use stm_core::runner::{Runner, Workload};
use stm_core::transform::InstrumentOptions;
use stm_hardware::HwConfig;
use stm_machine::builder::ProgramBuilder;
use stm_machine::events::{CoherenceState, LcrConfig};
use stm_machine::ir::{BinOp, SourceLoc};
use stm_machine::report::FailureKind;

/// A two-branch program whose error path logs and exits: deterministic
/// layout, deterministic LBR contents.
fn failing_runner() -> Runner {
    let mut pb = ProgramBuilder::new("golden");
    let main = pb.declare_function("main");
    {
        let mut f = pb.build_function(main, "m.c");
        let err = f.new_block();
        let ok = f.new_block();
        let x = f.read_input(0);
        let c = f.bin(BinOp::Lt, x, 0);
        f.at(9);
        f.br(c, err, ok);
        f.set_block(err);
        f.at(10);
        f.log_error("boom");
        f.exit(1);
        f.ret(None);
        f.set_block(ok);
        f.output(x);
        f.ret(None);
        f.finish();
    }
    let p = pb.finish(main);
    Runner::instrumented(&p, &InstrumentOptions::lbrlog())
}

/// One failure log with a real decoded LBR ring, shared by every golden.
fn base_log(runner: &Runner) -> FailureLog {
    run_and_log(runner, &Workload::new(vec![-3])).expect("the negative input reaches the log site")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("failure_log_{name}.txt"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; regenerate with BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "rendered log diverged from {}; re-bless if intentional",
        path.display()
    );
}

/// Renders the shared ring under a given symptom and checks its golden.
fn check_variant(name: &str, kind: FailureKind) {
    let runner = failing_runner();
    let mut log = base_log(&runner);
    // Mirror `failure_log`'s symptom format for a crash at the log site.
    log.symptom = format!("{kind} in main at m.c:10");
    check_golden(name, &render_failure_log(&runner, &log));
}

#[test]
fn golden_segfault() {
    check_variant("segfault", FailureKind::Segfault { addr: 0x40_1000 });
}

#[test]
fn golden_invalid_free() {
    check_variant("invalid_free", FailureKind::InvalidFree { addr: 0x40_2040 });
}

#[test]
fn golden_assert_failed() {
    check_variant(
        "assert_failed",
        FailureKind::AssertFailed {
            message: "index < len".into(),
        },
    );
}

#[test]
fn golden_div_by_zero() {
    check_variant("div_by_zero", FailureKind::DivByZero);
}

#[test]
fn golden_deadlock() {
    check_variant("deadlock", FailureKind::Deadlock);
}

#[test]
fn golden_hang() {
    check_variant("hang", FailureKind::Hang);
}

#[test]
fn golden_stack_overflow() {
    check_variant("stack_overflow", FailureKind::StackOverflow);
}

// ---------------------------------------------------------------------------
// Ring edge cases.
// ---------------------------------------------------------------------------

#[test]
fn empty_rings_answer_no_position() {
    let runner = failing_runner();
    let program = runner.machine().program();
    let branch = program.branches[0].id;
    let loc = program.branches[0].loc;
    let log = FailureLog::default();
    assert_eq!(log.lbr_position_of_branch(branch), None);
    assert_eq!(
        log.lcr_position_of_event(loc, CoherenceState::Invalid),
        None
    );
    // An empty log still renders its symptom and nothing else.
    let rendered = render_failure_log(&runner, &log);
    assert_eq!(rendered, "FAILURE: \n");
}

/// A program whose guard branch fires once and whose loop branch fires
/// many times; with a tiny LBR the guard's records must be evicted.
fn looping_runner(opts: &InstrumentOptions, entries: usize) -> Runner {
    let mut pb = ProgramBuilder::new("wrap");
    let counter = pb.global("counter", 1) as i64;
    let main = pb.declare_function("main");
    {
        let mut f = pb.build_function(main, "w.c");
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        let x = f.read_input(0);
        let guard = f.bin(BinOp::Lt, x, 0);
        f.at(5);
        f.br(guard, head, done); // guard branch: one outcome, early.
        f.set_block(head);
        let i = f.load(counter, 0);
        let again = f.bin(BinOp::Lt, i, 8);
        f.at(10);
        f.br(again, body, done); // loop branch: nine outcomes.
        f.set_block(body);
        let next = f.bin(BinOp::Add, i, 1);
        f.at(11);
        f.store(counter, 0, next);
        f.jmp(head);
        f.set_block(done);
        f.at(20);
        f.log_error("wrapped");
        f.exit(1);
        f.ret(None);
        f.finish();
    }
    let p = pb.finish(main);
    let hw = HwConfig {
        lbr_entries: entries,
        lcr_entries: entries,
        ..HwConfig::default()
    };
    Runner::instrumented(&p, opts).with_hw_config(hw)
}

#[test]
fn wrapped_lbr_evicts_the_early_branch() {
    let runner = looping_runner(&InstrumentOptions::lbrlog(), 4);
    let program = runner.machine().program();
    let guard = program.branches[0].id;
    let looped = program.branches[1].id;
    assert_eq!(program.branches[0].loc.line, 5);
    assert_eq!(program.branches[1].loc.line, 10);

    let log = run_and_log(&runner, &Workload::new(vec![-1])).expect("run reaches the log site");
    assert_eq!(log.lbr.len(), 4, "the ring snapshot is exactly the ring");
    // Nine loop-branch outcomes flowed through a 4-entry ring: the guard's
    // single early record has been overwritten.
    assert_eq!(log.lbr_position_of_branch(guard), None);
    let pos = log
        .lbr_position_of_branch(looped)
        .expect("the loop branch survives in the wrapped ring");
    assert!(pos <= 4, "position {pos} must lie inside the ring");
}

#[test]
fn wrapped_lcr_evicts_the_first_state_observation() {
    // Coherence events only fire on cache misses/invalidations, so a
    // single-threaded loop over one line yields exactly one LCR record.
    // Touch eight *distinct* cache lines instead: eight first-touch
    // misses, each observing Invalid at its own source line. With a
    // 4-entry ring (partly consumed by the §4.3 disable-path pollution)
    // the earliest misses must wrap out.
    let mut pb = ProgramBuilder::new("wrap_lcr");
    let addrs: Vec<i64> = (0..8)
        .map(|i| pb.global(format!("g{i}"), 1) as i64)
        .collect();
    let main = pb.declare_function("main");
    {
        let mut f = pb.build_function(main, "w.c");
        for (i, &a) in addrs.iter().enumerate() {
            f.at(30 + i as u32);
            f.load(a, 0);
        }
        f.at(50);
        f.log_error("wrapped");
        f.exit(1);
        f.ret(None);
        f.finish();
    }
    let p = pb.finish(main);
    let hw = HwConfig {
        lcr_entries: 4,
        ..HwConfig::default()
    };
    let runner = Runner::instrumented(&p, &InstrumentOptions::lcrlog(LcrConfig::SPACE_CONSUMING))
        .with_hw_config(hw);
    let log = run_and_log(&runner, &Workload::new(vec![])).expect("run reaches the log site");
    assert_eq!(log.lcr.len(), 4, "the ring snapshot is exactly the ring");
    // Pollution records carry an unknown location; a located Invalid
    // observation is a real first-touch miss.
    let survivor = log
        .lcr
        .iter()
        .find(|e| e.event.state == CoherenceState::Invalid && e.event.loc.line != 0)
        .unwrap_or_else(|| panic!("no real record survived the wrap: {:?}", log.lcr));
    assert!(
        survivor.event.loc.line > 30,
        "the survivor must be a late miss, got line {}",
        survivor.event.loc.line
    );
    // The first global's miss (line 30) wrapped out of the ring.
    let first_loc = SourceLoc {
        file: survivor.event.loc.file,
        line: 30,
    };
    assert_eq!(
        log.lcr_position_of_event(first_loc, CoherenceState::Invalid),
        None
    );
    assert_eq!(
        log.lcr_position_of_event(survivor.event.loc, CoherenceState::Invalid),
        Some(survivor.position)
    );
}
