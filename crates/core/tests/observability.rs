//! The engine's observability contract: the `engine.failure_streak`
//! gauge and the structured session events that feed the
//! `stm-observatory` health model.
//!
//! These live in their own integration binary because they enable the
//! process-global telemetry registry and assert on its exact state —
//! the library's unit tests run sessions concurrently and would race.

use std::sync::Mutex;
use stm_core::prelude::*;
use stm_core::transform::InstrumentOptions;
use stm_machine::builder::ProgramBuilder;
use stm_machine::ids::LogSiteId;
use stm_machine::ir::{BinOp, Program};

/// Error iff input 0 is negative (the engine unit tests' shape).
fn guarded_program() -> (Program, LogSiteId) {
    let mut pb = ProgramBuilder::new("p");
    let main = pb.declare_function("main");
    let site;
    {
        let mut f = pb.build_function(main, "m.c");
        let err = f.new_block();
        let ok = f.new_block();
        let x = f.read_input(0);
        let neg = f.bin(BinOp::Lt, x, 0);
        f.br(neg, err, ok);
        f.set_block(err);
        site = f.log_error("x must be non-negative");
        f.exit(1);
        f.ret(None);
        f.set_block(ok);
        f.output(x);
        f.ret(None);
        f.finish();
    }
    (pb.finish(main), site)
}

/// A session that fills its quotas (no perturbation).
fn clean_session(threads: usize) -> Result<CollectedProfiles, SessionError> {
    let (p, site) = guarded_program();
    DiagnosisSession::new(&p)
        .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
        .failure(FailureSpec::ErrorLogAt(site))
        .failing(vec![Workload::new(vec![-1])])
        .passing(vec![Workload::new(vec![1])])
        .failure_profiles(2)
        .success_profiles(2)
        .threads(threads)
        .collect()
}

/// A session whose perturbation layer loses every snapshot, so the
/// quotas cannot fill (the `CtlResponse::Lost` symptom).
fn lossy_session() -> Result<CollectedProfiles, SessionError> {
    let (p, site) = guarded_program();
    DiagnosisSession::new(&p)
        .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
        .failure(FailureSpec::ErrorLogAt(site))
        .failing(vec![Workload::new(vec![-1])])
        .passing(vec![Workload::new(vec![1])])
        .failure_profiles(2)
        .success_profiles(2)
        .max_runs(8)
        .hw_config(stm_hardware::HwConfig {
            perturb: stm_hardware::PerturbConfig::NONE.loss_rate(1.0),
            ..stm_hardware::HwConfig::default()
        })
        .collect()
}

/// Telemetry is process-global; serialise the tests and start each from
/// a reset, enabled, echo-quiet registry.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    stm_telemetry::reset();
    stm_telemetry::set_enabled(true);
    stm_telemetry::log::set_stderr_level(None);
    guard
}

fn unlock() {
    stm_telemetry::log::set_stderr_level(Some(stm_telemetry::log::Level::Warn));
    stm_telemetry::set_enabled(false);
}

fn streak() -> i64 {
    stm_telemetry::metrics_snapshot()
        .gauge("engine.failure_streak")
        .unwrap_or(0)
}

#[test]
fn failure_streak_counts_consecutive_bad_sessions_and_resets() {
    let _g = lock();
    clean_session(1).expect("clean session");
    assert_eq!(streak(), 0, "a clean session keeps the streak at zero");
    lossy_session().expect("lossy session terminates");
    assert_eq!(streak(), 1, "an unfilled quota is a failed cycle");
    lossy_session().expect("lossy session terminates");
    assert_eq!(streak(), 2, "consecutive failures accumulate");
    // Session errors count too (here: no failure spec).
    let (p, _) = guarded_program();
    DiagnosisSession::new(&p)
        .failing(vec![Workload::new(vec![-1])])
        .collect()
        .unwrap_err();
    assert_eq!(streak(), 3, "an errored session extends the streak");
    clean_session(1).expect("clean session");
    assert_eq!(streak(), 0, "one clean session resets the streak");
    unlock();
}

#[test]
fn sessions_emit_structured_progress_events() {
    let _g = lock();
    clean_session(2).expect("clean session");
    let events = stm_telemetry::log::take_events();
    let complete = events
        .iter()
        .find(|e| e.event == "session.complete")
        .expect("session.complete event");
    assert_eq!(complete.component, "engine");
    assert_eq!(complete.level, stm_telemetry::log::Level::Info);
    let field = |e: &stm_telemetry::log::Event, k: &str| {
        e.fields
            .iter()
            .find(|(n, _)| *n == k)
            .map(|(_, v)| v.clone())
    };
    assert_eq!(field(complete, "quota_met").as_deref(), Some("true"));
    assert_eq!(field(complete, "failures").as_deref(), Some("2"));
    assert!(
        !events.iter().any(|e| e.event == "profile.lost"),
        "clean sessions lose nothing"
    );

    lossy_session().expect("lossy session terminates");
    let events = stm_telemetry::log::take_events();
    let lost = events
        .iter()
        .find(|e| e.event == "profile.lost")
        .expect("profile.lost event");
    assert_eq!(field(lost, "quota_shortfall").as_deref(), Some("4"));
    let complete = events
        .iter()
        .find(|e| e.event == "session.complete")
        .expect("lossy sessions still complete");
    assert_eq!(field(complete, "quota_met").as_deref(), Some("false"));

    let (p, _) = guarded_program();
    DiagnosisSession::new(&p)
        .failing(vec![Workload::new(vec![-1])])
        .collect()
        .unwrap_err();
    let events = stm_telemetry::log::take_events();
    let error = events
        .iter()
        .find(|e| e.event == "session.error")
        .expect("session.error event");
    assert_eq!(error.level, stm_telemetry::log::Level::Error);
    assert!(
        field(error, "error")
            .unwrap()
            .contains("MissingFailureSpec"),
        "the error field names the failure"
    );
    unlock();
}

#[test]
fn enqueue_events_carry_the_job_flow_id() {
    let _g = lock();
    clean_session(4).expect("threaded session");
    let events = stm_telemetry::log::take_events();
    let enqueues: Vec<_> = events.iter().filter(|e| e.event == "job.enqueue").collect();
    assert!(!enqueues.is_empty(), "threaded sessions enqueue jobs");
    assert!(
        enqueues.iter().all(|e| e.flow != 0),
        "every enqueue is tied into its job's causal chain"
    );
    assert!(
        enqueues
            .iter()
            .all(|e| e.level == stm_telemetry::log::Level::Debug),
        "per-job events stay at debug level"
    );
    unlock();
}

#[test]
fn worker_gauges_return_to_idle_after_a_session() {
    let _g = lock();
    clean_session(4).expect("threaded session");
    let m = stm_telemetry::metrics_snapshot();
    assert_eq!(m.gauge("engine.workers"), Some(0), "pool gone");
    assert_eq!(m.gauge("engine.workers_busy"), Some(0), "nobody working");
    assert_eq!(m.gauge("engine.queue_depth"), Some(0), "queue drained");
    unlock();
}
