//! # stm-fleet — long-lived sharded ingest with explicit backpressure
//!
//! The batch [`DiagnosisSession`](stm_core::DiagnosisSession) executes
//! its own runs; a production fleet works the other way around:
//! thousands of endpoints *push* ring snapshots at a central daemon,
//! which must diagnose each workload population independently and under
//! bounded memory. This crate is that daemon:
//!
//! * **Sharding** — every snapshot names a shard (one per workload
//!   population); each shard owns a
//!   [`SnapshotIngest`](stm_core::converge::SnapshotIngest) — the same
//!   incremental ranking + [`StabilityPolicy`] machinery the session run
//!   loop uses — and early-stops independently of its siblings.
//! * **Backpressure** — each shard has a *bounded* ingest queue with an
//!   explicit [`ShedPolicy`]. Overload sheds snapshots deterministically
//!   (drop-oldest or reject-new), counts every shed in the
//!   `fleet.shed_total` counter and the per-shard
//!   `fleet.shed{shard="…"}` series, and emits a structured
//!   `fleet`/`shed` event per shed snapshot.
//! * **Observability** — per-shard queue depth, ingest and witness
//!   counts are published as labeled gauges, and a `"fleet"` status
//!   document (shard → live verdict) feeds `/diagnosis` and `stm_watch`.
//!
//! ## Determinism
//!
//! Each shard is consumed by exactly one worker thread popping a FIFO
//! queue, so snapshots are ingested in submission order regardless of
//! how many threads submit. For a fixed endpoint schedule the per-shard
//! final ranking is bit-identical to a batch
//! [`RankingModel`](stm_core::RankingModel) over the same (kept)
//! snapshots — the [`SnapshotIngest`](stm_core::converge::SnapshotIngest)
//! contract, pinned in `tests/fleet_determinism.rs`. Shedding is equally
//! deterministic: with a paused shard and a seeded schedule, exactly the
//! queued-beyond-capacity snapshots are shed, and which ones depends
//! only on the [`ShedPolicy`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

use stm_core::converge::{ConvergenceReport, SnapshotIngest, StabilityPolicy};
use stm_core::diagnose::Quotas;
use stm_core::runner::FailureSpec;
use stm_forensics::chain::CausalChain;
use stm_machine::layout::Layout;
use stm_machine::report::RunReport;
use stm_telemetry::json::Json;
use stm_telemetry::{self as telemetry, counter, log};

/// What a shard does with a snapshot that arrives while its bounded
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed the *oldest* queued snapshot and enqueue the new one:
    /// freshest-data-wins, the right default for live diagnosis where a
    /// newer snapshot is as informative as a stale one.
    DropOldest,
    /// Shed the *new* snapshot and keep the queue as-is:
    /// first-come-first-served, the right choice when replaying a fixed
    /// archive where the earliest snapshots must win.
    RejectNew,
}

impl ShedPolicy {
    /// The policy's wire form (events, status documents, artifacts).
    pub fn as_str(self) -> &'static str {
        match self {
            ShedPolicy::DropOldest => "drop-oldest",
            ShedPolicy::RejectNew => "reject-new",
        }
    }
}

/// Per-shard configuration: the diagnosis quota surface shared with the
/// batch session ([`Quotas`]), the early-stop policy, and the
/// backpressure envelope.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Ingest quotas. A shard stops ingesting once it holds
    /// `failure_profiles` failure *and* `success_profiles` success
    /// snapshots, or after `max_runs` ingest attempts — exactly the
    /// batch session's quota semantics.
    pub quotas: Quotas,
    /// Early-stop policy evaluated after every ingested snapshot.
    pub policy: StabilityPolicy,
    /// Bounded ingest queue capacity; beyond it [`ShardConfig::shed`]
    /// applies.
    pub queue_capacity: usize,
    /// What to shed when the queue is full.
    pub shed: ShedPolicy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            quotas: Quotas::default(),
            policy: StabilityPolicy::default(),
            queue_capacity: 64,
            shed: ShedPolicy::DropOldest,
        }
    }
}

impl ShardConfig {
    /// Replaces the quota surface.
    pub fn quotas(mut self, quotas: Quotas) -> Self {
        self.quotas = quotas;
        self
    }

    /// Replaces the early-stop policy.
    pub fn policy(mut self, policy: StabilityPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the queue capacity (clamped to at least 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Replaces the shed policy.
    pub fn shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }
}

/// One endpoint-submitted ring snapshot: which shard it belongs to, the
/// witness id the endpoint reports under, its outcome class, and the
/// run report carrying the decoded hardware rings.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Target shard (workload population) name.
    pub shard: String,
    /// Witness id — distinct per endpoint report; the ranking treats it
    /// as the profile identity.
    pub witness: String,
    /// `true` for a failure snapshot, `false` for a success snapshot.
    pub is_failure: bool,
    /// The run report the endpoint captured (ring snapshots included).
    pub report: RunReport,
}

/// The outcome of one [`FleetDaemon::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Enqueued; no shed.
    Enqueued,
    /// Queue was full; the *oldest* queued snapshot was shed to make
    /// room ([`ShedPolicy::DropOldest`]). The submitted snapshot IS
    /// enqueued.
    ShedOldest,
    /// Queue was full; the *submitted* snapshot was shed
    /// ([`ShedPolicy::RejectNew`]). The queue is unchanged.
    RejectedNew,
    /// No shard with that name exists; nothing was enqueued or counted.
    UnknownShard,
    /// The daemon is shutting down; nothing was enqueued.
    Closed,
}

/// Per-shard final accounting returned by [`FleetDaemon::finish`].
#[derive(Debug)]
pub struct ShardReport {
    /// Final verdict wire form: `converged` / `stable` / `stalled`, or
    /// `warming` when the shard never ingested a snapshot.
    pub verdict: String,
    /// The full convergence report (final ranking, evidence,
    /// trajectories); `None` for a warming shard.
    pub report: Option<ConvergenceReport>,
    /// Snapshots accepted into the queue (enqueued, including ones that
    /// later shed a predecessor).
    pub accepted: u64,
    /// Snapshots shed under backpressure (either policy).
    pub shed: u64,
    /// Snapshots ingested into the ranking.
    pub ingested: u64,
    /// Snapshots popped but skipped (missing profile / wrong ring).
    pub skipped: u64,
    /// Snapshots popped after the shard had already stopped (early-stop
    /// or quota); dropped without ingesting, like the batch session
    /// ignores post-stop runs.
    pub after_stop: u64,
    /// The causal chain standing when the shard stopped (JSON form of
    /// [`CausalChain`]); `None` when no chain ever formed.
    pub chain: Option<Json>,
}

impl ShardReport {
    /// The report as a JSON object (the per-shard entry of
    /// `FLEET_smoke.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("verdict", Json::from(self.verdict.as_str())),
            ("accepted", Json::from(self.accepted)),
            ("shed", Json::from(self.shed)),
            ("ingested", Json::from(self.ingested)),
            ("skipped", Json::from(self.skipped)),
            ("after_stop", Json::from(self.after_stop)),
            (
                "witnesses",
                Json::from(
                    self.report
                        .as_ref()
                        .map(|r| r.evidence.witnesses)
                        .unwrap_or(0),
                ),
            ),
            (
                "top1",
                self.report
                    .as_ref()
                    .and_then(|r| r.evidence.top1.clone())
                    .map(Json::from)
                    .unwrap_or(Json::Null),
            ),
            ("chain", self.chain.clone().unwrap_or(Json::Null)),
        ])
    }
}

/// The bounded FIFO ingest queue of one shard, plus its flow-control
/// flags. `paused` holds the worker off (snapshots keep queueing — the
/// deterministic way to force overload in tests); `closed` tells the
/// worker to drain and exit; `busy` marks a popped snapshot still being
/// processed (so [`FleetDaemon::drain`] does not report empty-but-busy
/// as drained).
#[derive(Debug)]
struct Queue {
    items: VecDeque<Snapshot>,
    paused: bool,
    closed: bool,
    busy: bool,
}

/// Mutable diagnosis state of one shard, owned by its worker.
#[derive(Debug)]
struct ShardState {
    ingest: Option<SnapshotIngest>,
    attempts: u64,
    ingested: u64,
    skipped: u64,
    after_stop: u64,
    done: bool,
    /// JSON form of the current [`CausalChain`], recomputed after every
    /// ingested snapshot; `None` until one forms.
    chain: Option<Json>,
    /// Fingerprint of `chain` — gates the `diagnosis.chain` event to
    /// actual form/change transitions.
    chain_fp: Option<u64>,
}

#[derive(Debug)]
struct Shard {
    name: String,
    config: ShardConfig,
    queue: Mutex<Queue>,
    cond: Condvar,
    state: Mutex<ShardState>,
    accepted: AtomicU64,
    shed: AtomicU64,
}

impl Shard {
    fn queue_lock(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn state_lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one shed snapshot: per-shard and fleet-wide counters plus
    /// the structured `fleet`/`shed` event.
    fn record_shed(&self, witness: &str) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        counter!("fleet.shed_total").incr();
        telemetry::labeled_counter_add("fleet.shed", "shard", &self.name, 1);
        log::warn(
            "fleet",
            "shed",
            vec![
                ("shard", self.name.clone()),
                ("witness", witness.to_string()),
                ("policy", self.config.shed.as_str().to_string()),
            ],
        );
    }

    /// Publishes this shard's labeled gauge series.
    fn publish_gauges(&self, queue_depth: usize) {
        telemetry::labeled_gauge_set("fleet.queue_depth", "shard", &self.name, queue_depth as i64);
        let st = self.state_lock();
        let (w, streak) = match &st.ingest {
            Some(i) => (i.witnesses(), i.top1_streak()),
            None => (0, 0),
        };
        telemetry::labeled_gauge_set("fleet.witnesses", "shard", &self.name, w as i64);
        telemetry::labeled_gauge_set("fleet.top1_stable_for", "shard", &self.name, streak as i64);
    }

    /// This shard's entry in the `"fleet"` status document.
    fn status_entry(&self) -> Json {
        let depth = self.queue_lock().items.len();
        let st = self.state_lock();
        let (verdict, witnesses, failures, successes, churn, streak) = match &st.ingest {
            Some(i) => (
                if st.done && !i.should_stop() {
                    // Quota-terminated without the policy firing: the
                    // final Stable/Stalled call belongs to finish();
                    // live, the shard is simply no longer collecting.
                    "quota"
                } else {
                    i.live_verdict()
                },
                i.witnesses(),
                i.failures(),
                i.successes(),
                i.churn(),
                i.top1_streak(),
            ),
            None => ("warming", 0, 0, 0, 0, 0),
        };
        Json::obj([
            ("verdict", Json::from(verdict)),
            ("witnesses", Json::from(witnesses)),
            ("failures", Json::from(failures)),
            ("successes", Json::from(successes)),
            ("rank_churn", Json::from(churn)),
            ("top1_stable_for", Json::from(streak)),
            ("chain", st.chain.clone().unwrap_or(Json::Null)),
            ("queue_depth", Json::from(depth)),
            (
                "accepted",
                Json::from(self.accepted.load(Ordering::Relaxed)),
            ),
            ("shed", Json::from(self.shed.load(Ordering::Relaxed))),
        ])
    }
}

/// Publishes the `"fleet"` status document covering every shard.
fn publish_fleet_doc(shards: &BTreeMap<String, Arc<Shard>>) {
    if !telemetry::enabled() {
        return;
    }
    let entries: Vec<(String, Json)> = shards
        .iter()
        .map(|(name, s)| (name.clone(), s.status_entry()))
        .collect();
    let shed_total: u64 = shards
        .values()
        .map(|s| s.shed.load(Ordering::Relaxed))
        .sum();
    telemetry::status::publish(
        "fleet",
        Json::obj([
            ("shards", Json::Obj(entries.into_iter().collect())),
            ("shed_total", Json::from(shed_total)),
        ]),
    );
}

/// The long-lived sharded ingest daemon.
///
/// Build it, [`add_shard`](FleetDaemon::add_shard) every workload
/// population, [`start`](FleetDaemon::start) the per-shard workers, then
/// [`submit`](FleetDaemon::submit) snapshots from any number of threads.
/// [`finish`](FleetDaemon::finish) drains, joins and returns per-shard
/// [`ShardReport`]s.
#[derive(Debug)]
pub struct FleetDaemon {
    shards: BTreeMap<String, Arc<Shard>>,
    workers: Vec<thread::JoinHandle<()>>,
    started: bool,
}

impl Default for FleetDaemon {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetDaemon {
    /// An empty daemon with no shards and no workers.
    pub fn new() -> Self {
        FleetDaemon {
            shards: BTreeMap::new(),
            workers: Vec::new(),
            started: false,
        }
    }

    /// Registers a shard. Each shard owns the layout and failure spec of
    /// its workload population (endpoints of one shard all run the same
    /// instrumented program). Must be called before
    /// [`start`](FleetDaemon::start); replaces any same-named shard.
    pub fn add_shard(
        &mut self,
        name: impl Into<String>,
        layout: Layout,
        spec: FailureSpec,
        config: ShardConfig,
    ) {
        assert!(!self.started, "add_shard after start");
        let name = name.into();
        let shard = Shard {
            name: name.clone(),
            config,
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                paused: false,
                closed: false,
                busy: false,
            }),
            cond: Condvar::new(),
            state: Mutex::new(ShardState {
                ingest: Some(SnapshotIngest::new(layout, spec, config.policy)),
                attempts: 0,
                ingested: 0,
                skipped: 0,
                after_stop: 0,
                done: false,
                chain: None,
                chain_fp: None,
            }),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        };
        self.shards.insert(name, Arc::new(shard));
    }

    /// Shard names, sorted.
    pub fn shard_names(&self) -> Vec<String> {
        self.shards.keys().cloned().collect()
    }

    /// Spawns one worker thread per shard and publishes the initial
    /// (all-warming) `"fleet"` status document. Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        publish_fleet_doc(&self.shards);
        for shard in self.shards.values() {
            let shard = Arc::clone(shard);
            let all = self.shards.clone();
            self.workers.push(thread::spawn(move || {
                worker_loop(&shard, &all);
                telemetry::flush_thread();
            }));
        }
    }

    /// Submits one snapshot to its shard's queue, applying backpressure
    /// when the queue is full. Safe to call from any thread.
    pub fn submit(&self, snapshot: Snapshot) -> SubmitOutcome {
        let Some(shard) = self.shards.get(&snapshot.shard) else {
            return SubmitOutcome::UnknownShard;
        };
        let outcome;
        let depth;
        {
            let mut q = shard.queue_lock();
            if q.closed {
                return SubmitOutcome::Closed;
            }
            if q.items.len() >= shard.config.queue_capacity {
                match shard.config.shed {
                    ShedPolicy::DropOldest => {
                        let old = q.items.pop_front().expect("capacity >= 1, queue full");
                        q.items.push_back(snapshot);
                        shard.accepted.fetch_add(1, Ordering::Relaxed);
                        depth = q.items.len();
                        drop(q);
                        shard.record_shed(&old.witness);
                        outcome = SubmitOutcome::ShedOldest;
                    }
                    ShedPolicy::RejectNew => {
                        depth = q.items.len();
                        let witness = snapshot.witness;
                        drop(q);
                        shard.record_shed(&witness);
                        outcome = SubmitOutcome::RejectedNew;
                    }
                }
            } else {
                q.items.push_back(snapshot);
                shard.accepted.fetch_add(1, Ordering::Relaxed);
                depth = q.items.len();
                outcome = SubmitOutcome::Enqueued;
            }
        }
        telemetry::labeled_gauge_set("fleet.queue_depth", "shard", &shard.name, depth as i64);
        shard.cond.notify_all();
        outcome
    }

    /// Pauses a shard's worker: queued snapshots stay queued (and shed
    /// under overload) until [`resume`](FleetDaemon::resume). The
    /// deterministic way to force backpressure. Returns `false` for an
    /// unknown shard.
    pub fn pause(&self, shard: &str) -> bool {
        let Some(s) = self.shards.get(shard) else {
            return false;
        };
        s.queue_lock().paused = true;
        s.cond.notify_all();
        true
    }

    /// Resumes a paused shard. Returns `false` for an unknown shard.
    pub fn resume(&self, shard: &str) -> bool {
        let Some(s) = self.shards.get(shard) else {
            return false;
        };
        s.queue_lock().paused = false;
        s.cond.notify_all();
        true
    }

    /// Current queue depth of a shard (0 for unknown shards).
    pub fn queue_depth(&self, shard: &str) -> usize {
        self.shards
            .get(shard)
            .map(|s| s.queue_lock().items.len())
            .unwrap_or(0)
    }

    /// Snapshots shed by a shard so far (0 for unknown shards).
    pub fn shed_count(&self, shard: &str) -> u64 {
        self.shards
            .get(shard)
            .map(|s| s.shed.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Blocks until every *unpaused* shard's queue is empty and its
    /// worker idle. A paused shard is skipped — its queue is
    /// intentionally backed up.
    pub fn drain(&self) {
        for shard in self.shards.values() {
            let mut q = shard.queue_lock();
            while !q.paused && (!q.items.is_empty() || q.busy) {
                q = shard.cond.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// Closes every queue (un-pausing so backlogs drain), joins all
    /// workers, and returns per-shard reports. The final `"fleet"`
    /// status document (terminal verdicts) is published before
    /// returning.
    pub fn finish(mut self) -> BTreeMap<String, ShardReport> {
        for shard in self.shards.values() {
            let mut q = shard.queue_lock();
            q.closed = true;
            q.paused = false;
            shard.cond.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let mut reports = BTreeMap::new();
        let mut entries: Vec<(String, Json)> = Vec::new();
        let mut shed_total = 0u64;
        for (name, shard) in &self.shards {
            let mut st = shard.state_lock();
            let ingest = st.ingest.take().expect("finish called once");
            let report = ingest.finish();
            let verdict = report
                .as_ref()
                .map(|r| r.verdict.as_str())
                .unwrap_or("warming")
                .to_string();
            let shed = shard.shed.load(Ordering::Relaxed);
            shed_total += shed;
            let shard_report = ShardReport {
                verdict: verdict.clone(),
                report,
                accepted: shard.accepted.load(Ordering::Relaxed),
                shed,
                ingested: st.ingested,
                skipped: st.skipped,
                after_stop: st.after_stop,
                chain: st.chain.take(),
            };
            entries.push((name.clone(), shard_report.to_json()));
            reports.insert(name.clone(), shard_report);
        }
        if telemetry::enabled() {
            telemetry::status::publish(
                "fleet",
                Json::obj([
                    ("shards", Json::Obj(entries.into_iter().collect())),
                    ("shed_total", Json::from(shed_total)),
                ]),
            );
        }
        reports
    }
}

/// One shard's worker: pop in FIFO order, ingest, publish, repeat until
/// the queue is closed and empty.
fn worker_loop(shard: &Arc<Shard>, all: &BTreeMap<String, Arc<Shard>>) {
    loop {
        let snapshot = {
            let mut q = shard.queue_lock();
            loop {
                if !q.paused {
                    if let Some(s) = q.items.pop_front() {
                        q.busy = true;
                        break Some(s);
                    }
                    if q.closed {
                        break None;
                    }
                } else if q.closed {
                    // finish() un-pauses before closing; a pause racing
                    // a close must not wedge the worker.
                    q.paused = false;
                    continue;
                }
                q = shard.cond.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        let Some(snapshot) = snapshot else {
            break;
        };
        {
            let mut st = shard.state_lock();
            if st.done {
                st.after_stop += 1;
            } else {
                st.attempts += 1;
                let ingest = st.ingest.as_mut().expect("worker runs before finish");
                let ok = ingest.observe(snapshot.is_failure, &snapshot.witness, &snapshot.report);
                let quotas = shard.config.quotas;
                let quota_met = ingest.failures() >= quotas.failure_profiles
                    && ingest.successes() >= quotas.success_profiles;
                let stop = ingest.should_stop();
                let chain = if ok {
                    CausalChain::from_ingest(ingest)
                } else {
                    None
                };
                if ok {
                    st.ingested += 1;
                    let fp = chain.as_ref().map(CausalChain::fingerprint);
                    if fp != st.chain_fp {
                        if let Some(c) = &chain {
                            log::info(
                                "fleet",
                                "diagnosis.chain",
                                vec![
                                    ("shard", shard.name.clone()),
                                    ("kind", c.kind.as_str().to_string()),
                                    ("links", c.links.len().to_string()),
                                    ("anchor", c.anchor.clone()),
                                    ("top_predictor", c.top_predictor.clone()),
                                ],
                            );
                        }
                        st.chain = chain.as_ref().map(CausalChain::to_json);
                        st.chain_fp = fp;
                    }
                } else {
                    st.skipped += 1;
                }
                if stop || quota_met || st.attempts >= quotas.max_runs as u64 {
                    st.done = true;
                }
            }
        }
        let depth = {
            let mut q = shard.queue_lock();
            q.busy = false;
            q.items.len()
        };
        shard.cond.notify_all();
        shard.publish_gauges(depth);
        publish_fleet_doc(all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::prelude::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;
    use stm_machine::ir::Program;

    /// A tiny guarded program: logs an error whenever input 0 is
    /// negative (the crate-doc example of stm-core).
    fn guarded_program() -> (Program, stm_machine::ids::LogSiteId) {
        let mut pb = ProgramBuilder::new("fleet-test");
        let main = pb.declare_function("main");
        let mut f = pb.build_function(main, "fleet.c");
        let err = f.new_block();
        let ok = f.new_block();
        let x = f.read_input(0);
        let neg = f.bin(BinOp::Lt, x, 0);
        f.br(neg, err, ok);
        f.set_block(err);
        let site = f.log_error("negative input");
        f.exit(1);
        f.ret(None);
        f.set_block(ok);
        f.output(x);
        f.ret(None);
        f.finish();
        (pb.finish(main), site)
    }

    fn collected() -> (CollectedProfiles, stm_machine::ids::LogSiteId) {
        let (program, site) = guarded_program();
        let profiles = DiagnosisSession::new(&program)
            .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
            .failure(FailureSpec::ErrorLogAt(site))
            .failing(vec![Workload::new(vec![-1]), Workload::new(vec![-7])])
            .passing(vec![Workload::new(vec![1]), Workload::new(vec![9])])
            .failure_profiles(6)
            .success_profiles(6)
            .collect()
            .expect("collection succeeds");
        (profiles, site)
    }

    fn snapshots(profiles: &CollectedProfiles, shard: &str) -> Vec<Snapshot> {
        let mut out = Vec::new();
        for run in profiles.failure_runs() {
            out.push(Snapshot {
                shard: shard.to_string(),
                witness: run.witness.clone(),
                is_failure: true,
                report: run.report.clone(),
            });
        }
        for run in profiles.success_runs() {
            out.push(Snapshot {
                shard: shard.to_string(),
                witness: run.witness.clone(),
                is_failure: false,
                report: run.report.clone(),
            });
        }
        out
    }

    #[test]
    fn daemon_matches_batch_ranking() {
        let (profiles, _site) = collected();
        let expected = profiles.lbr_model().rank();

        let mut fleet = FleetDaemon::new();
        fleet.add_shard(
            "only",
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            ShardConfig::default().policy(StabilityPolicy::never()),
        );
        fleet.start();
        for s in snapshots(&profiles, "only") {
            assert_eq!(fleet.submit(s), SubmitOutcome::Enqueued);
        }
        let reports = fleet.finish();
        let report = reports["only"].report.as_ref().expect("ingested");
        match &report.final_ranking {
            FinalRanking::Lbr(ranked) => assert_eq!(*ranked, expected),
            FinalRanking::Lcr(_) => panic!("lbr shard produced lcr ranking"),
        }
        assert_eq!(reports["only"].ingested, 12);
        assert_eq!(reports["only"].shed, 0);
    }

    #[test]
    fn chain_rides_the_shard_verdict() {
        let (profiles, _site) = collected();
        let mut fleet = FleetDaemon::new();
        fleet.add_shard(
            "only",
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            ShardConfig::default().policy(StabilityPolicy::never()),
        );
        fleet.start();
        for s in snapshots(&profiles, "only") {
            assert_eq!(fleet.submit(s), SubmitOutcome::Enqueued);
        }
        let reports = fleet.finish();
        let chain = reports["only"].chain.as_ref().expect("chain formed");
        let links = chain.get("links").and_then(Json::as_array).expect("links");
        assert!(!links.is_empty(), "chain has at least the anchor link");
        // The terminal fleet doc entry carries the same chain.
        let entry = reports["only"].to_json();
        assert_eq!(entry.get("chain"), Some(chain));
    }

    #[test]
    fn unknown_shard_and_closed_are_reported() {
        let (profiles, _site) = collected();
        let mut fleet = FleetDaemon::new();
        fleet.add_shard(
            "a",
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            ShardConfig::default(),
        );
        fleet.start();
        let mut snap = snapshots(&profiles, "nope").remove(0);
        assert_eq!(fleet.submit(snap.clone()), SubmitOutcome::UnknownShard);
        snap.shard = "a".to_string();
        assert_eq!(fleet.submit(snap.clone()), SubmitOutcome::Enqueued);
        let _ = fleet.finish();
    }

    #[test]
    fn drop_oldest_sheds_exactly_the_overflow() {
        let (profiles, _site) = collected();
        let all = snapshots(&profiles, "s");
        let capacity = 4;
        let mut fleet = FleetDaemon::new();
        fleet.add_shard(
            "s",
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            ShardConfig::default()
                .policy(StabilityPolicy::never())
                .queue_capacity(capacity)
                .shed(ShedPolicy::DropOldest),
        );
        fleet.start();
        fleet.pause("s");
        let mut shed = 0;
        for s in &all {
            match fleet.submit(s.clone()) {
                SubmitOutcome::Enqueued => {}
                SubmitOutcome::ShedOldest => shed += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(shed, all.len() - capacity);
        assert_eq!(fleet.queue_depth("s"), capacity);
        assert_eq!(fleet.shed_count("s"), shed as u64);
        fleet.resume("s");
        fleet.drain();
        let reports = fleet.finish();
        // Drop-oldest keeps the LAST `capacity` snapshots.
        assert_eq!(reports["s"].ingested, capacity as u64);
        assert_eq!(reports["s"].shed, shed as u64);
        let expected: Vec<_> = all[all.len() - capacity..]
            .iter()
            .map(|s| s.witness.clone())
            .collect();
        // All kept snapshots are successes here (failures came first and
        // were shed), so the ranking has no failure evidence; the exact
        // kept set is pinned via counts instead.
        assert_eq!(expected.len(), capacity);
    }

    #[test]
    fn reject_new_keeps_the_head_of_the_stream() {
        let (profiles, _site) = collected();
        let all = snapshots(&profiles, "s");
        let capacity = 5;
        let mut fleet = FleetDaemon::new();
        fleet.add_shard(
            "s",
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            ShardConfig::default()
                .policy(StabilityPolicy::never())
                .queue_capacity(capacity)
                .shed(ShedPolicy::RejectNew),
        );
        fleet.start();
        fleet.pause("s");
        let mut rejected = 0;
        for s in &all {
            match fleet.submit(s.clone()) {
                SubmitOutcome::Enqueued => {}
                SubmitOutcome::RejectedNew => rejected += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(rejected, all.len() - capacity);
        fleet.resume("s");
        let reports = fleet.finish();
        assert_eq!(reports["s"].ingested, capacity as u64);
        assert_eq!(reports["s"].shed, rejected as u64);
    }

    #[test]
    fn early_stop_latches_per_shard() {
        let (profiles, _site) = collected();
        let all = snapshots(&profiles, "s");
        let mut fleet = FleetDaemon::new();
        fleet.add_shard(
            "s",
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            ShardConfig::default().policy(
                StabilityPolicy::default()
                    .stable_for(2)
                    .min_failures(2)
                    .min_successes(2),
            ),
        );
        fleet.start();
        // Interleave so the policy can see both classes early.
        let (fails, passes): (Vec<_>, Vec<_>) = all.into_iter().partition(|s| s.is_failure);
        for (f, p) in fails.into_iter().zip(passes) {
            fleet.submit(f);
            fleet.submit(p);
        }
        let reports = fleet.finish();
        let r = &reports["s"];
        assert_eq!(r.verdict, "converged");
        // Post-stop snapshots were dropped, not ingested.
        assert!(r.after_stop > 0, "expected post-stop drops, got {r:?}");
        let report = r.report.as_ref().expect("report");
        assert_eq!(report.verdict, Verdict::ConvergedEarly);
    }
}
