//! The fleet ingest daemon driver: simulates thousands of endpoints
//! pushing ring snapshots at a sharded [`FleetDaemon`], then reports
//! per-shard verdicts and backpressure accounting.
//!
//! ```text
//! stm_fleetd [--endpoints N] [--capacity N] [--seed N] [--shed drop|reject]
//! stm_fleetd --smoke    (self-contained CI gate, writes results/FLEET_smoke.json)
//! ```
//!
//! The driver builds two tiny guarded programs (two workload
//! populations), batch-collects a snapshot pool for each with a
//! [`DiagnosisSession`], and replays the pools through the daemon from a
//! seeded endpoint schedule across four shards. One shard is paused
//! mid-run and deliberately overloaded, so the run demonstrates — and
//! the smoke gate *asserts* — exact shed accounting: `overflow` extra
//! submissions beyond a full queue shed exactly `overflow` snapshots,
//! each counted in `fleet.shed_total` and emitted as a `fleet`/`shed`
//! event.

use std::time::Instant;

use stm_core::engine::{CollectedProfiles, DiagnosisSession};
use stm_core::runner::{FailureSpec, Workload};
use stm_core::transform::InstrumentOptions;
use stm_fleet::{FleetDaemon, ShardConfig, ShedPolicy, Snapshot, SubmitOutcome};
use stm_machine::builder::ProgramBuilder;
use stm_machine::ids::LogSiteId;
use stm_machine::ir::{BinOp, Program};
use stm_telemetry::json::Json;
use stm_telemetry::log;

fn usage() -> ! {
    eprintln!("usage: stm_fleetd [--endpoints N] [--capacity N] [--seed N] [--shed drop|reject]");
    eprintln!("       stm_fleetd --smoke   (self-contained CI gate)");
    std::process::exit(2);
}

/// Deterministic xorshift64* schedule generator — the "endpoint
/// schedule seed" of the determinism contract.
struct Schedule(u64);

impl Schedule {
    fn next(&mut self) -> u64 {
        // xorshift64*: full-period, good enough to spread endpoints.
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        self.0
    }
}

/// A program that fails (logs an error) when input 0 is negative.
fn alpha_program() -> (Program, LogSiteId) {
    let mut pb = ProgramBuilder::new("fleet-alpha");
    let main = pb.declare_function("main");
    let mut f = pb.build_function(main, "alpha.c");
    let err = f.new_block();
    let ok = f.new_block();
    let x = f.read_input(0);
    let neg = f.bin(BinOp::Lt, x, 0);
    f.br(neg, err, ok);
    f.set_block(err);
    let site = f.log_error("negative input");
    f.exit(1);
    f.ret(None);
    f.set_block(ok);
    f.output(x);
    f.ret(None);
    f.finish();
    (pb.finish(main), site)
}

/// A program that fails when input 0 exceeds a threshold — a different
/// branch shape, so the two populations have distinct root causes.
fn beta_program() -> (Program, LogSiteId) {
    let mut pb = ProgramBuilder::new("fleet-beta");
    let main = pb.declare_function("main");
    let mut f = pb.build_function(main, "beta.c");
    let big = f.new_block();
    let small = f.new_block();
    let done = f.new_block();
    let x = f.read_input(0);
    let over = f.bin(BinOp::Gt, x, 100);
    f.br(over, big, small);
    f.set_block(big);
    let site = f.log_error("threshold exceeded");
    f.exit(1);
    f.ret(None);
    f.set_block(small);
    let doubled = f.bin(BinOp::Add, x, x);
    f.output(doubled);
    f.jmp(done);
    f.set_block(done);
    f.ret(None);
    f.finish();
    (pb.finish(main), site)
}

/// Batch-collects a snapshot pool for one population: the runs whose
/// reports the simulated endpoints will replay at the daemon.
fn collect_pool(
    program: &Program,
    site: LogSiteId,
    failing: Vec<Workload>,
    passing: Vec<Workload>,
) -> CollectedProfiles {
    DiagnosisSession::new(program)
        .instrument(&InstrumentOptions::lbra_reactive(vec![site], vec![]))
        .failure(FailureSpec::ErrorLogAt(site))
        .failing(failing)
        .passing(passing)
        .failure_profiles(12)
        .success_profiles(12)
        .collect()
        .expect("pool collection succeeds")
}

/// (is_failure, witness, report) triples of a pool, failures first —
/// the replayable snapshot source.
fn pool_snapshots(
    profiles: &CollectedProfiles,
) -> Vec<(bool, String, stm_machine::report::RunReport)> {
    let mut out = Vec::new();
    for run in profiles.failure_runs() {
        out.push((true, run.witness.clone(), run.report.clone()));
    }
    for run in profiles.success_runs() {
        out.push((false, run.witness.clone(), run.report.clone()));
    }
    out
}

struct RunParams {
    endpoints: usize,
    capacity: usize,
    seed: u64,
    shed: ShedPolicy,
    overflow: usize,
    smoke: bool,
}

fn run_fleet(p: &RunParams) -> i32 {
    stm_telemetry::set_enabled(true);
    let started = Instant::now();
    let mut failures: Vec<String> = Vec::new();

    let (alpha, alpha_site) = alpha_program();
    let (beta, beta_site) = beta_program();
    let alpha_pool = collect_pool(
        &alpha,
        alpha_site,
        vec![Workload::new(vec![-1]), Workload::new(vec![-50])],
        vec![Workload::new(vec![3]), Workload::new(vec![70])],
    );
    let beta_pool = collect_pool(
        &beta,
        beta_site,
        vec![Workload::new(vec![101]), Workload::new(vec![500])],
        vec![Workload::new(vec![10]), Workload::new(vec![99])],
    );
    let pools = [pool_snapshots(&alpha_pool), pool_snapshots(&beta_pool)];
    println!(
        "fleetd: pools ready ({} alpha, {} beta snapshots)",
        pools[0].len(),
        pools[1].len()
    );

    // Four shards over two populations. Generous quotas keep every
    // endpoint's snapshot eligible; the stability policy early-stops
    // each shard on its own.
    let config = ShardConfig::default()
        .queue_capacity(p.capacity)
        .shed(p.shed)
        .quotas(
            stm_core::diagnose::Quotas::default()
                .failure_profiles(p.endpoints)
                .success_profiles(p.endpoints)
                .max_runs(p.endpoints.saturating_mul(4).max(2000)),
        );
    let shards = ["alpha-0", "alpha-1", "beta-0", "beta-1"];
    let mut fleet = FleetDaemon::new();
    for (i, name) in shards.iter().enumerate() {
        let profiles = if i < 2 { &alpha_pool } else { &beta_pool };
        fleet.add_shard(
            *name,
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            config,
        );
    }
    fleet.start();

    // The seeded endpoint schedule: each endpoint reports one snapshot
    // into a schedule-chosen shard.
    let mut schedule = Schedule(p.seed | 1);
    let mut submitted = 0usize;
    for endpoint in 0..p.endpoints {
        let r = schedule.next();
        let shard_idx = (r % shards.len() as u64) as usize;
        let pool = &pools[shard_idx / 2];
        let (is_failure, witness, report) = &pool[(r >> 8) as usize % pool.len()];
        let outcome = fleet.submit(Snapshot {
            shard: shards[shard_idx].to_string(),
            witness: format!("ep{endpoint}:{witness}"),
            is_failure: *is_failure,
            report: report.clone(),
        });
        if outcome == SubmitOutcome::UnknownShard || outcome == SubmitOutcome::Closed {
            failures.push(format!(
                "endpoint {endpoint}: unexpected outcome {outcome:?}"
            ));
        }
        submitted += 1;
    }
    fleet.drain();

    // The main schedule must have formed chains: every shard ingested
    // failing snapshots, so `diagnosis.chain` events fired as the
    // chains formed and re-formed.
    let warmup_events = log::take_events(); // also isolates the shed-storm window
    let chain_events = warmup_events
        .iter()
        .filter(|e| e.component == "fleet" && e.event == "diagnosis.chain")
        .count();
    if chain_events == 0 {
        failures.push("no fleet/diagnosis.chain event fired during ingest".to_string());
    } else {
        println!("fleetd: {chain_events} diagnosis.chain events during ingest");
    }

    // Forced overload: hold beta-1's worker, fill its queue to capacity
    // and push `overflow` more. Exactly `overflow` snapshots must shed.
    fleet.pause("beta-1");
    let shed_before = fleet.shed_count("beta-1");
    let mut schedule = Schedule(p.seed.wrapping_add(0xBEEF) | 1);
    let mut sheds_seen = 0u64;
    for extra in 0..p.capacity + p.overflow {
        let pool = &pools[1];
        let (is_failure, witness, report) = &pool[schedule.next() as usize % pool.len()];
        match fleet.submit(Snapshot {
            shard: "beta-1".to_string(),
            witness: format!("overload{extra}:{witness}"),
            is_failure: *is_failure,
            report: report.clone(),
        }) {
            SubmitOutcome::Enqueued => {}
            SubmitOutcome::ShedOldest | SubmitOutcome::RejectedNew => sheds_seen += 1,
            other => failures.push(format!("overload {extra}: unexpected outcome {other:?}")),
        }
        submitted += 1;
    }
    let forced_shed = fleet.shed_count("beta-1") - shed_before;
    if forced_shed != p.overflow as u64 || sheds_seen != p.overflow as u64 {
        failures.push(format!(
            "forced overload shed {forced_shed} (outcomes: {sheds_seen}), expected exactly {}",
            p.overflow
        ));
    } else {
        println!(
            "fleetd: forced overload shed exactly {forced_shed} snapshots ({})",
            p.shed.as_str()
        );
    }
    let shed_events = log::take_events()
        .iter()
        .filter(|e| e.component == "fleet" && e.event == "shed")
        .count();
    if shed_events != p.overflow {
        failures.push(format!(
            "saw {shed_events} fleet/shed events, expected {}",
            p.overflow
        ));
    }
    fleet.resume("beta-1");
    fleet.drain();

    // The fleet status document must cover every shard before shutdown,
    // and every ingesting shard's entry must carry a live causal chain
    // (this is the document /diagnosis serves — the chain must be there
    // while the daemon is still running, not only in the final report).
    match stm_telemetry::status::get("fleet") {
        Some(doc) => {
            let covered = shards
                .iter()
                .all(|s| doc.get("shards").and_then(|m| m.get(s)).is_some());
            if !covered {
                failures.push("fleet status document is missing shards".to_string());
            }
            for s in &shards {
                let chain = doc
                    .get("shards")
                    .and_then(|m| m.get(s))
                    .and_then(|e| e.get("chain"));
                let links = chain
                    .and_then(|c| c.get("links"))
                    .and_then(Json::as_array)
                    .map(|l| l.len())
                    .unwrap_or(0);
                if links == 0 {
                    failures.push(format!(
                        "shard {s}: live status entry has no causal chain (chain = {chain:?})"
                    ));
                }
            }
        }
        None => failures.push("no \"fleet\" status document published".to_string()),
    }

    let reports = fleet.finish();
    let elapsed = started.elapsed();
    let mut shard_entries: Vec<(String, Json)> = Vec::new();
    let mut shed_total = 0u64;
    for (name, report) in &reports {
        println!(
            "fleetd: {name}: {} (ingested {}, shed {}, after-stop {})",
            report.verdict, report.ingested, report.shed, report.after_stop
        );
        if report.verdict == "warming" {
            failures.push(format!("shard {name} never ingested a snapshot"));
        }
        shed_total += report.shed;
        shard_entries.push((name.clone(), report.to_json()));
    }
    let metrics = stm_telemetry::metrics_snapshot();
    if metrics.counter("fleet.shed_total").unwrap_or(0) != shed_total {
        failures.push(format!(
            "fleet.shed_total counter {:?} != per-shard sum {shed_total}",
            metrics.counter("fleet.shed_total")
        ));
    }
    let labeled = stm_telemetry::series_name("fleet.shed", "shard", "beta-1");
    if metrics.counter(&labeled).unwrap_or(0) < forced_shed {
        failures.push(format!("labeled series {labeled} missing the forced sheds"));
    }

    let eps = submitted as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "fleetd: {submitted} endpoint submissions in {:.1} ms ({eps:.0}/s), shed_total {shed_total}",
        elapsed.as_secs_f64() * 1e3
    );

    let doc = Json::obj([
        ("endpoints", Json::from(submitted)),
        ("capacity", Json::from(p.capacity)),
        ("seed", Json::from(p.seed)),
        ("shed_policy", Json::from(p.shed.as_str())),
        ("forced_overflow", Json::from(p.overflow)),
        ("forced_shed", Json::from(forced_shed)),
        ("shed_total", Json::from(shed_total)),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        ("endpoints_per_sec", Json::from(eps)),
        ("shards", Json::Obj(shard_entries.into_iter().collect())),
    ]);
    let out = if p.smoke {
        "results/FLEET_smoke.json"
    } else {
        "results/FLEET_run.json"
    };
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(out, doc.encode() + "\n"))
    {
        failures.push(format!("could not write {out}: {e}"));
    } else {
        println!("wrote {out}");
    }

    if failures.is_empty() {
        println!("fleetd: OK");
        0
    } else {
        for f in &failures {
            eprintln!("fleetd: FAILED: {f}");
        }
        1
    }
}

fn main() {
    let mut p = RunParams {
        endpoints: 400,
        capacity: 16,
        seed: 42,
        shed: ShedPolicy::DropOldest,
        overflow: 8,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--endpoints" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                p.endpoints = n;
            }
            "--capacity" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    usage()
                };
                p.capacity = n.max(1);
            }
            "--seed" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                p.seed = n;
            }
            "--shed" => match args.next().as_deref() {
                Some("drop") => p.shed = ShedPolicy::DropOldest,
                Some("reject") => p.shed = ShedPolicy::RejectNew,
                _ => usage(),
            },
            "--smoke" => {
                p.smoke = true;
                p.endpoints = 96;
            }
            _ => usage(),
        }
    }
    std::process::exit(run_fleet(&p));
}
