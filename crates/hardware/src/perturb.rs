//! Ring-perturbation / fault-injection layer (`stm-perturb`).
//!
//! A production deployment rarely sees the full Nehalem-sized signal the
//! paper's simulator assumes: older parts ship 4- or 8-entry LBRs (§2.1),
//! drivers lose snapshots under load, and sampled coherence feeds thin
//! out. This module models that *degraded-signal regime* as a pipeline of
//! [`Perturbation`] injectors applied at the **hardware-snapshot
//! boundary** — recording is never touched, so a perturbed run executes
//! (and classifies) exactly like an unperturbed one; only what the driver
//! *reads back* degrades.
//!
//! Concrete injectors:
//!
//! * [`TruncateRing`] — caps a snapshot at its `N` newest records,
//!   reproducing the paper's 4/8/16-entry LBR sweep without rebuilding
//!   the machine;
//! * [`DropEntries`] — loses each record independently with a configured
//!   probability (a lossy read path);
//! * [`FlipCoherence`] — replaces an LCR record's observed MESI state
//!   with a random *other* state (stale/corrupted coherence metadata);
//! * [`ThinSampler`] — keeps every `k`-th PBI coherence sample (a longer
//!   effective sampler period);
//! * [`SnapshotLoss`] — loses whole snapshots at log sites, surfacing as
//!   [`CtlResponse::Lost`](stm_machine::events::CtlResponse::Lost).
//!
//! Every random decision draws from a [`SplitMix64`] stream seeded from
//! the *run's* scheduler seed mixed with [`PerturbConfig::seed`]. Each run
//! owns a private [`PerturbLayer`] inside its `HardwareCtx`, so the draw
//! sequence depends only on that run's own event order — the collection
//! engine's `threads(N)` ≡ `threads(1)` guarantee survives perturbation
//! bit for bit.

use std::fmt;
use stm_machine::events::{BranchRecord, CoherenceRecord, CoherenceState};
use stm_machine::rng::SplitMix64;

/// One million — the denominator of all parts-per-million rates.
pub const PPM_SCALE: u32 = 1_000_000;

/// Converts a probability in `[0, 1]` to parts-per-million, clamping.
pub fn ppm(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * PPM_SCALE as f64).round() as u32
}

/// Draws `true` with probability `ppm / 1e6`, consuming exactly one RNG
/// value (so the draw count is independent of the rate).
fn chance(rng: &mut SplitMix64, ppm: u32) -> bool {
    match ppm {
        0 => {
            let _ = rng.next_u64();
            false
        }
        p if p >= PPM_SCALE => {
            let _ = rng.next_u64();
            true
        }
        p => rng.next_below(PPM_SCALE as u64) < p as u64,
    }
}

/// A fault injector applied to hardware snapshots as the driver reads
/// them. Implementations must be deterministic functions of their inputs
/// and the RNG stream: no clocks, no global state.
pub trait Perturbation: fmt::Debug + Send + Sync {
    /// Injector name, used in telemetry and reports.
    fn name(&self) -> &'static str;

    /// `true` drops the whole snapshot read (the driver sees nothing).
    fn loses_snapshot(&self, _rng: &mut SplitMix64) -> bool {
        false
    }

    /// Degrades an LBR snapshot (records newest-first).
    fn perturb_lbr(&self, _rng: &mut SplitMix64, _records: &mut Vec<BranchRecord>) {}

    /// Degrades an LCR snapshot (records newest-first).
    fn perturb_lcr(&self, _rng: &mut SplitMix64, _records: &mut Vec<CoherenceRecord>) {}

    /// Degrades the PBI sampler's latched records (oldest-first).
    fn perturb_samples(&self, _rng: &mut SplitMix64, _samples: &mut Vec<CoherenceRecord>) {}

    /// Clones the injector behind the trait object (the hardware context
    /// is `Clone`).
    fn clone_box(&self) -> Box<dyn Perturbation>;
}

impl Clone for Box<dyn Perturbation> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Caps ring snapshots at their `N` newest records — the 4/8/16-entry
/// capacity sweep of the paper's §2.1/§7, applied at read time.
/// Snapshots arrive newest-first, so truncation preserves that order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncateRing {
    /// Keep this many newest LBR records (`None` = untouched).
    pub lbr: Option<usize>,
    /// Keep this many newest LCR records (`None` = untouched).
    pub lcr: Option<usize>,
}

impl Perturbation for TruncateRing {
    fn name(&self) -> &'static str {
        "truncate_ring"
    }

    fn perturb_lbr(&self, _rng: &mut SplitMix64, records: &mut Vec<BranchRecord>) {
        if let Some(n) = self.lbr {
            if records.len() > n {
                stm_telemetry::counter!("perturb.records_truncated")
                    .add((records.len() - n) as u64);
                records.truncate(n);
            }
        }
    }

    fn perturb_lcr(&self, _rng: &mut SplitMix64, records: &mut Vec<CoherenceRecord>) {
        if let Some(n) = self.lcr {
            if records.len() > n {
                stm_telemetry::counter!("perturb.records_truncated")
                    .add((records.len() - n) as u64);
                records.truncate(n);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Perturbation> {
        Box::new(*self)
    }
}

/// Drops each snapshot record independently with probability
/// `ppm / 1e6` — a lossy driver read path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropEntries {
    /// Per-record drop probability in parts per million.
    pub ppm: u32,
}

impl DropEntries {
    fn drop_from<T>(&self, rng: &mut SplitMix64, records: &mut Vec<T>) {
        let before = records.len();
        records.retain(|_| !chance(rng, self.ppm));
        let dropped = before - records.len();
        if dropped > 0 {
            stm_telemetry::counter!("perturb.records_dropped").add(dropped as u64);
        }
    }
}

impl Perturbation for DropEntries {
    fn name(&self) -> &'static str {
        "drop_entries"
    }

    fn perturb_lbr(&self, rng: &mut SplitMix64, records: &mut Vec<BranchRecord>) {
        self.drop_from(rng, records);
    }

    fn perturb_lcr(&self, rng: &mut SplitMix64, records: &mut Vec<CoherenceRecord>) {
        self.drop_from(rng, records);
    }

    fn clone_box(&self) -> Box<dyn Perturbation> {
        Box::new(*self)
    }
}

/// Replaces an LCR record's observed MESI state with a uniformly chosen
/// *different* state with probability `ppm / 1e6` — stale or corrupted
/// coherence metadata reaching the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipCoherence {
    /// Per-record flip probability in parts per million.
    pub ppm: u32,
}

/// MESI states in a fixed order, for deterministic flip selection.
const MESI: [CoherenceState; 4] = [
    CoherenceState::Modified,
    CoherenceState::Exclusive,
    CoherenceState::Shared,
    CoherenceState::Invalid,
];

impl Perturbation for FlipCoherence {
    fn name(&self) -> &'static str {
        "flip_coherence"
    }

    fn perturb_lcr(&self, rng: &mut SplitMix64, records: &mut Vec<CoherenceRecord>) {
        for rec in records.iter_mut() {
            if chance(rng, self.ppm) {
                let others: Vec<CoherenceState> =
                    MESI.iter().copied().filter(|s| *s != rec.state).collect();
                rec.state = others[rng.next_below(others.len() as u64) as usize];
                stm_telemetry::counter!("perturb.states_flipped").incr();
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Perturbation> {
        Box::new(*self)
    }
}

/// Keeps every `keep_every`-th PBI coherence sample, modelling a sampler
/// period `keep_every` times longer than configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThinSampler {
    /// Keep one sample in this many (`0`/`1` = keep all).
    pub keep_every: u32,
}

impl Perturbation for ThinSampler {
    fn name(&self) -> &'static str {
        "thin_sampler"
    }

    fn perturb_samples(&self, _rng: &mut SplitMix64, samples: &mut Vec<CoherenceRecord>) {
        if self.keep_every > 1 {
            let before = samples.len();
            let k = self.keep_every as usize;
            let mut i = 0usize;
            samples.retain(|_| {
                let keep = i.is_multiple_of(k);
                i += 1;
                keep
            });
            stm_telemetry::counter!("perturb.samples_thinned").add((before - samples.len()) as u64);
        }
    }

    fn clone_box(&self) -> Box<dyn Perturbation> {
        Box::new(*self)
    }
}

/// Loses whole snapshots at log sites with probability `ppm / 1e6`: the
/// profile `ioctl` fails and the driver records nothing for that site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotLoss {
    /// Per-snapshot loss probability in parts per million.
    pub ppm: u32,
}

impl Perturbation for SnapshotLoss {
    fn name(&self) -> &'static str {
        "snapshot_loss"
    }

    fn loses_snapshot(&self, rng: &mut SplitMix64) -> bool {
        let lost = chance(rng, self.ppm);
        if lost {
            stm_telemetry::counter!("perturb.snapshots_lost").incr();
        }
        lost
    }

    fn clone_box(&self) -> Box<dyn Perturbation> {
        Box::new(*self)
    }
}

/// Plain-data description of a perturbation pipeline, embeddable in
/// [`HwConfig`](crate::HwConfig) (and therefore in a session's
/// configuration). [`PerturbConfig::NONE`] — the default — injects
/// nothing and adds no per-snapshot cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PerturbConfig {
    /// Extra seed mixed with each run's scheduler seed; lets two sweeps
    /// over the same workloads draw independent fault streams.
    pub seed: u64,
    /// Truncate LBR snapshots to this many newest records.
    pub lbr_truncate: Option<usize>,
    /// Truncate LCR snapshots to this many newest records.
    pub lcr_truncate: Option<usize>,
    /// Per-record random drop rate, in parts per million.
    pub drop_ppm: u32,
    /// Per-record coherence-state flip rate, in parts per million.
    pub flip_ppm: u32,
    /// Whole-snapshot loss rate at log sites, in parts per million.
    pub loss_ppm: u32,
    /// Keep one PBI sample in this many (`0`/`1` = keep all).
    pub sampler_keep_every: u32,
}

/// The configuration injects no faults at all.
impl Default for PerturbConfig {
    fn default() -> Self {
        PerturbConfig::NONE
    }
}

impl PerturbConfig {
    /// No perturbation: the full, paper-default signal.
    pub const NONE: PerturbConfig = PerturbConfig {
        seed: 0,
        lbr_truncate: None,
        lcr_truncate: None,
        drop_ppm: 0,
        flip_ppm: 0,
        loss_ppm: 0,
        sampler_keep_every: 0,
    };

    /// `true` when the pipeline would be empty.
    pub fn is_noop(&self) -> bool {
        self.lbr_truncate.is_none()
            && self.lcr_truncate.is_none()
            && self.drop_ppm == 0
            && self.flip_ppm == 0
            && self.loss_ppm == 0
            && self.sampler_keep_every <= 1
    }

    /// Sets the extra fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Truncates LBR snapshots to `n` newest records.
    pub fn truncate_lbr(mut self, n: usize) -> Self {
        self.lbr_truncate = Some(n);
        self
    }

    /// Truncates LCR snapshots to `n` newest records.
    pub fn truncate_lcr(mut self, n: usize) -> Self {
        self.lcr_truncate = Some(n);
        self
    }

    /// Drops each snapshot record with probability `rate` (0..=1).
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.drop_ppm = ppm(rate);
        self
    }

    /// Flips each LCR record's state with probability `rate` (0..=1).
    pub fn flip_rate(mut self, rate: f64) -> Self {
        self.flip_ppm = ppm(rate);
        self
    }

    /// Loses each whole snapshot with probability `rate` (0..=1).
    pub fn loss_rate(mut self, rate: f64) -> Self {
        self.loss_ppm = ppm(rate);
        self
    }

    /// Keeps one PBI sample in `k`.
    pub fn thin_sampler(mut self, k: u32) -> Self {
        self.sampler_keep_every = k;
        self
    }

    /// Validates the configuration. Zero-record truncation is rejected
    /// like a zero-capacity ring (use `drop_rate(1.0)` or `loss_rate` for
    /// a total blackout); ppm rates must not exceed [`PPM_SCALE`].
    pub fn validate(&self) -> Result<(), crate::context::HwConfigError> {
        use crate::context::HwConfigError;
        if self.lbr_truncate == Some(0) {
            return Err(HwConfigError::ZeroTruncation { ring: "lbr" });
        }
        if self.lcr_truncate == Some(0) {
            return Err(HwConfigError::ZeroTruncation { ring: "lcr" });
        }
        for (rate, ppm) in [
            ("drop_ppm", self.drop_ppm),
            ("flip_ppm", self.flip_ppm),
            ("loss_ppm", self.loss_ppm),
        ] {
            if ppm > PPM_SCALE {
                return Err(HwConfigError::RateOutOfRange { rate, ppm });
            }
        }
        Ok(())
    }

    /// Builds the injector pipeline this configuration describes, in a
    /// fixed order: loss, truncation, drop, flip, thinning.
    pub fn build(&self) -> Vec<Box<dyn Perturbation>> {
        let mut pipeline: Vec<Box<dyn Perturbation>> = Vec::new();
        if self.loss_ppm > 0 {
            pipeline.push(Box::new(SnapshotLoss { ppm: self.loss_ppm }));
        }
        if self.lbr_truncate.is_some() || self.lcr_truncate.is_some() {
            pipeline.push(Box::new(TruncateRing {
                lbr: self.lbr_truncate,
                lcr: self.lcr_truncate,
            }));
        }
        if self.drop_ppm > 0 {
            pipeline.push(Box::new(DropEntries { ppm: self.drop_ppm }));
        }
        if self.flip_ppm > 0 {
            pipeline.push(Box::new(FlipCoherence { ppm: self.flip_ppm }));
        }
        if self.sampler_keep_every > 1 {
            pipeline.push(Box::new(ThinSampler {
                keep_every: self.sampler_keep_every,
            }));
        }
        pipeline
    }
}

/// One run's instantiated perturbation pipeline: the injectors plus the
/// run-private RNG stream all their decisions draw from.
#[derive(Debug, Clone)]
pub struct PerturbLayer {
    injectors: Vec<Box<dyn Perturbation>>,
    config_seed: u64,
    rng: SplitMix64,
}

/// Mixes the configured fault-stream seed with the run's scheduler seed
/// into an independent SplitMix64 stream.
fn mix_seed(config_seed: u64, run_seed: u64) -> u64 {
    config_seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5157_4D50_4552_5455
}

impl PerturbLayer {
    /// Builds the layer for one run, or `None` for a no-op configuration
    /// (the common case pays nothing per snapshot).
    pub fn new(config: &PerturbConfig, run_seed: u64) -> Option<Self> {
        if config.is_noop() {
            return None;
        }
        Some(PerturbLayer {
            injectors: config.build(),
            config_seed: config.seed,
            rng: SplitMix64::new(mix_seed(config.seed, run_seed)),
        })
    }

    /// Re-seeds the fault stream for a new run (the runner calls this
    /// with the workload's scheduler seed before execution starts).
    pub fn reseed(&mut self, run_seed: u64) {
        self.rng = SplitMix64::new(mix_seed(self.config_seed, run_seed));
    }

    /// Runs an LBR snapshot through the pipeline; `None` = snapshot lost.
    pub fn lbr_snapshot(&mut self, records: Vec<BranchRecord>) -> Option<Vec<BranchRecord>> {
        self.lbr_snapshot_lazy(move || records)
    }

    /// Like [`PerturbLayer::lbr_snapshot`], but the ring copy is deferred
    /// until an injector actually touches records: a read lost at the
    /// head of the pipeline (the common `SnapshotLoss` case — loss is
    /// always built first) never materializes the snapshot at all.
    ///
    /// Draw-order equivalence with the eager path: `loses_snapshot` never
    /// sees the records, and reading the ring consumes no draws, so
    /// deferring the copy past the loss checks leaves the RNG stream
    /// bit-identical.
    pub fn lbr_snapshot_lazy(
        &mut self,
        read: impl FnOnce() -> Vec<BranchRecord>,
    ) -> Option<Vec<BranchRecord>> {
        let mut read = Some(read);
        let mut records: Option<Vec<BranchRecord>> = None;
        for inj in &self.injectors {
            if inj.loses_snapshot(&mut self.rng) {
                return None;
            }
            let recs =
                records.get_or_insert_with(|| (read.take().expect("single materialization"))());
            inj.perturb_lbr(&mut self.rng, recs);
        }
        Some(records.unwrap_or_else(|| (read.take().expect("single materialization"))()))
    }

    /// Runs an LCR snapshot through the pipeline; `None` = snapshot lost.
    pub fn lcr_snapshot(&mut self, records: Vec<CoherenceRecord>) -> Option<Vec<CoherenceRecord>> {
        self.lcr_snapshot_lazy(move || records)
    }

    /// The LCR analogue of [`PerturbLayer::lbr_snapshot_lazy`].
    pub fn lcr_snapshot_lazy(
        &mut self,
        read: impl FnOnce() -> Vec<CoherenceRecord>,
    ) -> Option<Vec<CoherenceRecord>> {
        let mut read = Some(read);
        let mut records: Option<Vec<CoherenceRecord>> = None;
        for inj in &self.injectors {
            if inj.loses_snapshot(&mut self.rng) {
                return None;
            }
            let recs =
                records.get_or_insert_with(|| (read.take().expect("single materialization"))());
            inj.perturb_lcr(&mut self.rng, recs);
        }
        Some(records.unwrap_or_else(|| (read.take().expect("single materialization"))()))
    }

    /// Runs the PBI sampler's latched records through the pipeline.
    pub fn samples(&mut self, mut samples: Vec<CoherenceRecord>) -> Vec<CoherenceRecord> {
        for inj in &self.injectors {
            inj.perturb_samples(&mut self.rng, &mut samples);
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbr::Lbr;
    use stm_machine::events::{AccessKind, BranchEvent, BranchKind, Ring};

    fn cond(from: u64) -> BranchEvent {
        BranchEvent {
            from,
            to: from + 0x10,
            kind: BranchKind::CondJump,
            ring: Ring::User,
        }
    }

    fn coh(pc: u64, state: CoherenceState) -> CoherenceRecord {
        CoherenceRecord {
            pc,
            state,
            access: AccessKind::Load,
        }
    }

    #[test]
    fn noop_config_builds_no_layer() {
        assert!(PerturbConfig::NONE.is_noop());
        assert!(PerturbLayer::new(&PerturbConfig::NONE, 7).is_none());
        assert!(PerturbConfig::default().build().is_empty());
    }

    #[test]
    fn truncation_keeps_newest_prefix() {
        let mut layer =
            PerturbLayer::new(&PerturbConfig::NONE.truncate_lbr(2), 0).expect("layer built");
        let snap: Vec<BranchRecord> = (0..5).rev().map(|i| cond(i).into()).collect();
        let out = layer.lbr_snapshot(snap.clone()).expect("not lost");
        assert_eq!(out, snap[..2].to_vec());
    }

    /// Wrapped-ring + truncation interaction: perturbing a ring that has
    /// already wrapped must preserve newest-first order. Property-style
    /// over every ring size 1..=32 and every truncation 1..=capacity.
    #[test]
    fn wrapped_ring_truncation_preserves_newest_first_order() {
        for capacity in 1..=32usize {
            let mut lbr = Lbr::new(capacity);
            lbr.enable();
            // Overfill well past a full wrap (and a second partial one).
            let total = 2 * capacity + 3;
            for i in 0..total {
                lbr.record(cond(i as u64));
            }
            let full = lbr.snapshot();
            assert_eq!(full.len(), capacity, "ring wraps to capacity");
            // Newest-first after wrapping: froms descend from total-1.
            let froms: Vec<u64> = full.iter().map(|r| r.from).collect();
            let expect: Vec<u64> = (0..capacity).map(|i| (total - 1 - i) as u64).collect();
            assert_eq!(froms, expect, "capacity {capacity}");
            for keep in 1..=capacity {
                let mut layer = PerturbLayer::new(&PerturbConfig::NONE.truncate_lbr(keep), 3)
                    .expect("layer built");
                let out = layer.lbr_snapshot(full.clone()).expect("not lost");
                assert_eq!(
                    out,
                    full[..keep].to_vec(),
                    "capacity {capacity}, truncate {keep}: newest-first prefix"
                );
            }
        }
    }

    #[test]
    fn drop_rate_one_empties_and_zero_keeps() {
        let snap: Vec<BranchRecord> = (0..8).map(|i| cond(i).into()).collect();
        let mut all = PerturbLayer::new(&PerturbConfig::NONE.drop_rate(1.0), 1).unwrap();
        assert_eq!(all.lbr_snapshot(snap.clone()).unwrap(), vec![]);
        // Rate 0 alone is a no-op config; combine with truncation to get
        // a live layer and check nothing is dropped.
        let cfg = PerturbConfig::NONE.truncate_lbr(8).drop_rate(0.0);
        let mut none = PerturbLayer::new(&cfg, 1).unwrap();
        assert_eq!(none.lbr_snapshot(snap.clone()).unwrap(), snap);
    }

    #[test]
    fn drops_are_deterministic_per_seed() {
        let cfg = PerturbConfig::NONE.drop_rate(0.5);
        let snap: Vec<BranchRecord> = (0..32).map(|i| cond(i).into()).collect();
        let run = |run_seed: u64| {
            let mut layer = PerturbLayer::new(&cfg, run_seed).unwrap();
            layer.lbr_snapshot(snap.clone()).unwrap()
        };
        assert_eq!(run(9), run(9), "same run seed, same faults");
        assert_ne!(run(9), run(10), "different run seed, different faults");
    }

    #[test]
    fn flip_changes_state_to_a_different_mesi_state() {
        let cfg = PerturbConfig::NONE.flip_rate(1.0);
        let mut layer = PerturbLayer::new(&cfg, 5).unwrap();
        let recs: Vec<CoherenceRecord> = (0..16).map(|i| coh(i, MESI[i as usize % 4])).collect();
        let out = layer.lcr_snapshot(recs.clone()).unwrap();
        assert_eq!(out.len(), recs.len());
        for (a, b) in recs.iter().zip(&out) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.access, b.access);
            assert_ne!(a.state, b.state, "flip must pick a different state");
        }
    }

    #[test]
    fn loss_rate_one_loses_every_snapshot() {
        let cfg = PerturbConfig::NONE.loss_rate(1.0);
        let mut layer = PerturbLayer::new(&cfg, 2).unwrap();
        assert!(layer.lbr_snapshot(vec![cond(1).into()]).is_none());
        assert!(layer.lcr_snapshot(vec![coh(1, MESI[0])]).is_none());
    }

    #[test]
    fn sampler_thinning_keeps_every_kth() {
        let cfg = PerturbConfig::NONE.thin_sampler(3);
        let mut layer = PerturbLayer::new(&cfg, 0).unwrap();
        let samples: Vec<CoherenceRecord> =
            (0..9).map(|i| coh(i, CoherenceState::Shared)).collect();
        let out = layer.samples(samples);
        let pcs: Vec<u64> = out.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0, 3, 6]);
    }

    #[test]
    fn config_validation_rejects_zero_truncation_and_bad_rates() {
        assert!(PerturbConfig::NONE.validate().is_ok());
        assert!(PerturbConfig::NONE.truncate_lbr(0).validate().is_err());
        assert!(PerturbConfig::NONE.truncate_lcr(0).validate().is_err());
        let bad = PerturbConfig {
            drop_ppm: PPM_SCALE + 1,
            ..PerturbConfig::NONE
        };
        assert!(bad.validate().is_err());
        assert!(PerturbConfig::NONE.drop_rate(1.0).validate().is_ok());
    }

    #[test]
    fn reseed_replays_the_same_fault_stream() {
        let cfg = PerturbConfig::NONE.drop_rate(0.5).with_seed(77);
        let snap: Vec<BranchRecord> = (0..32).map(|i| cond(i).into()).collect();
        let mut layer = PerturbLayer::new(&cfg, 1).unwrap();
        let first = layer.lbr_snapshot(snap.clone()).unwrap();
        layer.reseed(1);
        assert_eq!(layer.lbr_snapshot(snap).unwrap(), first);
    }
}
